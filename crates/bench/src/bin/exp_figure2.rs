//! Regenerates Figure 2 (Spearman correlations).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::figure2(&ctx);
    emit(
        "exp_figure2",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
