//! Randomized and exhaustive tests over the core invariants of the
//! pipeline.
//!
//! These were originally proptest properties; the offline build vendors no
//! proptest, so each property is now driven by a seeded [`StdRng`] loop
//! (same invariants, deterministic inputs) or, where the input space is
//! small enough, checked exhaustively.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use schemachron::core::metrics::TimeMetrics;
use schemachron::core::quantize::{
    ActiveGrowthClass, ActivePupClass, BirthVolumeClass, IntervalClass, Labels, TailClass,
    TimepointClass,
};
use schemachron::core::{classify, classify_nearest, Pattern};
use schemachron::ddl::parse_schema;
use schemachron::history::{Heartbeat, MonthId, ProjectHistory};
use schemachron::model::{diff, render_schema_sql, Attribute, DataType, Name, Schema, Table};
use schemachron_corpus::{Card, Corpus};

// ------------------------------------------------------------ generators

fn ident(r: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let len = r.random_range(0..=10usize);
    let mut s = String::with_capacity(len + 1);
    s.push(FIRST[r.random_range(0..FIRST.len())] as char);
    for _ in 0..len {
        s.push(REST[r.random_range(0..REST.len())] as char);
    }
    s
}

fn data_type(r: &mut StdRng) -> DataType {
    match r.random_range(0..6u8) {
        0 => DataType::named("int"),
        1 => DataType::named("bigint"),
        2 => DataType::named("text"),
        3 => DataType::with_params("varchar", vec![r.random_range(1..500i64)]),
        4 => DataType::with_params(
            "decimal",
            vec![r.random_range(1..20i64), r.random_range(0..10i64)],
        ),
        _ => DataType::named("int").with_modifier("unsigned"),
    }
}

fn table(r: &mut StdRng) -> Table {
    let mut t = Table::new(ident(r));
    let mut cols: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let want = r.random_range(1..8usize);
    while cols.len() < want {
        cols.insert(ident(r));
    }
    for c in &cols {
        t.push_attribute(Attribute::new(c.clone(), data_type(r)));
    }
    if r.random_bool(0.5) {
        t.primary_key = vec![t.attributes()[0].name.clone()];
    }
    t
}

fn schema(r: &mut StdRng) -> Schema {
    let mut s = Schema::new();
    for _ in 0..r.random_range(0..6usize) {
        s.insert_table(table(r));
    }
    s
}

// ------------------------------------------------------------ the tests

#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut r = StdRng::seed_from_u64(0xA11A);
    for _ in 0..200 {
        let len = r.random_range(0..300usize);
        let input: String = (0..len)
            .map(|_| {
                // Mostly printable ASCII, with occasional non-ASCII noise.
                if r.random_bool(0.9) {
                    (r.random_range(0x20..0x7Fu8)) as char
                } else {
                    char::from_u32(r.random_range(0x80..0x2FFFu32)).unwrap_or('\u{fffd}')
                }
            })
            .collect();
        let _ = parse_schema(&input);
    }
}

#[test]
fn parser_never_panics_on_sqlish_input() {
    let mut r = StdRng::seed_from_u64(0x5A11);
    for _ in 0..300 {
        let n = r.random_range(0..40usize);
        let parts: Vec<String> = (0..n)
            .map(|_| match r.random_range(0..11u8) {
                0 => "CREATE TABLE".to_owned(),
                1 => "ALTER TABLE".to_owned(),
                2 => "DROP".to_owned(),
                3 => "(".to_owned(),
                4 => ")".to_owned(),
                5 => ",".to_owned(),
                6 => ";".to_owned(),
                7 => "PRIMARY KEY".to_owned(),
                8 => "'str".to_owned(),
                9 => "`tick".to_owned(),
                _ => ident(&mut r),
            })
            .collect();
        let _ = parse_schema(&parts.join(" "));
    }
}

#[test]
fn render_parse_roundtrip() {
    let mut r = StdRng::seed_from_u64(0x0707);
    for _ in 0..100 {
        let s = schema(&mut r);
        let sql = render_schema_sql(&s);
        let (parsed, diags) = parse_schema(&sql);
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}\n{sql}");
        assert_eq!(parsed, s);
    }
}

#[test]
fn diff_of_identical_schemas_is_empty() {
    let mut r = StdRng::seed_from_u64(0x1D1D);
    for _ in 0..100 {
        let s = schema(&mut r);
        assert!(diff(&s, &s.clone()).is_empty());
    }
}

#[test]
fn diff_from_empty_counts_every_attribute_as_born() {
    let mut r = StdRng::seed_from_u64(0xB0B0);
    for _ in 0..100 {
        let s = schema(&mut r);
        let d = diff(&Schema::new(), &s);
        assert_eq!(d.attribute_change_count(), s.attribute_count());
        assert_eq!(d.expansion_count(), s.attribute_count());
        assert_eq!(d.maintenance_count(), 0);
    }
}

#[test]
fn diff_partitions_into_expansion_and_maintenance() {
    let mut r = StdRng::seed_from_u64(0xD1FF);
    for _ in 0..100 {
        let (a, b) = (schema(&mut r), schema(&mut r));
        let d = diff(&a, &b);
        assert_eq!(
            d.expansion_count() + d.maintenance_count(),
            d.attribute_change_count()
        );
    }
}

#[test]
fn diff_direction_mirrors_births_and_deletions() {
    use schemachron::model::ChangeKind;
    let mut r = StdRng::seed_from_u64(0x3141);
    for _ in 0..100 {
        let (a, b) = (schema(&mut r), schema(&mut r));
        let fwd = diff(&a, &b);
        let back = diff(&b, &a);
        assert_eq!(
            fwd.count_of(ChangeKind::AttributeBornWithTable),
            back.count_of(ChangeKind::AttributeDeletedWithTable)
        );
        assert_eq!(
            fwd.count_of(ChangeKind::AttributeInjected),
            back.count_of(ChangeKind::AttributeEjected)
        );
        assert_eq!(fwd.tables_added.len(), back.tables_dropped.len());
    }
}

#[test]
fn name_comparison_is_ascii_case_insensitive() {
    let mut r = StdRng::seed_from_u64(0xCA5E);
    for _ in 0..200 {
        let s = ident(&mut r);
        assert_eq!(
            Name::from(s.to_ascii_uppercase()),
            Name::from(s.to_ascii_lowercase())
        );
    }
}

#[test]
fn heartbeat_cumulative_is_monotone_unit_bounded() {
    let mut r = StdRng::seed_from_u64(0xBEA7);
    for _ in 0..150 {
        let n = r.random_range(1..30usize);
        let events: Vec<(i32, f64)> = (0..n)
            .map(|_| (r.random_range(0..120i32), r.random_range(0.0..50.0)))
            .collect();
        let mut h = Heartbeat::new();
        for (m, v) in &events {
            h.add(MonthId(*m), *v);
        }
        let c = h.cumulative_fraction();
        assert!(c.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(c.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
        let total: f64 = events.iter().map(|(_, v)| v).sum();
        assert!((h.total() - total).abs() < 1e-9);
    }
}

#[test]
fn metrics_are_internally_consistent() {
    let mut r = StdRng::seed_from_u64(0x3E7A);
    for _ in 0..150 {
        let n = r.random_range(13..80usize);
        let mut activity: Vec<f64> = (0..n).map(|_| r.random_range(0.0..40.0)).collect();
        // Ensure at least one active month.
        let idx = r.random_range(0..12usize) % activity.len();
        activity[idx] += 1.0;
        let n = activity.len();
        let p =
            ProjectHistory::from_heartbeats("prop", MonthId(0), activity, vec![1.0; n], [0; 6]);
        let m = TimeMetrics::from_project(&p).expect("active");
        assert!(m.birth_index <= m.topband_index);
        assert!((0.0..=1.0).contains(&m.birth_pct_pup));
        assert!((0.0..=1.0).contains(&m.topband_pct_pup));
        assert!((0.0..=1.0).contains(&m.birth_volume_pct_total));
        assert!(m.interval_birth_to_top_pct >= -1e-12);
        assert!(
            (m.interval_birth_to_top_pct + m.birth_pct_pup - m.topband_pct_pup).abs() < 1e-9
        );
        assert!((m.interval_top_to_end_pct + m.topband_pct_pup - 1.0).abs() < 1e-9);
        assert_eq!(m.has_single_vault, m.interval_birth_to_top_pct < 0.10);
        assert!((m.birth_volume + m.activity_after_birth - m.total_activity).abs() < 1e-9);
        // Quantization always succeeds and stays in-range.
        let l = Labels::from_metrics(&m);
        assert!(l.birth_point.ordinal() < 4);
        assert!(l.interval_birth_to_top.ordinal() < 5);
    }
}

#[test]
fn at_most_one_pattern_matches_any_profile() {
    // The label space is small enough to sweep exhaustively (with a
    // representative set of active-growth-month counts).
    for bv in 0..4 {
        for bp in 0..4 {
            for tp in 0..4 {
                for iv in 0..5 {
                    for tl in 0..4 {
                        for ag in 0..4 {
                            for ap in 0..4 {
                                for agm in [0usize, 1, 2, 3, 4, 7, 12, 19] {
                                    for vault in [false, true] {
                                        check_profile(bv, bp, tp, iv, tl, ag, ap, agm, vault);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_profile(
    bv: usize,
    bp: usize,
    tp: usize,
    iv: usize,
    tl: usize,
    ag: usize,
    ap: usize,
    agm: usize,
    vault: bool,
) {
    let l = Labels {
        birth_volume: BirthVolumeClass::ALL[bv],
        birth_point: TimepointClass::ALL[bp],
        topband_point: TimepointClass::ALL[tp],
        interval_birth_to_top: IntervalClass::ALL[iv],
        interval_top_to_end: TailClass::ALL[tl],
        active_growth: ActiveGrowthClass::ALL[ag],
        active_pup: ActivePupClass::ALL[ap],
        active_growth_months: agm,
        has_single_vault: vault,
    };
    let matching: Vec<Pattern> = Pattern::ALL
        .iter()
        .copied()
        .filter(|p| p.matches(&l))
        .collect();
    assert!(matching.len() <= 1, "{matching:?}");
    // classify agrees with the match; nearest agrees when strict.
    assert_eq!(classify(&l), matching.first().copied());
    let (nearest, violations) = classify_nearest(&l);
    match matching.first() {
        Some(&p) => {
            assert_eq!(nearest, p);
            assert_eq!(violations, 0);
        }
        None => assert!(violations > 0),
    }
}

#[test]
fn feasible_cards_always_schedule_exactly() {
    let mut r = StdRng::seed_from_u64(0xF00D);
    for _ in 0..40 {
        let duration = r.random_range(13..90u32);
        let birth_frac_pct = r.random_range(20..70u32);
        let total = r.random_range(30..300u32);
        let agm = r.random_range(0..4u32);
        let seed = r.random_range(0..50u64);
        // Construct a feasible card: birth early-ish, top well after birth.
        let birth = duration / 10;
        let top = (birth + 5 + agm).min(duration - 1);
        let card = Card {
            name: format!("prop-{duration}-{total}"),
            pattern: Pattern::QuantumSteps,
            exception: false,
            duration,
            birth_month: birth,
            top_month: top,
            agm,
            birth_frac: birth_frac_pct as f64 / 100.0,
            total_units: total,
            tail_units: total / 20,
            tail_months: 1,
            maintenance_bias: 0.2,
        };
        let s = card.schedule();
        assert_eq!(s.total(), total);
        let months: Vec<u32> = s.events.iter().map(|(m, _)| *m).collect();
        let mut sorted = months.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(&months, &sorted, "unique and sorted");
        assert!(months.iter().all(|&m| m < duration));
        // Materialization reproduces the schedule exactly.
        let mat = schemachron_corpus::materialize::materialize(&card, seed);
        let mut b = schemachron::history::ProjectHistoryBuilder::new(&card.name);
        for (d, sql) in &mat.ddl_commits {
            b.migration(*d, sql.clone());
        }
        for (d, l) in &mat.source_commits {
            b.source_commit(*d, *l);
        }
        let p = b.build();
        assert_eq!(p.schema_total() as u32, total);
        assert_eq!(p.schema_birth_index(), Some(birth as usize));
    }
}

#[test]
fn corpus_regeneration_is_deterministic() {
    let a = Corpus::generate(7);
    let b = Corpus::generate(7);
    for (x, y) in a.projects().iter().zip(b.projects()) {
        assert_eq!(x.labels, y.labels);
        assert_eq!(x.metrics, y.metrics);
    }
}
