//! Shared experiment context: the generated corpus plus derived artifacts
//! every experiment needs.

use schemachron_core::predict::BirthPredictor;
use schemachron_core::quantize::{feature_value_names, tree_features, FEATURE_NAMES};
use schemachron_core::Pattern;
use schemachron_corpus::Corpus;
use schemachron_stats::{DecisionTree, TreeConfig};

/// Everything the experiments share: the corpus and a few derived models.
pub struct ExpContext {
    /// The calibrated 151-project corpus.
    pub corpus: Corpus,
}

impl ExpContext {
    /// Builds the context for a seed (experiments use
    /// [`crate::DEFAULT_SEED`]).
    pub fn new(seed: u64) -> Self {
        ExpContext {
            corpus: Corpus::generate(seed),
        }
    }

    /// The ordinal feature matrix for the Fig. 5 tree, one row per project.
    pub fn feature_matrix(&self) -> Vec<Vec<u8>> {
        self.corpus
            .projects()
            .iter()
            .map(|p| tree_features(&p.labels))
            .collect()
    }

    /// The assigned-pattern label vector aligned with
    /// [`ExpContext::feature_matrix`].
    pub fn label_vector(&self) -> Vec<usize> {
        self.corpus
            .projects()
            .iter()
            .map(|p| p.assigned.ordinal())
            .collect()
    }

    /// Fits the Fig. 5 decision tree. The paper extracts a *simple* tree
    /// after manual annotation, so depth is kept small; with this
    /// configuration a few exception projects are misclassified, exactly as
    /// in the paper.
    pub fn decision_tree(&self) -> DecisionTree {
        DecisionTree::fit(
            &self.feature_matrix(),
            &self.label_vector(),
            &TreeConfig {
                max_depth: 4,
                min_samples_split: 4,
            },
        )
    }

    /// Renders the fitted tree with the study's feature and class names.
    pub fn render_tree(&self, tree: &DecisionTree) -> String {
        let feature_names: Vec<&str> = FEATURE_NAMES.to_vec();
        let value_names = feature_value_names();
        let class_names: Vec<&str> = Pattern::ALL.iter().map(|p| p.name()).collect();
        tree.render(&feature_names, &value_names, &class_names)
    }

    /// The fitted §6.2 birth-point predictor.
    pub fn birth_predictor(&self) -> BirthPredictor {
        BirthPredictor::fit(&self.corpus.birth_data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_matrix_is_aligned() {
        let ctx = ExpContext::new(42);
        let m = ctx.feature_matrix();
        let l = ctx.label_vector();
        assert_eq!(m.len(), 151);
        assert_eq!(l.len(), 151);
        assert!(m.iter().all(|r| r.len() == FEATURE_NAMES.len()));
    }
}
