//! Shared experiment context: the generated corpus plus derived artifacts
//! every experiment needs.
//!
//! Corpora are expensive to build (full DDL materialization + pipeline
//! ingestion for every project), and every experiment in a run needs the
//! same one — so contexts draw from a process-wide, seed-keyed cache of
//! [`Arc<Corpus>`]: the first `ExpContext::new(seed)` builds the corpus,
//! every later one shares it. Derived models (feature matrix, decision
//! tree, birth predictor) are likewise computed once per context and
//! memoized.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use schemachron_core::predict::BirthPredictor;
use schemachron_core::quantize::{feature_value_names, tree_features, FEATURE_NAMES};
use schemachron_core::Pattern;
use schemachron_corpus::Corpus;
use schemachron_stats::{DecisionTree, TreeConfig};

/// Process-wide corpus cache, keyed by seed.
static CORPUS_CACHE: OnceLock<Mutex<HashMap<u64, Arc<Corpus>>>> = OnceLock::new();

/// The shared corpus for a seed: built (in parallel) on first request,
/// served from the cache afterwards. [`Corpus::build_count`] observes the
/// build-exactly-once behaviour.
pub fn shared_corpus(seed: u64) -> Arc<Corpus> {
    let cache = CORPUS_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("corpus cache lock");
    Arc::clone(map.entry(seed).or_insert_with(|| {
        eprintln!(
            "[corpus] building seed-{seed} corpus ({} jobs)",
            schemachron_corpus::effective_jobs()
        );
        Arc::new(Corpus::generate(seed))
    }))
}

/// Everything the experiments share: the corpus and a few derived models.
pub struct ExpContext {
    /// The calibrated 151-project corpus (shared across contexts per seed).
    pub corpus: Arc<Corpus>,
    features: OnceLock<Vec<Vec<u8>>>,
    labels: OnceLock<Vec<usize>>,
    tree: OnceLock<DecisionTree>,
    predictor: OnceLock<BirthPredictor>,
}

impl ExpContext {
    /// Builds the context for a seed (experiments use
    /// [`crate::DEFAULT_SEED`]). The corpus comes from the process-wide
    /// cache, so repeated contexts for one seed build it only once.
    pub fn new(seed: u64) -> Self {
        ExpContext {
            corpus: shared_corpus(seed),
            features: OnceLock::new(),
            labels: OnceLock::new(),
            tree: OnceLock::new(),
            predictor: OnceLock::new(),
        }
    }

    /// The ordinal feature matrix for the Fig. 5 tree, one row per project.
    /// Computed once per context.
    pub fn feature_matrix(&self) -> &[Vec<u8>] {
        self.features.get_or_init(|| {
            self.corpus
                .projects()
                .iter()
                .map(|p| tree_features(&p.labels))
                .collect()
        })
    }

    /// The assigned-pattern label vector aligned with
    /// [`ExpContext::feature_matrix`]. Computed once per context.
    pub fn label_vector(&self) -> &[usize] {
        self.labels.get_or_init(|| {
            self.corpus
                .projects()
                .iter()
                .map(|p| p.assigned.ordinal())
                .collect()
        })
    }

    /// Fits the Fig. 5 decision tree (once per context). The paper extracts
    /// a *simple* tree after manual annotation, so depth is kept small;
    /// with this configuration a few exception projects are misclassified,
    /// exactly as in the paper.
    pub fn decision_tree(&self) -> &DecisionTree {
        self.tree.get_or_init(|| {
            DecisionTree::fit(
                self.feature_matrix(),
                self.label_vector(),
                &TreeConfig {
                    max_depth: 4,
                    min_samples_split: 4,
                },
            )
        })
    }

    /// Renders the fitted tree with the study's feature and class names.
    pub fn render_tree(&self, tree: &DecisionTree) -> String {
        let feature_names: Vec<&str> = FEATURE_NAMES.to_vec();
        let value_names = feature_value_names();
        let class_names: Vec<&str> = Pattern::ALL.iter().map(|p| p.name()).collect();
        tree.render(&feature_names, &value_names, &class_names)
    }

    /// The fitted §6.2 birth-point predictor (once per context).
    pub fn birth_predictor(&self) -> &BirthPredictor {
        self.predictor
            .get_or_init(|| BirthPredictor::fit(&self.corpus.birth_data()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_matrix_is_aligned() {
        let ctx = ExpContext::new(42);
        let m = ctx.feature_matrix();
        let l = ctx.label_vector();
        assert_eq!(m.len(), 151);
        assert_eq!(l.len(), 151);
        assert!(m.iter().all(|r| r.len() == FEATURE_NAMES.len()));
    }

    #[test]
    fn corpus_cache_builds_each_seed_once() {
        // Prime the cache, then observe that further contexts reuse it.
        let a = ExpContext::new(43);
        let builds = Corpus::build_count();
        let b = ExpContext::new(43);
        assert_eq!(Corpus::build_count(), builds, "second context rebuilt");
        assert!(Arc::ptr_eq(&a.corpus, &b.corpus));
    }

    #[test]
    fn derived_models_are_memoized() {
        let ctx = ExpContext::new(44);
        assert!(std::ptr::eq(ctx.decision_tree(), ctx.decision_tree()));
        assert!(std::ptr::eq(ctx.birth_predictor(), ctx.birth_predictor()));
        assert!(std::ptr::eq(
            ctx.feature_matrix().as_ptr(),
            ctx.feature_matrix().as_ptr()
        ));
    }
}
