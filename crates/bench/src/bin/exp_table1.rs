//! Regenerates Table 1 (quantization label counts).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::table1(&ctx);
    emit(
        "exp_table1",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
