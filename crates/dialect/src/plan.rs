//! The forward migration planner: rendering an op batch into a dialect's
//! SQL, with a whole-table rebuild fallback and replay verification.
//!
//! [`plan`] is self-verifying: before a plan is returned, the rendered
//! script is replayed through the dialect's own parser on top of the
//! starting schema and compared (under the dialect's type normalization)
//! against the target. A surviving table that does not replay faithfully is
//! forced into a rebuild and rendering repeats; a plan that still does not
//! replay is refused with a typed [`PlanError::Unfaithful`] — never
//! returned silently wrong.

use std::collections::BTreeSet;
use std::fmt;

use schemachron_ddl::SchemaBuilder;
use schemachron_model::{Name, Schema, Table};

use crate::dialects::Dialect;
use crate::ops::{diff_units, DiffOp, PlanUnit};

/// Version of the planning logic, salted into corpus stage-cache keys so
/// cached parse artifacts invalidate when the planner's semantics change.
pub const PLAN_LOGIC_VERSION: u32 = 1;

/// A typed refusal: the op a dialect cannot express, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedDiffOp {
    /// The refusing dialect's canonical name.
    pub dialect: &'static str,
    /// The compact op descriptor (see [`DiffOp::describe`]).
    pub op: String,
    /// Why the dialect cannot express it.
    pub reason: String,
}

impl fmt::Display for UnsupportedDiffOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsupported op `{}` for dialect {}: {}",
            self.op, self.dialect, self.reason
        )
    }
}

/// Why a plan could not be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A dialect refused an op and no rebuild could absorb it (the op was
    /// not table-scoped, or rebuilds were disabled).
    Unsupported(UnsupportedDiffOp),
    /// The rendered script did not replay to the target schema and forcing
    /// rebuilds could not close the gap.
    Unfaithful {
        /// The dialect that was planning.
        dialect: &'static str,
        /// The tables (or views, prefixed `view:`) that diverged.
        diverged: Vec<String>,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Unsupported(u) => u.fmt(f),
            PlanError::Unfaithful { dialect, diverged } => write!(
                f,
                "plan for dialect {} does not replay to the target schema (diverged: {})",
                dialect,
                diverged.join(", ")
            ),
        }
    }
}

impl From<UnsupportedDiffOp> for PlanError {
    fn from(u: UnsupportedDiffOp) -> Self {
        PlanError::Unsupported(u)
    }
}

/// Planner knobs.
#[derive(Clone, Debug)]
pub struct PlanOptions {
    /// Whether a refused (or unfaithful) table-scoped op may be absorbed by
    /// rebuilding the table (`DROP TABLE` + `CREATE TABLE`). On by default;
    /// `--no-rebuild` turns it off, surfacing the typed refusal instead.
    pub allow_rebuild: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            allow_rebuild: true,
        }
    }
}

/// One rendered statement, tagged with the logical op it implements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedStatement {
    /// The compact descriptor of the op (or `rebuild_table <t>` when the
    /// statement is part of a rebuild).
    pub op: String,
    /// The rendered SQL, one complete statement.
    pub sql: String,
}

/// A verified migration plan: the script replays to the target schema.
#[derive(Clone, Debug)]
pub struct MigrationPlan {
    /// The dialect the plan is rendered in (canonical name).
    pub dialect: &'static str,
    /// The statements, in execution order.
    pub statements: Vec<PlannedStatement>,
    /// Names of tables the planner rebuilt instead of altering in place.
    pub rebuilds: Vec<String>,
    /// Whether any statement in the plan destroys data: a rendered op that
    /// [`DiffOp::destroys_data`], or any rebuild (a rebuild is `DROP TABLE`
    /// plus `CREATE TABLE`, which discards the dropped rows). Always
    /// disclosed in plan JSON so a "successful" plan cannot hide a
    /// destructive step.
    pub lossy: bool,
}

impl MigrationPlan {
    /// The full script, statements joined by newlines.
    pub fn script(&self) -> String {
        self.statements
            .iter()
            .map(|s| s.sql.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Plans the DDL script that evolves `from` into `to` under `dialect`.
///
/// The returned plan is verified by replay: parsing the script with the
/// dialect's own parser and applying it on top of `from` yields a schema
/// equal to `to` under the dialect's type normalization. For the corpus
/// type palette normalization is the identity, so the round trip is
/// byte-identical.
pub fn plan(
    from: &Schema,
    to: &Schema,
    dialect: &'static dyn Dialect,
    opts: &PlanOptions,
) -> Result<MigrationPlan, PlanError> {
    let units = diff_units(from, to);
    let mut forced: BTreeSet<Name> = BTreeSet::new();
    loop {
        let (statements, rebuilds, lossy) = render_units(dialect, &units, &forced, opts)?;
        let replayed = replay(dialect, from, &statements);
        let diverged = divergences(dialect, &replayed, to);
        if diverged.is_empty() {
            return Ok(MigrationPlan {
                dialect: dialect.name(),
                statements,
                rebuilds,
                lossy,
            });
        }
        // Force a rebuild of every diverged table that has a rebuild
        // target; if that makes no progress the plan is unfaithful.
        let mut progressed = false;
        if opts.allow_rebuild {
            for u in &units {
                let (Some(name), Some(_)) = (&u.table, &u.rebuild) else {
                    continue;
                };
                if diverged.contains(&name.to_string()) && forced.insert(name.clone()) {
                    progressed = true;
                }
            }
        }
        if !progressed {
            return Err(PlanError::Unfaithful {
                dialect: dialect.name(),
                diverged,
            });
        }
    }
}

fn render_units(
    dialect: &dyn Dialect,
    units: &[PlanUnit],
    forced: &BTreeSet<Name>,
    opts: &PlanOptions,
) -> Result<(Vec<PlannedStatement>, Vec<String>, bool), PlanError> {
    let mut statements = Vec::new();
    let mut rebuilds = Vec::new();
    let mut lossy = false;
    'unit: for u in units {
        if let (Some(name), Some(target)) = (&u.table, &u.rebuild) {
            if forced.contains(name) {
                push_rebuild(dialect, name, target, &mut statements, &mut rebuilds)?;
                lossy = true;
                continue;
            }
        }
        let mut rendered = Vec::new();
        let mut unit_lossy = false;
        for op in &u.ops {
            match dialect.render_op(op) {
                Ok(sqls) => {
                    unit_lossy |= op.destroys_data();
                    rendered.extend(sqls.into_iter().map(|sql| PlannedStatement {
                        op: op.describe(),
                        sql,
                    }));
                }
                Err(refusal) => match &u.rebuild {
                    Some(target) if opts.allow_rebuild => {
                        let name = u.table.as_ref().unwrap_or(&target.name);
                        push_rebuild(dialect, name, target, &mut statements, &mut rebuilds)?;
                        lossy = true;
                        continue 'unit;
                    }
                    _ => return Err(refusal.into()),
                },
            }
        }
        lossy |= unit_lossy;
        statements.append(&mut rendered);
    }
    Ok((statements, rebuilds, lossy))
}

fn push_rebuild(
    dialect: &dyn Dialect,
    name: &Name,
    target: &Table,
    statements: &mut Vec<PlannedStatement>,
    rebuilds: &mut Vec<String>,
) -> Result<(), PlanError> {
    let label = format!("rebuild_table {}", name.as_str());
    let drop_sqls = dialect.render_op(&DiffOp::DropTable(name.clone()))?;
    let create_sqls = dialect.render_op(&DiffOp::CreateTable(target.clone()))?;
    for sql in drop_sqls.into_iter().chain(create_sqls) {
        statements.push(PlannedStatement {
            op: label.clone(),
            sql,
        });
    }
    rebuilds.push(name.to_string());
    Ok(())
}

/// Replays a rendered script through the dialect's parser on top of `from`.
fn replay(dialect: &dyn Dialect, from: &Schema, statements: &[PlannedStatement]) -> Schema {
    let script = statements
        .iter()
        .map(|s| s.sql.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let (stmts, _diags) = dialect.parse(&script);
    let mut b = SchemaBuilder::with_schema(from.clone());
    b.apply_statements(&stmts);
    b.finish().0
}

/// Applies the dialect's type normalization to every attribute of a schema.
pub(crate) fn normalize_schema(dialect: &dyn Dialect, s: &Schema) -> Schema {
    let mut out = s.clone();
    for src in s.tables() {
        let Some(t) = out.table_mut(src.name.as_str()) else {
            continue;
        };
        for col in src.attributes() {
            if let Some(a) = t.attribute_mut(col.name.as_str()) {
                a.data_type = dialect.normalize_type(&a.data_type);
            }
        }
    }
    out
}

/// The tables and views whose replayed state differs from the target,
/// compared under the dialect's normalization.
fn divergences(dialect: &dyn Dialect, replayed: &Schema, target: &Schema) -> Vec<String> {
    let got = normalize_schema(dialect, replayed);
    let want = normalize_schema(dialect, target);
    let mut names: BTreeSet<String> = BTreeSet::new();
    for t in got.tables().chain(want.tables()) {
        names.insert(t.name.to_string());
    }
    let mut out: Vec<String> = names
        .into_iter()
        .filter(|n| got.table(n) != want.table(n))
        .collect();
    let mut views: BTreeSet<String> = BTreeSet::new();
    for v in got.views().chain(want.views()) {
        views.insert(v.name.to_string());
    }
    out.extend(
        views
            .into_iter()
            .filter(|n| got.view(n) != want.view(n))
            .map(|n| format!("view:{n}")),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{all_dialects, Mysql, Postgres, Sqlite};
    use schemachron_ddl::parse_schema;

    fn schema(sql: &str) -> Schema {
        let (s, d) = parse_schema(sql);
        assert!(d.iter().all(|x| !x.is_error()), "{d:?}");
        s
    }

    const FROM: &str = "CREATE TABLE users (
            id INT NOT NULL,
            name VARCHAR(64),
            legacy INT,
            PRIMARY KEY (id)
        );
        CREATE TABLE audit (id INT, PRIMARY KEY (id));";

    const TO: &str = "CREATE TABLE users (
            id INT NOT NULL,
            name VARCHAR(255) NOT NULL,
            created TIMESTAMP,
            PRIMARY KEY (id)
        );
        CREATE TABLE posts (
            id INT NOT NULL,
            author INT,
            PRIMARY KEY (id),
            CONSTRAINT fk_author FOREIGN KEY (author) REFERENCES users (id)
        );";

    #[test]
    fn plans_replay_to_target_in_every_dialect() {
        let (from, to) = (schema(FROM), schema(TO));
        for d in all_dialects() {
            let p = plan(&from, &to, d, &PlanOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", d.name()));
            assert!(!p.statements.is_empty(), "{}", d.name());
        }
    }

    #[test]
    fn sqlite_absorbs_alterations_into_rebuilds() {
        let (from, to) = (schema(FROM), schema(TO));
        let p = plan(&from, &to, &Sqlite, &PlanOptions::default()).expect("plans");
        assert_eq!(p.rebuilds, vec!["users".to_string()]);
        assert!(p.script().contains("DROP TABLE users;"));
        assert!(p.lossy, "a rebuild is DROP + CREATE and must be disclosed");
    }

    #[test]
    fn no_rebuild_surfaces_the_typed_refusal() {
        let (from, to) = (schema(FROM), schema(TO));
        let err = plan(
            &from,
            &to,
            &Sqlite,
            &PlanOptions {
                allow_rebuild: false,
            },
        )
        .expect_err("sqlite cannot alter columns");
        assert_eq!(
            err.to_string(),
            "unsupported op `alter_column users.name (varchar(64) -> varchar(255))` \
             for dialect sqlite: sqlite has no ALTER COLUMN"
        );
    }

    #[test]
    fn mysql_alters_in_place() {
        let (from, to) = (schema(FROM), schema(TO));
        let p = plan(&from, &to, &Mysql, &PlanOptions::default()).expect("plans");
        assert!(p.rebuilds.is_empty(), "{:?}", p.rebuilds);
        assert!(p
            .script()
            .contains("ALTER TABLE `users` MODIFY COLUMN `name` varchar(255) NOT NULL;"));
        assert!(p.lossy, "dropping users.legacy destroys its values");
    }

    #[test]
    fn postgres_drops_pk_by_conventional_constraint_name() {
        let from = schema("CREATE TABLE t (a INT, PRIMARY KEY (a));");
        let to = schema("CREATE TABLE t (a INT);");
        let p = plan(&from, &to, &Postgres, &PlanOptions::default()).expect("plans");
        assert!(p.rebuilds.is_empty(), "{:?}", p.rebuilds);
        assert_eq!(p.script(), "ALTER TABLE t DROP CONSTRAINT t_pkey;");
        assert!(!p.lossy, "dropping a primary key keeps every row and value");
    }

    #[test]
    fn postgres_identity_toggle_falls_back_to_rebuild() {
        let from = schema("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id));");
        let to = schema("CREATE TABLE t (id INT NOT NULL AUTO_INCREMENT, PRIMARY KEY (id));");
        let p = plan(&from, &to, &Postgres, &PlanOptions::default()).expect("plans");
        assert_eq!(p.rebuilds, vec!["t".to_string()]);
        assert!(p
            .script()
            .contains("id int NOT NULL GENERATED BY DEFAULT AS IDENTITY"));
    }

    #[test]
    fn empty_diff_plans_empty_script() {
        let s = schema(FROM);
        for d in all_dialects() {
            let p = plan(&s, &s.clone(), d, &PlanOptions::default()).expect("plans");
            assert!(p.statements.is_empty(), "{}", d.name());
        }
    }
}
