//! The 151 project cards of the synthetic corpus.
//!
//! Every row below is derived from the paper's published aggregates:
//!
//! * pattern populations and per-pattern class profiles — Fig. 4 / Table 2;
//! * the joint distribution of patterns × absolute birth-month buckets —
//!   Fig. 7 (M0: 52, M1–6: 38, M7–12: 13, >M12: 48);
//! * the label marginals of Table 1;
//! * the per-pattern medians of post-birth activity — §6.1
//!   (Radical Sign ≈ 13, Siesta ≈ 17, Quantum Steps ≈ 22, Smoking
//!   Funnel ≈ 189, Regularly Curated ≈ 250, the rest < 3);
//! * the exception counts of Table 2 (Sigmoid 2, Late Riser 1, Quantum
//!   Steps 2, Siesta 3).
//!
//! The numbers are *plans*; the actual labels are measured downstream by
//! the full pipeline. `tests/corpus_calibration.rs` asserts the emergent
//! aggregates match the paper.

use schemachron_core::Pattern;

use crate::spec::Card;

/// One compact card row: (birth, top, duration, total units, birth fraction,
/// active growth months, tail units, tail months, exception?).
struct Row {
    b: u32,
    t: u32,
    d: u32,
    total: u32,
    f: f64,
    agm: u32,
    tail: u32,
    tail_m: u32,
    exc: bool,
}

#[allow(clippy::too_many_arguments)]
fn row(b: u32, t: u32, d: u32, total: u32, f: f64, agm: u32, tail: u32, tail_m: u32) -> Row {
    Row {
        b,
        t,
        d,
        total,
        f,
        agm,
        tail,
        tail_m,
        exc: false,
    }
}

#[allow(clippy::too_many_arguments)]
fn exc(b: u32, t: u32, d: u32, total: u32, f: f64, agm: u32, tail: u32, tail_m: u32) -> Row {
    Row {
        exc: true,
        ..row(b, t, d, total, f, agm, tail, tail_m)
    }
}

/// Builds all 151 cards, in pattern order.
pub fn all_cards() -> Vec<Card> {
    let mut out = Vec::with_capacity(151);
    let mut push = |pattern: Pattern, maintenance_bias: f64, rows: Vec<Row>| {
        for r in rows {
            let idx = out.len();
            out.push(Card {
                name: format!("{}-{:03}", slug(pattern), idx),
                pattern,
                exception: r.exc,
                duration: r.d,
                birth_month: r.b,
                top_month: r.t,
                agm: r.agm,
                birth_frac: r.f,
                total_units: r.total,
                tail_units: r.tail,
                tail_months: r.tail_m,
                maintenance_bias,
            });
        }
    };

    push(Pattern::Flatliner, 0.05, flatliner_rows());
    push(Pattern::RadicalSign, 0.12, radical_sign_rows());
    push(Pattern::Sigmoid, 0.08, sigmoid_rows());
    push(Pattern::LateRiser, 0.06, late_riser_rows());
    push(Pattern::QuantumSteps, 0.2, quantum_steps_rows());
    push(Pattern::RegularlyCurated, 0.25, regularly_curated_rows());
    push(Pattern::Siesta, 0.18, siesta_rows());
    push(Pattern::SmokingFunnel, 0.3, smoking_funnel_rows());
    assert_eq!(out.len(), 151, "the corpus must hold exactly 151 projects");
    out
}

/// Cycles the 151 calibrated cards out to `size` entries: card `i` reuses
/// calibrated card `i % 151` under a fresh name (`{name}-x{cycle}`), so it
/// gets its own DDL mixture (the materializer seeds per project name) while
/// keeping the card's exact timing skeleton. Every **complete** 151-card
/// cycle reproduces the paper's joint label distribution exactly; see
/// [`stratified_cards`] for the mode that only emits complete cycles.
pub fn scaled_cards(size: usize) -> Vec<Card> {
    let cards = all_cards();
    (0..size)
        .map(|i| {
            let mut card = cards[i % cards.len()].clone();
            card.name = format!("{}-x{}", card.name, i / cards.len());
            card
        })
        .collect()
}

/// The stratified corpus generator: `scale` complete cycles of the 151
/// calibrated cards (`scale × 151` projects). Because only whole cycles are
/// emitted, every population the paper reports is preserved **exactly** at
/// any scale — Fig. 4 pattern populations, Fig. 6 label-space coverage,
/// Fig. 7 birth buckets and the Table 1 label marginals all multiply by
/// `scale`, and Table 2 exception counts scale with them (asserted in
/// `tests/stratified.rs`).
pub fn stratified_cards(scale: usize) -> Vec<Card> {
    scaled_cards(scale * 151)
}

fn slug(p: Pattern) -> &'static str {
    match p {
        Pattern::Flatliner => "flatliner",
        Pattern::RadicalSign => "radical",
        Pattern::Sigmoid => "sigmoid",
        Pattern::LateRiser => "latriser",
        Pattern::QuantumSteps => "quantum",
        Pattern::RegularlyCurated => "curated",
        Pattern::Siesta => "siesta",
        Pattern::SmokingFunnel => "funnel",
    }
}

/// 23 Flatliners: born at V⁰, top band at V⁰.
/// 18 with the full activity at birth, 5 with a ≥ 90% birth and a dribble.
fn flatliner_rows() -> Vec<Row> {
    let full: [(u32, u32); 18] = [
        (14, 4),
        (16, 5),
        (19, 6),
        (22, 7),
        (25, 8),
        (28, 9),
        (31, 10),
        (34, 11),
        (38, 12),
        (42, 13),
        (47, 14),
        (52, 15),
        (58, 16),
        (64, 18),
        (71, 20),
        (79, 22),
        (88, 25),
        (98, 30),
    ];
    let high: [(u32, u32); 5] = [(17, 20), (26, 25), (36, 30), (48, 35), (60, 40)];
    let mut rows: Vec<Row> = full
        .iter()
        .map(|&(d, total)| row(0, 0, d, total, 1.0, 0, 0, 0))
        .collect();
    rows.extend(
        high.iter()
            .map(|&(d, total)| row(0, 0, d, total, 0.93, 0, total / 14, 1)),
    );
    rows
}

/// 41 Radical Signs: born V⁰/early, top band early, long flat tail.
/// Interval mix: 15 zero, 17 soon, 9 fair. Post-birth activity median ≈ 13.
fn radical_sign_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    // (a) Zero interval (top at birth): early-born, 12 full + 3 high.
    for &(b, d, total) in &[
        (1u32, 14u32, 10u32),
        (2, 20, 12),
        (3, 28, 15),
        (1, 33, 18),
        (2, 40, 20),
        (4, 45, 22),
        (5, 50, 25),
        (6, 55, 28),
        (2, 60, 30),
        (3, 70, 35),
        (7, 30, 26),
        (8, 40, 24),
    ] {
        rows.push(row(b, b, d, total, 1.0, 0, 0, 0));
    }
    for &(b, d, total, tail) in &[(4u32, 30u32, 20u32, 1u32), (9, 44, 30, 2), (13, 61, 40, 3)] {
        rows.push(row(b, b, d, total, 0.93, 0, tail, 1));
    }
    // (b) Soon interval, born M0 (12 projects, high birth volume).
    //     Post-birth activity = total - round(f * total).
    for &(t, d, total, f) in &[
        (1u32, 15u32, 13u32, 0.85f64), // after ≈ 2
        (1, 20, 27, 0.85),             // after ≈ 4
        (2, 25, 40, 0.85),             // after ≈ 6
        (2, 30, 53, 0.85),             // after ≈ 8
        (3, 35, 67, 0.85),             // after ≈ 10
        (3, 40, 60, 0.78),             // after ≈ 13
        (2, 45, 65, 0.8),              // after ≈ 13
        (4, 50, 75, 0.8),              // after ≈ 15
        (1, 60, 85, 0.8),              // after ≈ 17
        (5, 70, 100, 0.8),             // after ≈ 20
        (6, 80, 120, 0.8),             // after ≈ 24
        (3, 90, 140, 0.8),             // after ≈ 28
    ] {
        rows.push(row(0, t, d, total, f, 0, 0, 0));
    }
    // (c) Soon interval, born M1–M6 (5 projects, fair birth volume).
    rows.push(row(1, 3, 25, 20, 0.3, 0, 0, 0)); // after 14
    rows.push(row(2, 4, 30, 30, 0.5, 0, 0, 0)); // after 15
    rows.push(row(3, 6, 35, 44, 0.55, 1, 0, 0)); // after 20
    rows.push(row(4, 7, 45, 60, 0.6, 0, 0, 0)); // after 24
    rows.push(row(5, 9, 50, 80, 0.6, 1, 0, 0)); // after 32
                                                // (d) Fair interval (9 projects): 4 born M0, 3 M1–6, 2 M7–12.
    rows.push(row(0, 10, 41, 50, 0.45, 1, 0, 0)); // top at exactly 25% of PUP
    rows.push(row(0, 5, 30, 40, 0.5, 0, 0, 0));
    rows.push(row(0, 8, 60, 60, 0.4, 1, 0, 0));
    rows.push(row(0, 12, 70, 70, 0.55, 3, 0, 0));
    rows.push(row(2, 9, 40, 56, 0.5, 1, 0, 0));
    rows.push(row(4, 14, 80, 90, 0.6, 1, 0, 0));
    rows.push(row(6, 18, 90, 100, 0.65, 3, 0, 0));
    rows.push(row(7, 16, 75, 60, 0.15, 0, 0, 0)); // low birth volume
    rows.push(row(10, 20, 85, 80, 0.2, 0, 0, 0)); // low birth volume
    rows
}

/// 19 Sigmoids: born mid-life, immediate (zero/soon) rise, long tail.
/// Two exceptions are born early (§5.2).
fn sigmoid_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    // Zero interval: 1 full + 12 high (all born after the first year).
    rows.push(row(20, 20, 40, 20, 1.0, 0, 0, 0));
    for &(b, d, total) in &[
        (15u32, 30u32, 20u32),
        (18, 40, 25),
        (20, 45, 30),
        (25, 50, 22),
        (14, 35, 18),
        (30, 60, 28),
        (35, 70, 35),
        (22, 55, 26),
        (40, 80, 30),
        (28, 65, 24),
        (45, 90, 40),
        (13, 34, 16),
    ] {
        rows.push(row(b, b, d, total, 0.93, 0, (total / 15).max(1), 1));
    }
    // Soon interval: 4 clean (fair volume) + 2 early-born exceptions.
    rows.push(row(20, 23, 50, 40, 0.6, 1, 0, 0));
    rows.push(row(22, 28, 80, 36, 0.5, 1, 0, 0));
    rows.push(row(30, 36, 75, 44, 0.55, 1, 0, 0));
    rows.push(row(12, 14, 30, 30, 0.6, 0, 0, 0));
    rows.push(exc(7, 10, 36, 28, 0.6, 0, 0, 0)); // born early (violation)
    rows.push(exc(6, 9, 34, 26, 0.5, 0, 0, 0)); // born early (violation)
    rows
}

/// 14 Late Risers: born late, immediate rise, short tail.
/// One exception is born (and tops) in middle life (§5.2).
fn late_riser_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    for &(b, d, total) in &[
        (16u32, 20u32, 12u32),
        (20, 25, 15),
        (24, 30, 14),
        (30, 38, 16),
        (36, 45, 18),
        (44, 55, 20),
        (52, 65, 22),
        (60, 75, 25),
    ] {
        rows.push(row(b, b, d, total, 1.0, 0, 0, 0));
    }
    for &(b, d, total) in &[(18u32, 22u32, 20u32), (28, 34, 24), (40, 50, 30)] {
        rows.push(row(b, b, d, total, 0.93, 0, (total / 15).max(1), 1));
    }
    rows.push(row(25, 27, 32, 20, 0.85, 0, 0, 0));
    rows.push(row(48, 52, 60, 26, 0.85, 0, 0, 0));
    rows.push(exc(13, 14, 20, 24, 0.6, 0, 0, 0)); // born/tops in middle life
    rows
}

/// 23 Quantum Steps: few (≤ 3) focused steps between birth and top band.
/// Post-birth activity median ≈ 22. Two exceptions (§5.2).
fn quantum_steps_rows() -> Vec<Row> {
    vec![
        // Variant 1 (15 clean): born V0/early, top middle.
        row(0, 10, 30, 40, 0.8, 1, 0, 0),  // high volume, after 8
        row(0, 15, 40, 60, 0.4, 3, 0, 0),  // after 36
        row(0, 20, 45, 55, 0.45, 3, 0, 0), // after 30
        row(0, 14, 50, 44, 0.5, 0, 0, 0),  // after 22
        row(2, 12, 35, 36, 0.8, 0, 0, 0),  // high volume, after 7
        row(3, 20, 47, 40, 0.45, 2, 0, 0), // after 22
        row(4, 25, 60, 52, 0.4, 3, 0, 0),  // after 31
        row(5, 20, 50, 30, 0.5, 0, 0, 0),  // after 15
        row(6, 30, 70, 64, 0.35, 2, 0, 0), // after 42
        row(1, 14, 28, 24, 0.8, 0, 0, 0),  // high volume, after 5
        row(2, 10, 34, 28, 0.55, 2, 0, 0), // interior 7, agm 2 → fair
        row(3, 11, 38, 33, 0.55, 3, 0, 0), // interior 7, agm 3 → fair
        row(1, 9, 26, 20, 0.55, 2, 0, 0),  // interior 7, agm 2 → fair
        // Variant 1, born M7–M12 early (2 clean).
        row(7, 22, 52, 48, 0.8, 0, 0, 0),  // high volume, after 10
        row(9, 28, 64, 58, 0.45, 3, 0, 0), // interior 18, agm 3 → few
        // Variant 2 (6 clean): born middle (after the first year), top late.
        row(15, 35, 40, 50, 0.78, 0, 0, 0), // high volume, after 11
        row(14, 30, 36, 46, 0.5, 1, 0, 0),  // after 23
        row(18, 38, 46, 54, 0.4, 2, 0, 0),  // after 32
        row(20, 44, 52, 44, 0.5, 3, 0, 0),  // interior 23, agm 3 → few
        row(16, 36, 44, 26, 0.6, 0, 0, 0),  // after 10
        row(17, 40, 47, 22, 0.2, 0, 0, 0),  // low volume, after 18
        // Exceptions: one variant-1 project tops late; one is born middle.
        exc(4, 30, 36, 45, 0.5, 1, 0, 0), // early → late (violation)
        exc(6, 12, 21, 44, 0.5, 2, 0, 0), // middle-born (violation)
    ]
}

/// 14 Regularly Curated: > 3 active growth months, consistent maintenance.
/// Post-birth activity median ≈ 250; schemata start bigger.
fn regularly_curated_rows() -> Vec<Row> {
    vec![
        // Variant 1: born V0/early (11 projects).
        row(0, 30, 60, 330, 0.1, 6, 0, 0), // after ≈ 297, top middle
        row(0, 50, 60, 390, 0.15, 11, 0, 0), // after ≈ 332, top late, vlong
        row(0, 45, 55, 315, 0.2, 10, 0, 0), // after ≈ 252, top late, vlong
        row(2, 40, 50, 340, 0.12, 9, 0, 0), // after ≈ 299, top late, vlong
        row(3, 25, 55, 260, 0.3, 5, 0, 0), // after ≈ 182, top middle
        row(5, 35, 65, 400, 0.25, 9, 0, 0), // after ≈ 300, top middle
        row(6, 50, 60, 310, 0.2, 10, 0, 0), // after ≈ 248, top late, long
        row(8, 45, 52, 295, 0.15, 8, 0, 0), // after ≈ 251, top late, long
        row(10, 56, 70, 310, 0.3, 12, 0, 0), // after ≈ 217, top late, long
        row(12, 64, 68, 430, 0.1, 12, 0, 0), // after ≈ 387, top late, vlong
        row(13, 45, 80, 280, 0.2, 7, 0, 0), // after ≈ 224, top middle
        // Variant 2: born middle, top late (3 projects, high change rate).
        row(15, 32, 38, 250, 0.2, 13, 0, 0), // interior 16, agm 13 → high
        row(18, 40, 48, 290, 0.15, 17, 0, 0), // interior 21, agm 17 → high
        row(20, 42, 50, 360, 0.25, 16, 0, 0), // interior 21, agm 16 → high
    ]
}

/// 10 Siestas: born early, long sleep, change returns late.
/// Post-birth activity median ≈ 17. Three exceptions (§5.2).
fn siesta_rows() -> Vec<Row> {
    vec![
        row(0, 35, 40, 24, 0.55, 0, 0, 0), // after ≈ 11
        row(0, 40, 50, 20, 0.6, 0, 0, 0),  // after ≈ 8
        row(0, 30, 36, 30, 0.55, 2, 0, 0), // after ≈ 14
        row(0, 48, 58, 40, 0.6, 0, 0, 0),  // after ≈ 16
        row(0, 55, 64, 36, 0.5, 3, 0, 0),  // after ≈ 18
        row(0, 42, 48, 33, 0.4, 0, 0, 0),  // after ≈ 20
        row(3, 50, 56, 48, 0.5, 2, 0, 0),  // after ≈ 24
        exc(4, 60, 70, 80, 0.8, 4, 0, 0),  // >3 active months; high volume
        exc(5, 52, 60, 90, 0.2, 5, 0, 0),  // >3 active months; low volume
        exc(8, 58, 68, 60, 0.5, 1, 0, 0),  // interval long, not very long
    ]
}

/// 7 Smoking Funnels: born mid-life at fair volume, dense change after.
/// Post-birth activity median ≈ 189; the tail keeps changing.
fn smoking_funnel_rows() -> Vec<Row> {
    vec![
        row(13, 20, 28, 260, 0.4, 5, 12, 2), // after ≈ 156, agm/interior high
        row(14, 21, 30, 290, 0.4, 6, 14, 2), // after ≈ 174
        row(15, 22, 31, 315, 0.4, 6, 15, 3), // after ≈ 189 (the median)
        row(16, 24, 34, 340, 0.4, 5, 16, 2), // after ≈ 204
        row(18, 27, 38, 480, 0.4, 7, 20, 3), // after ≈ 288
        row(20, 29, 41, 520, 0.4, 8, 24, 3), // after ≈ 312
        row(22, 32, 45, 560, 0.8, 8, 26, 3), // high-volume outlier, after 112
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn populations_match_figure4() {
        let cards = all_cards();
        let mut counts: BTreeMap<Pattern, usize> = BTreeMap::new();
        for c in &cards {
            *counts.entry(c.pattern).or_insert(0) += 1;
        }
        assert_eq!(counts[&Pattern::Flatliner], 23);
        assert_eq!(counts[&Pattern::RadicalSign], 41);
        assert_eq!(counts[&Pattern::Sigmoid], 19);
        assert_eq!(counts[&Pattern::LateRiser], 14);
        assert_eq!(counts[&Pattern::QuantumSteps], 23);
        assert_eq!(counts[&Pattern::RegularlyCurated], 14);
        assert_eq!(counts[&Pattern::Siesta], 10);
        assert_eq!(counts[&Pattern::SmokingFunnel], 7);
    }

    #[test]
    fn exceptions_match_table2() {
        let cards = all_cards();
        let mut exc: BTreeMap<Pattern, usize> = BTreeMap::new();
        for c in cards.iter().filter(|c| c.exception) {
            *exc.entry(c.pattern).or_insert(0) += 1;
        }
        assert_eq!(exc.get(&Pattern::Sigmoid), Some(&2));
        assert_eq!(exc.get(&Pattern::LateRiser), Some(&1));
        assert_eq!(exc.get(&Pattern::QuantumSteps), Some(&2));
        assert_eq!(exc.get(&Pattern::Siesta), Some(&3));
        assert_eq!(exc.values().sum::<usize>(), 8);
    }

    #[test]
    fn birth_buckets_match_figure7() {
        let cards = all_cards();
        let mut buckets = [0usize; 4];
        for c in &cards {
            let b = match c.birth_month {
                0 => 0,
                1..=6 => 1,
                7..=12 => 2,
                _ => 3,
            };
            buckets[b] += 1;
        }
        assert_eq!(buckets, [52, 38, 13, 48]);
    }

    #[test]
    fn all_schedules_resolve() {
        for c in all_cards() {
            let s = c.schedule();
            assert_eq!(s.total(), c.total_units, "{}", c.name);
            assert!(s.events.first().unwrap().0 == c.birth_month, "{}", c.name);
            assert!(
                s.events.iter().all(|(m, _)| *m < c.duration),
                "{}: event beyond duration",
                c.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let cards = all_cards();
        let mut names: Vec<&str> = cards.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cards.len());
    }

    #[test]
    fn durations_exceed_twelve_months() {
        assert!(all_cards().iter().all(|c| c.duration >= 13));
    }
}
