//! Criterion benches, one per reproduced table and figure: each measures
//! the time to regenerate the artifact from a prebuilt corpus context.

use criterion::{criterion_group, criterion_main, Criterion};

use schemachron_bench::context::ExpContext;
use schemachron_bench::{experiments as exp, DEFAULT_SEED};

fn bench_experiments(c: &mut Criterion) {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let mut g = c.benchmark_group("experiments");
    g.sample_size(20);

    g.bench_function("table1", |b| b.iter(|| exp::table1(&ctx)));
    g.bench_function("table2", |b| b.iter(|| exp::table2(&ctx)));
    g.bench_function("figure1", |b| b.iter(|| exp::figure1(&ctx)));
    g.bench_function("figure2", |b| b.iter(|| exp::figure2(&ctx)));
    g.bench_function("figure3", |b| b.iter(|| exp::figure3(&ctx)));
    g.bench_function("figure4", |b| b.iter(|| exp::figure4(&ctx)));
    g.bench_function("figure5", |b| b.iter(|| exp::figure5(&ctx)));
    g.bench_function("figure6", |b| b.iter(|| exp::figure6(&ctx)));
    g.bench_function("figure7", |b| b.iter(|| exp::figure7(&ctx)));
    g.bench_function("stats34", |b| b.iter(|| exp::stats34(&ctx)));
    g.bench_function("stats52", |b| b.iter(|| exp::stats52(&ctx)));
    g.bench_function("stats61", |b| b.iter(|| exp::stats61(&ctx)));
    g.bench_function("stats62", |b| b.iter(|| exp::stats62(&ctx)));
    g.bench_function("stats63", |b| b.iter(|| exp::stats63(&ctx)));
    g.bench_function("ablation", |b| b.iter(|| exp::ablation(&ctx)));
    g.bench_function("tables", |b| b.iter(|| exp::tables_exp(&ctx)));
    g.bench_function("coevolution", |b| b.iter(|| exp::co_evolution_exp(&ctx)));
    g.bench_function("forecast", |b| b.iter(|| exp::forecast(&ctx)));
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
