#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-model
//!
//! The logical relational schema model and the change-detection (diff)
//! engine used throughout `schemachron`.
//!
//! The model captures exactly the *logical level* the EDBT 2025 study
//! "Time-Related Patterns Of Schema Evolution" measures: tables, attributes,
//! data types, and primary-/foreign-key participation. Physical concerns
//! (storage engines, indexes, tablespaces) are deliberately out of scope, as
//! they are in the paper.
//!
//! ## The unit of change
//!
//! The study's unit of measurement is the **affected attribute** (§3.2 of the
//! paper): an attribute that is
//!
//! * born with a new table ([`ChangeKind::AttributeBornWithTable`]),
//! * injected into an existing table ([`ChangeKind::AttributeInjected`]),
//! * deleted together with a removed table
//!   ([`ChangeKind::AttributeDeletedWithTable`]),
//! * ejected from a surviving table ([`ChangeKind::AttributeEjected`]),
//! * has its data type changed ([`ChangeKind::DataTypeChanged`]), or
//! * has its participation in a primary or foreign key updated
//!   ([`ChangeKind::KeyParticipationChanged`]).
//!
//! [`diff`] compares two schema versions and emits one
//! [`AttributeChange`] per affected attribute, so
//! [`SchemaDiff::attribute_change_count`] is precisely the paper's measure of
//! activity for a version transition.
//!
//! ## Quick example
//!
//! ```
//! use schemachron_model::{Schema, Table, Attribute, DataType, diff};
//!
//! let mut v1 = Schema::new();
//! let mut t = Table::new("users");
//! t.push_attribute(Attribute::new("id", DataType::named("int")));
//! t.push_attribute(Attribute::new("name", DataType::with_params("varchar", vec![64])));
//! v1.insert_table(t);
//!
//! let mut v2 = v1.clone();
//! v2.table_mut("users")
//!     .unwrap()
//!     .push_attribute(Attribute::new("email", DataType::with_params("varchar", vec![128])));
//!
//! let d = diff(&v1, &v2);
//! assert_eq!(d.attribute_change_count(), 1);
//! assert_eq!(d.expansion_count(), 1);
//! assert_eq!(d.maintenance_count(), 0);
//! ```

mod diff;
mod name;
mod render;
mod schema;

pub use diff::{diff, AttributeChange, ChangeKind, SchemaDiff};
pub use name::Name;
pub use render::render_schema_sql;
pub use schema::{Attribute, DataType, ForeignKey, Schema, SchemaStats, Table, View};
