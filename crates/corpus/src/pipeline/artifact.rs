//! The typed artifacts flowing between pipeline stages.
//!
//! Each type is the output of exactly one stage (see
//! [`crate::pipeline::stages`]) and the input of the next:
//!
//! ```text
//! CardSpec → RawScripts → ParsedDdl → LogicalSchema → DiffSeq
//!          → ProjectHistory → MetricVector → LabelTuple → PatternClass
//! ```
//!
//! Heavyweight intermediates share [`Schema`] values via `Arc`, so the
//! logical-schema and diff artifacts of one project reference the same
//! reconstructed schemas instead of cloning them per stage.

use std::sync::Arc;

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_core::Pattern;
use schemachron_ddl::ast::Statement;
use schemachron_ddl::Diagnostic;
use schemachron_history::Date;
use schemachron_model::{Schema, SchemaDiff};

use crate::materialize::MaterializedProject;
use crate::spec::Card;

use super::stage::{fnv1a, StageKey, FNV_OFFSET};

/// The root input of a project chain: one trait card plus the corpus seed.
#[derive(Clone, Debug)]
pub struct CardSpec {
    /// The project's trait card.
    pub card: Card,
    /// The corpus seed (varies DDL mixture and identifiers, not timing).
    pub seed: u64,
}

/// Content hash of a chain's root input: the card's full serialized content
/// mixed with the seed. Any edit to any card field (or a different seed)
/// yields a different root key and thereby invalidates every downstream
/// stage of that project — and only that project.
pub fn card_fingerprint(card: &Card, seed: u64) -> StageKey {
    // Cards are plain serializable data, so serialization cannot fail; the
    // Debug fallback keeps the fingerprint content-derived even if it ever
    // did (every field also appears in the Debug form).
    let body = serde_json::to_string(card).unwrap_or_else(|_| format!("{card:?}"));
    fnv1a(fnv1a(FNV_OFFSET, body.as_bytes()), &seed.to_le_bytes())
}

/// Stage 1 output: the materialized DDL commit history and source heartbeat.
#[derive(Clone, Debug)]
pub struct RawScripts {
    /// Dated migration scripts plus source-activity events.
    pub project: MaterializedProject,
}

/// One parsed DDL commit.
#[derive(Clone, Debug)]
pub struct ParsedCommit {
    /// Commit date.
    pub date: Date,
    /// The parsed statements, in script order.
    pub statements: Vec<Statement>,
    /// Parser diagnostics for this commit's script.
    pub diagnostics: Vec<Diagnostic>,
}

/// Stage 2 output: every commit's script parsed into statements.
#[derive(Clone, Debug)]
pub struct ParsedDdl {
    /// Parsed commits in chronological order (stable-sorted by date, same
    /// as `ProjectHistoryBuilder::build`).
    pub commits: Vec<ParsedCommit>,
}

/// Stage 3 output: the reconstructed logical schema after each commit.
#[derive(Clone, Debug)]
pub struct LogicalSchema {
    /// `(date, schema-after-commit)` in chronological order.
    pub snapshots: Vec<(Date, Arc<Schema>)>,
    /// All parser + builder diagnostics, in ingestion order.
    pub diagnostics: Vec<Diagnostic>,
}

/// One versioned diff step.
#[derive(Clone, Debug)]
pub struct DiffStep {
    /// Commit date.
    pub date: Date,
    /// The schema at this version (shared with [`LogicalSchema`]).
    pub schema: Arc<Schema>,
    /// The delta from the previous version (from the empty schema for the
    /// first version).
    pub diff: SchemaDiff,
}

/// Stage 4 output: the version-over-version diff sequence.
#[derive(Clone, Debug)]
pub struct DiffSeq {
    /// The diff steps in chronological order.
    pub steps: Vec<DiffStep>,
    /// Diagnostics carried through from [`LogicalSchema`].
    pub diagnostics: Vec<Diagnostic>,
}

/// Stage 6 output: the measured §3.2 time metrics.
#[derive(Clone, Debug)]
pub struct MetricVector {
    /// The metrics vector.
    pub metrics: TimeMetrics,
}

/// Stage 7 output: the quantized §3.3 label tuple.
#[derive(Clone, Copy, Debug)]
pub struct LabelTuple {
    /// The measured labels.
    pub labels: Labels,
}

/// Stage 8 output: the project's pattern classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternClass {
    /// The strict §4 classification, when exactly one definition matches.
    pub strict: Option<Pattern>,
    /// The nearest pattern under the violation-count relaxation.
    pub nearest: Pattern,
    /// How many of the nearest pattern's clauses the labels violate.
    pub violations: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cards::all_cards;

    #[test]
    fn fingerprint_separates_cards_and_seeds() {
        let cards = all_cards();
        let a = card_fingerprint(&cards[0], 42);
        assert_eq!(a, card_fingerprint(&cards[0], 42));
        assert_ne!(a, card_fingerprint(&cards[0], 43), "seed must matter");
        assert_ne!(a, card_fingerprint(&cards[1], 42), "card must matter");

        let mut edited = cards[0].clone();
        edited.maintenance_bias += 0.01;
        assert_ne!(
            a,
            card_fingerprint(&edited, 42),
            "every card field must contribute"
        );
    }
}
