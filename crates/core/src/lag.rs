//! Joint schema/source **co-evolution** measures — the lineage of the
//! study's companion paper on joint source and schema evolution (ref \[45\]),
//! which the time-related patterns build on. Fig. 1 and Fig. 3 of the paper
//! always draw the two cumulative lines together; this module quantifies
//! their relationship.

use schemachron_history::ProjectHistory;
use schemachron_stats::spearman;
use serde::{Deserialize, Serialize};

/// How a project's schema line relates to its source line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoEvolution {
    /// Normalized time at which the *schema* reaches 50% of its total.
    pub schema_half_time: f64,
    /// Normalized time at which the *source* reaches 50% of its total.
    pub source_half_time: f64,
    /// `source_half_time − schema_half_time`: positive when the schema
    /// leads the source code (the typical case — "freeze the schema first;
    /// then build all the applications on top of it").
    pub lead: f64,
    /// Mean vertical gap `schema_cum − source_cum` over normalized time;
    /// positive when the schema line sits above the source line.
    pub mean_gap: f64,
    /// Spearman correlation of the two sampled cumulative lines. Zero when
    /// either line is constant over the sampled window (rank correlation is
    /// undefined there — e.g. a Flatliner's schema line sits at 100%
    /// throughout).
    pub line_correlation: f64,
}

/// Number of sample points used for the co-evolution comparison.
pub const CO_EVOLUTION_SAMPLES: usize = 50;

/// Computes the co-evolution measures, or `None` when either line carries
/// no activity at all.
pub fn co_evolution(p: &ProjectHistory) -> Option<CoEvolution> {
    if p.schema_heartbeat().total() <= 0.0 || p.source_heartbeat().total() <= 0.0 {
        return None;
    }
    let schema = p.schema_heartbeat().sample_normalized(CO_EVOLUTION_SAMPLES);
    let source = p.source_heartbeat().sample_normalized(CO_EVOLUTION_SAMPLES);

    let half_time = |line: &[f64]| -> f64 {
        let n = line.len();
        line.iter().position(|&v| v >= 0.5).map_or(1.0, |i| {
            if n <= 1 {
                0.0
            } else {
                i as f64 / (n - 1) as f64
            }
        })
    };
    let schema_half_time = half_time(&schema);
    let source_half_time = half_time(&source);
    let mean_gap =
        schema.iter().zip(&source).map(|(h, s)| h - s).sum::<f64>() / schema.len() as f64;
    let rho = spearman(&schema, &source);
    Some(CoEvolution {
        schema_half_time,
        source_half_time,
        lead: source_half_time - schema_half_time,
        mean_gap,
        line_correlation: if rho.is_finite() { rho } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::MonthId;

    fn project(schema: Vec<f64>, source: Vec<f64>) -> ProjectHistory {
        ProjectHistory::from_heartbeats("lag", MonthId(0), schema, source, [0; 6])
    }

    #[test]
    fn schema_leading_source_has_positive_lead() {
        // Schema all at month 0; source spread evenly.
        let mut schema = vec![0.0; 20];
        schema[0] = 10.0;
        let p = project(schema, vec![1.0; 20]);
        let c = co_evolution(&p).unwrap();
        assert_eq!(c.schema_half_time, 0.0);
        assert!(c.source_half_time > 0.3);
        assert!(c.lead > 0.3);
        assert!(c.mean_gap > 0.4, "schema line sits above: {}", c.mean_gap);
    }

    #[test]
    fn late_schema_has_negative_lead() {
        let mut schema = vec![0.0; 20];
        schema[18] = 10.0;
        let p = project(schema, vec![1.0; 20]);
        let c = co_evolution(&p).unwrap();
        assert!(c.lead < -0.3);
        assert!(c.mean_gap < 0.0);
    }

    #[test]
    fn parallel_lines_correlate_strongly() {
        let p = project(vec![2.0; 30], vec![5.0; 30]);
        let c = co_evolution(&p).unwrap();
        assert!((c.lead).abs() < 0.05);
        assert!(c.line_correlation > 0.99);
        assert!(c.mean_gap.abs() < 0.05);
    }

    #[test]
    fn constant_line_has_zero_correlation() {
        // All schema change in month 0: the sampled line is constant 1.0.
        let mut schema = vec![0.0; 20];
        schema[0] = 10.0;
        let mut c = co_evolution(&project(schema, vec![1.0; 20])).unwrap();
        // Drop fractional noise: the line is constant from the first sample.
        c.line_correlation = c.line_correlation.abs();
        assert_eq!(c.line_correlation, 0.0);
    }

    #[test]
    fn missing_activity_yields_none() {
        assert!(co_evolution(&project(vec![0.0; 10], vec![1.0; 10])).is_none());
        assert!(co_evolution(&project(vec![1.0; 10], vec![0.0; 10])).is_none());
    }
}
