//! Parse diagnostics: the tolerant parser never fails, it reports.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A statement irrelevant to the logical schema was skipped
    /// (e.g. `INSERT`, `SET`, `CREATE INDEX`). Entirely expected in dumps.
    Skipped,
    /// A statement looked like DDL but could not be fully understood; it was
    /// skipped after recovery. The surrounding statements still parsed.
    Error,
}

/// One diagnostic produced while parsing a script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the event.
    pub severity: Severity,
    /// 1-based line where the offending statement started.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a [`Severity::Skipped`] diagnostic.
    pub fn skipped(line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Skipped,
            line,
            message: message.into(),
        }
    }

    /// Creates a [`Severity::Error`] diagnostic.
    pub fn error(line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            line,
            message: message.into(),
        }
    }

    /// Whether this diagnostic marks a recovered parse error (as opposed to
    /// an intentionally skipped, non-DDL statement).
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Skipped => "skipped",
            Severity::Error => "error",
        };
        write!(f, "line {}: {}: {}", self.line, tag, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_severity() {
        let d = Diagnostic::error(12, "unexpected token");
        assert_eq!(d.to_string(), "line 12: error: unexpected token");
        assert!(d.is_error());
        let s = Diagnostic::skipped(3, "INSERT statement");
        assert!(!s.is_error());
        assert!(s.to_string().contains("skipped"));
    }

    #[test]
    fn severity_orders_errors_above_skips() {
        assert!(Severity::Error > Severity::Skipped);
    }
}
