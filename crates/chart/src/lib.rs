#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-chart
//!
//! Renderers for the study's signature visualization: the **dual cumulative
//! progress chart** (Fig. 1 / Fig. 3 of the paper) showing, over normalized
//! project time, the cumulative fraction of schema evolution (dotted) and
//! source-code evolution (solid).
//!
//! Two backends: [`ascii`] for terminals (used by the CLI and the Figure 3
//! experiment bin) and [`svg`] for standalone vector files.
//!
//! ```
//! use schemachron_history::{MonthId, ProjectHistory};
//! use schemachron_chart::ascii::AsciiChart;
//!
//! let mut schema = vec![0.0; 24];
//! schema[0] = 10.0;
//! let p = ProjectHistory::from_heartbeats(
//!     "demo", MonthId::from_ym(2020, 1), schema, vec![3.0; 24], [10, 0, 0, 0, 0, 0]);
//! let art = AsciiChart::default().render(&p);
//! assert!(art.contains("100%"));
//! ```

pub mod ascii;
pub mod svg;
