//! The Shapiro–Wilk normality test, after Royston's algorithm AS R94
//! (*Applied Statistics* 44(4), 1995), valid for sample sizes 3 ≤ n ≤ 5000.
//!
//! §3.4 of the paper: "All the Shapiro-Wilks normality tests verify the
//! non-normal character of the data with the highest p-value for any of the
//! involved attributes in the order of 10⁻⁹."

/// The outcome of a Shapiro–Wilk test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShapiroResult {
    /// The W statistic, in `(0, 1]`; values near 1 indicate normality.
    pub w: f64,
    /// The p-value of the null hypothesis "the sample is normal".
    pub p_value: f64,
}

/// Errors from [`shapiro_wilk`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapiroError {
    /// Fewer than 3 or more than 5000 observations.
    BadSampleSize(usize),
    /// All observations identical (W undefined).
    ZeroRange,
}

impl std::fmt::Display for ShapiroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapiroError::BadSampleSize(n) => {
                write!(f, "Shapiro-Wilk requires 3..=5000 observations, got {n}")
            }
            ShapiroError::ZeroRange => write!(f, "all observations are identical"),
        }
    }
}

impl std::error::Error for ShapiroError {}

/// Runs the Shapiro–Wilk test on a sample.
///
/// ```
/// use schemachron_stats::shapiro_wilk;
/// // A heavily skewed sample is very non-normal:
/// let skewed: Vec<f64> = (0..50).map(|i| if i < 45 { 0.0 + i as f64 * 0.01 } else { 100.0 }).collect();
/// let r = shapiro_wilk(&skewed).unwrap();
/// assert!(r.p_value < 1e-6);
/// ```
pub fn shapiro_wilk(sample: &[f64]) -> Result<ShapiroResult, ShapiroError> {
    let n = sample.len();
    if !(3..=5000).contains(&n) {
        return Err(ShapiroError::BadSampleSize(n));
    }
    let mut x: Vec<f64> = sample.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in Shapiro-Wilk input"));
    if x[n - 1] - x[0] <= 0.0 {
        return Err(ShapiroError::ZeroRange);
    }

    let nf = n as f64;
    // Expected values of normal order statistics (Blom approximation).
    let half = n / 2;
    let mut m = vec![0.0; half];
    for (i, mi) in m.iter_mut().enumerate() {
        let rank = (n - i) as f64; // the upper half, largest first
        *mi = ppnd((rank - 0.375) / (nf + 0.25));
    }
    // The middle order statistic of an odd-sized sample has expectation 0,
    // so it contributes nothing to the sum of squares.
    let ssumm2: f64 = 2.0 * m.iter().map(|v| v * v).sum::<f64>();

    let rsn = 1.0 / nf.sqrt();
    let mut a = vec![0.0; half];
    if n > 5 {
        let a_n = -2.706056 * rsn.powi(5) + 4.434685 * rsn.powi(4)
            - 2.071190 * rsn.powi(3)
            - 0.147981 * rsn * rsn
            + 0.221157 * rsn
            + m[0] / ssumm2.sqrt();
        let a_n1 = -3.582633 * rsn.powi(5) + 5.682633 * rsn.powi(4)
            - 1.752461 * rsn.powi(3)
            - 0.293762 * rsn * rsn
            + 0.042981 * rsn
            + m[1] / ssumm2.sqrt();
        let phi = (ssumm2 - 2.0 * m[0] * m[0] - 2.0 * m[1] * m[1])
            / (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
        a[0] = a_n;
        a[1] = a_n1;
        for i in 2..half {
            a[i] = m[i] / phi.sqrt();
        }
    } else {
        let a_n = if n == 3 {
            std::f64::consts::FRAC_1_SQRT_2
        } else {
            -2.706056 * rsn.powi(5) + 4.434685 * rsn.powi(4)
                - 2.071190 * rsn.powi(3)
                - 0.147981 * rsn * rsn
                + 0.221157 * rsn
                + m[0] / ssumm2.sqrt()
        };
        let phi = if n == 3 {
            1.0
        } else {
            (ssumm2 - 2.0 * m[0] * m[0]) / (1.0 - 2.0 * a_n * a_n)
        };
        a[0] = a_n;
        for i in 1..half {
            a[i] = m[i] / phi.sqrt();
        }
    }

    // W = (Σ a_i (x_(n+1-i) - x_i))² / Σ (x_i - x̄)²
    let mean = x.iter().sum::<f64>() / nf;
    let ssq: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
    let mut num = 0.0;
    for i in 0..half {
        num += a[i] * (x[n - 1 - i] - x[i]);
    }
    let w = ((num * num) / ssq).min(1.0);

    // P-value per Royston (1995).
    let p_value = if n == 3 {
        let p = 6.0 / std::f64::consts::PI * ((w.sqrt()).asin() - (0.75f64).sqrt().asin());
        p.clamp(0.0, 1.0)
    } else if n <= 11 {
        let g = -2.273 + 0.459 * nf;
        let mu = 0.5440 - 0.39978 * nf + 0.025054 * nf * nf - 0.0006714 * nf * nf * nf;
        let sigma = (1.3822 - 0.77857 * nf + 0.062767 * nf * nf - 0.0020322 * nf * nf * nf).exp();
        let arg = g - (1.0 - w).ln();
        if arg <= 0.0 {
            0.0
        } else {
            let z = (-(arg.ln()) - mu) / sigma;
            norm_sf(z)
        }
    } else {
        let ln_n = nf.ln();
        let mu = 0.0038915 * ln_n.powi(3) - 0.083751 * ln_n * ln_n - 0.31082 * ln_n - 1.5861;
        let sigma = (0.0030302 * ln_n * ln_n - 0.082676 * ln_n - 0.4803).exp();
        let z = ((1.0 - w).ln() - mu) / sigma;
        norm_sf(z)
    };

    Ok(ShapiroResult { w, p_value })
}

/// Inverse of the standard normal CDF (Acklam's algorithm, |ε| < 1.2e-9).
fn ppnd(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) || p == 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal survival function `P(Z > z)`, far-tail safe.
pub(crate) fn norm_sf(z: f64) -> f64 {
    0.5 * erfc_nr(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes Chebyshev fit,
/// relative error < 1.2e-7 everywhere, monotone in the tails).
fn erfc_nr(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppnd_matches_known_quantiles() {
        assert!((ppnd(0.5)).abs() < 1e-9);
        assert!((ppnd(0.975) - 1.959964).abs() < 1e-5);
        assert!((ppnd(0.025) + 1.959964).abs() < 1e-5);
        assert!((ppnd(0.9999) - 3.719016).abs() < 1e-4);
    }

    #[test]
    fn norm_sf_tails() {
        assert!((norm_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_sf(1.96) - 0.0249979).abs() < 1e-5);
        // Far tail stays positive and tiny.
        let far = norm_sf(10.0);
        assert!(far > 0.0 && far < 1e-20);
    }

    #[test]
    fn normal_sample_gets_high_p() {
        // A near-normal, symmetric sample (normal quantiles themselves).
        let n = 60;
        let xs: Vec<f64> = (1..=n)
            .map(|i| ppnd((i as f64 - 0.375) / (n as f64 + 0.25)))
            .collect();
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.w > 0.98, "W = {}", r.w);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn exponential_sample_is_rejected() {
        // Deterministic exponential-ish data via inverse CDF.
        let n = 100;
        let xs: Vec<f64> = (1..=n)
            .map(|i| -((1.0 - i as f64 / (n as f64 + 1.0)).ln()))
            .collect();
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.w < 0.95);
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn power_law_like_sample_extremely_non_normal() {
        // Mimics the study's metrics: mass piled at 0 with a long tail.
        let mut xs = vec![0.0; 90];
        xs.extend((1..=30).map(|i| (i as f64).powi(3)));
        // Perturb the zeros slightly so the range is non-degenerate but the
        // shape stays pathological.
        for (i, x) in xs.iter_mut().enumerate().take(90) {
            *x = i as f64 * 1e-6;
        }
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.p_value < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn small_samples_supported_down_to_three() {
        let r = shapiro_wilk(&[1.0, 2.0, 3.0]).unwrap();
        assert!(r.w > 0.9 && r.p_value > 0.3);
        let r5 = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert!(r5.p_value < 0.05);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            shapiro_wilk(&[1.0, 2.0]),
            Err(ShapiroError::BadSampleSize(2))
        );
        assert_eq!(shapiro_wilk(&[5.0; 10]), Err(ShapiroError::ZeroRange));
    }

    #[test]
    fn uniform_sample_moderate_rejection() {
        let n = 200;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let r = shapiro_wilk(&xs).unwrap();
        // Uniform is non-normal but not absurdly so; W stays high-ish.
        assert!(r.w > 0.9);
        assert!(r.p_value < 0.05);
    }
}
