//! Live re-classification of a streamed commit chain through the
//! incremental stage cache.
//!
//! Every acknowledged append re-derives the project's time-pattern from its
//! full commit prefix. The result is published in the process-wide
//! pipeline cache under the [`STREAM_STAGE`] namespace, keyed by the WAL's
//! **chain checksum** — already a content hash of the entire commit history
//! — so one appended commit re-runs exactly one classification chain and
//! every other project (and every earlier prefix) stays a cache hit. The
//! lint `H008` audit restates this derivation from the payload's own
//! recorded inputs, exactly like the as-of (`H005`) and safety (`H006`)
//! namespaces.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::patterns::{classify, classify_nearest};
use schemachron_core::quantize::Labels;
use schemachron_corpus::pipeline::{
    derive_key, insert_stage_artifact, record_stage_quarantine, stage_artifact, StageKey,
};
use schemachron_hash::{fnv1a, FNV_OFFSET};
use schemachron_history::{Date, ProjectHistoryBuilder};

/// The streaming subsystem's stage-cache namespace.
pub const STREAM_STAGE: &str = "stream-classify";

/// Logic version of the streamed classification, mixed into every key.
/// Bump it when the commit→pattern derivation changes so stale cached
/// classifications can never be served.
pub const STREAM_LOGIC_VERSION: u32 = 1;

/// The pattern label of a project with no classifiable schema activity.
pub const UNCLASSIFIED: &str = "unclassified";

/// A cached streamed classification plus the provenance of its own cache
/// key, so the lint auditor can re-derive the key from first principles.
#[derive(Debug)]
pub struct StreamArtifact {
    /// The WAL chain checksum of the classified commit prefix.
    pub chain_crc: u64,
    /// How many commits that prefix holds.
    pub commit_count: u64,
    /// The derived pattern label (a strict pattern name, `~name` for a
    /// nearest-pattern fallback, or [`UNCLASSIFIED`]).
    pub pattern: String,
}

/// Derives the cache key of a streamed classification: the stage-chaining
/// hash of this namespace's identity over the commit-count-salted chain
/// checksum. Content-addressed — any change to any commit in the prefix
/// lands on a different key.
pub fn stream_key(chain_crc: u64, commit_count: u64) -> StageKey {
    let salted = fnv1a(FNV_OFFSET, &commit_count.to_le_bytes());
    let salted = fnv1a(salted, &chain_crc.to_le_bytes());
    derive_key(STREAM_STAGE, STREAM_LOGIC_VERSION, salted)
}

/// Classifies a commit prefix outright (no cache): builds the history and
/// derives the pattern label. This is the exact derivation `schemachron
/// analyze` applies to a finished project, so a streamed classification
/// can never disagree with a batch rebuild of the same commits.
pub fn classify_commits(project: &str, commits: &[(Date, String)]) -> String {
    let mut builder = ProjectHistoryBuilder::new(project);
    for (date, sql) in commits {
        builder.migration(*date, sql.clone());
    }
    let history = builder.build();
    let Some(metrics) = TimeMetrics::from_project(&history) else {
        return UNCLASSIFIED.to_owned();
    };
    let labels = Labels::from_metrics(&metrics);
    match classify(&labels) {
        Some(p) => p.name().to_owned(),
        None => {
            let (nearest, _violations) = classify_nearest(&labels);
            format!("~{}", nearest.name())
        }
    }
}

/// The classification for a commit prefix, served from the stage cache
/// when already derived. `chain_crc` must be the WAL chain checksum of
/// exactly `commits` — the store passes its own; batch rebuilds recompute
/// it with [`crate::wal::record_crc`].
pub fn classification_for(
    project: &str,
    commits: &[(Date, String)],
    chain_crc: u64,
) -> Arc<StreamArtifact> {
    let commit_count = commits.len() as u64;
    let key = stream_key(chain_crc, commit_count);
    if let Some(hit) = stage_artifact::<StreamArtifact>(STREAM_STAGE, key) {
        return hit;
    }
    let started = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| classify_commits(project, commits)));
    match built {
        Ok(pattern) => {
            let artifact = Arc::new(StreamArtifact {
                chain_crc,
                commit_count,
                pattern,
            });
            insert_stage_artifact(STREAM_STAGE, key, artifact.clone(), started.elapsed());
            artifact
        }
        Err(payload) => {
            // Quarantine: the key was never published, so the next caller
            // gets a clean retryable miss instead of a poisoned artifact.
            record_stage_quarantine(STREAM_STAGE);
            resume_unwind(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn commits(n: usize) -> Vec<(Date, String)> {
        (0..n)
            .map(|i| {
                let date = Date::from_str(&format!("2020-{:02}-10", i + 1)).unwrap();
                (date, format!("ALTER TABLE t ADD COLUMN c{i} INT;"))
            })
            .collect()
    }

    #[test]
    fn keys_chain_from_content_and_count() {
        let k = stream_key(7, 3);
        assert_ne!(k, stream_key(8, 3), "chain checksum must matter");
        assert_ne!(k, stream_key(7, 4), "commit count must matter");
        assert_eq!(k, stream_key(7, 3), "keys are deterministic");
    }

    #[test]
    fn warm_lookup_returns_the_cached_allocation() {
        let mut history = vec![(
            Date::from_str("2020-01-10").unwrap(),
            "CREATE TABLE t (a INT);".to_owned(),
        )];
        history.extend(commits(2));
        // A private chain checksum so this test never races others.
        let crc = 0x5717_1e57_0000_0001;
        let cold = classification_for("stream-classify-test", &history, crc);
        let warm = classification_for("stream-classify-test", &history, crc);
        assert!(Arc::ptr_eq(&cold, &warm), "second lookup must be a cache hit");
        assert_eq!(cold.commit_count, 3);
        assert_eq!(cold.chain_crc, crc);
        assert!(!cold.pattern.is_empty());
    }

    #[test]
    fn empty_history_is_unclassified() {
        assert_eq!(classify_commits("none", &[]), UNCLASSIFIED);
    }
}
