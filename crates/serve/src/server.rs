//! The TCP accept loop, graceful shutdown and structured request logging.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use crate::http;
use crate::router::AppState;

/// How often the accept loop wakes up to check for a shutdown request
/// while no connections arrive.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:8080` (port `0` picks a free one).
    pub addr: SocketAddr,
    /// Worker-pool size (min 1).
    pub jobs: usize,
    /// Bound on connections queued ahead of the workers; beyond it the
    /// accept loop answers `503` itself (backpressure).
    pub queue_depth: usize,
    /// Default corpus seed for routes without an explicit `?seed=`.
    pub seed: u64,
    /// Suppress the per-request log lines (used by tests and benches).
    pub quiet: bool,
    /// Wall-clock budget per request; past it the worker answers `504`
    /// while the handler finishes detached.
    pub request_deadline: Duration,
    /// How long an opened per-route circuit breaker sheds load before
    /// admitting a half-open probe.
    pub breaker_cooldown: Duration,
    /// Root directory for the streaming WALs (`POST /project/{id}/commit`).
    /// `None` uses a per-process temp directory: appends work but do not
    /// survive a restart of the service.
    pub stream_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let guard = crate::router::GuardConfig::default();
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 8080)),
            jobs: schemachron_corpus::effective_jobs().max(2),
            queue_depth: 128,
            seed: schemachron_bench::DEFAULT_SEED,
            quiet: false,
            request_deadline: guard.deadline,
            breaker_cooldown: guard.breaker_cooldown,
            stream_dir: None,
        }
    }
}

/// Requests a running [`Server`] to stop accepting and drain. Cloneable;
/// safe to trigger from any thread (and from a signal handler — it is a
/// single atomic store).
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Asks the server to shut down gracefully: stop accepting, serve every
    /// queued and in-flight request, then return from [`Server::run`].
    pub fn request_shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A bound (but not yet running) HTTP service.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
    shutdown: ShutdownHandle,
}

impl Server {
    /// Binds the listener and prepares shared state. The corpus is *not*
    /// built yet; [`Server::run`] warms it before accepting so the first
    /// real request never pays the build.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let guard = crate::router::GuardConfig {
            deadline: config.request_deadline,
            breaker_cooldown: config.breaker_cooldown,
        };
        let state = match &config.stream_dir {
            Some(dir) => AppState::with_stream_root(config.seed, guard, dir.clone()),
            None => AppState::with_guard(config.seed, guard),
        };
        Ok(Server {
            listener,
            state: Arc::new(state),
            config,
            shutdown: ShutdownHandle {
                flag: Arc::new(AtomicBool::new(false)),
            },
        })
    }

    /// The actually-bound address (resolves port `0`). Falls back to the
    /// configured address in the (theoretical) case the OS cannot report
    /// the bound one.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().unwrap_or(self.config.addr)
    }

    /// A handle that stops this server from another thread or a signal.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Installs this server's [`ShutdownHandle`] as the process SIGINT and
    /// SIGTERM target, turning Ctrl-C into a graceful drain. First caller
    /// wins (one server per process is the CLI's shape).
    #[cfg(unix)]
    pub fn install_signal_handler(&self) {
        signal::install(self.shutdown_handle());
    }

    /// Serves until shutdown is requested; returns the number of requests
    /// handled. Connections already queued when shutdown arrives are still
    /// served (poison-pill drain).
    pub fn run(self) -> std::io::Result<u64> {
        let state = Arc::clone(&self.state);
        // Warm the default corpus so /health answers immediately and
        // concurrent first requests cannot pile up behind the build.
        let _ = state.context(self.config.seed);

        let handler_state = Arc::clone(&self.state);
        let quiet = self.config.quiet;
        let pool = crate::pool::WorkerPool::new(
            self.config.jobs,
            self.config.queue_depth,
            Arc::new(move |stream| handle_connection(&handler_state, stream, quiet)),
        );

        self.listener.set_nonblocking(true)?;
        loop {
            // Check the flag *before* accepting, then keep accepting until
            // the backlog is empty: every connection established before the
            // shutdown request is still served.
            let stopping = self.shutdown.is_requested();
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(http::READ_TIMEOUT));
                    let _ = stream.set_write_timeout(Some(http::WRITE_TIMEOUT));
                    let _ = stream.set_nonblocking(false);
                    if let Err(mut bounced) = pool.try_dispatch(stream) {
                        // Queue full: shed load right here.
                        let resp = http::Response::json(
                            503,
                            &json!({"error": "server overloaded, retry later"}),
                        );
                        let _ = resp.write_to(&mut bounced);
                        http::finish(&mut bounced);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if stopping {
                        break;
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Stop accepting, then drain: queued connections are served before
        // the poison pills reach the workers.
        drop(self.listener);
        pool.shutdown();
        let served = self.state.total_requests();
        if !self.config.quiet {
            eprintln!("{}", json!({"evt": "shutdown", "requests_served": served}));
        }
        Ok(served)
    }
}

/// One connection: parse (bounded, timed), route through the request
/// guard, respond, log, close.
fn handle_connection(state: &Arc<AppState>, mut stream: TcpStream, quiet: bool) {
    let started = Instant::now();
    let (resp, method, target) = match http::read_request(&mut stream) {
        Ok(req) => {
            let resp = state.handle_guarded(&req);
            (resp, req.method, req.target)
        }
        Err(e) => (e.response(), "-".to_owned(), "-".to_owned()),
    };
    // Injected connection drop: the response is computed but never makes
    // it onto the wire — the client sees the connection die.
    if schemachron_fault::conn_drop_point(&target) {
        if !quiet {
            eprintln!(
                "{}",
                serde_json::json!({"evt": "conn-drop", "target": (target.as_str())})
            );
        }
        return;
    }
    let ok = resp.write_to(&mut stream).is_ok();
    http::finish(&mut stream);
    if !quiet {
        let ms = started.elapsed().as_secs_f64() * 1000.0;
        eprintln!(
            "{}",
            json!({
                "evt": "request",
                "method": method,
                "target": target,
                "status": (resp.status),
                "bytes": (resp.body.len()),
                "ms": ((ms * 1000.0).round() / 1000.0),
                "delivered": ok,
            })
        );
    }
}

/// SIGINT/SIGTERM → [`ShutdownHandle`] wiring, dependency-free: the C
/// `signal(2)` entry point ships with `std`'s own libc linkage. The handler
/// body is a single atomic store, which is async-signal-safe.
///
/// This module is the one audited `unsafe` exception in the workspace
/// (every other crate is `#![forbid(unsafe_code)]`; this crate denies it
/// and re-allows it here only).
// SAFETY: the only unsafe operations are the `signal(2)` FFI declaration
// and its two call sites below. `signal` is a libc entry point with the
// declared C ABI; the handler passed in is an `extern "C" fn` whose body
// performs a single `AtomicBool` store via `ShutdownHandle` — an
// async-signal-safe operation — and reads a `OnceLock` that is only ever
// written before the handler is installed.
#[cfg(unix)]
#[allow(unsafe_code)]
mod signal {
    use super::ShutdownHandle;
    use std::sync::OnceLock;

    static TARGET: OnceLock<ShutdownHandle> = OnceLock::new();

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        if let Some(h) = TARGET.get() {
            h.request_shutdown();
        }
    }

    pub fn install(handle: ShutdownHandle) {
        if TARGET.set(handle).is_ok() {
            unsafe {
                signal(SIGINT, on_signal);
                signal(SIGTERM, on_signal);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_port_zero_and_shuts_down_idle() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            jobs: 2,
            quiet: true,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        let handle = server.shutdown_handle();
        let t = std::thread::spawn(move || server.run());
        handle.request_shutdown();
        let served = t.join().unwrap().unwrap();
        assert_eq!(served, 0);
    }

    #[test]
    fn rebinding_same_port_fails() {
        let first = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            quiet: true,
            ..ServerConfig::default()
        })
        .unwrap();
        let clash = ServerConfig {
            addr: first.local_addr(),
            quiet: true,
            ..ServerConfig::default()
        };
        let err = match Server::bind(clash) {
            Ok(_) => panic!("port is taken, bind must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    }
}
