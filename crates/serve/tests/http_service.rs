//! End-to-end tests of the HTTP service over real sockets: protocol
//! guards, all documented routes, cache sharing under concurrency, and
//! graceful shutdown with in-flight requests.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// allow-in-tests escape hatch does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use schemachron_corpus::Corpus;
use schemachron_serve::{Server, ServerConfig, ShutdownHandle};

struct Running {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: JoinHandle<std::io::Result<u64>>,
}

impl Running {
    fn start(jobs: usize) -> Running {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            jobs,
            quiet: true,
            ..ServerConfig::default()
        })
        .expect("bind 127.0.0.1:0");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Running {
            addr,
            handle,
            thread,
        }
    }

    fn stop(self) -> u64 {
        self.handle.request_shutdown();
        self.thread.join().unwrap().unwrap()
    }
}

/// Sends raw bytes, returns the full response (head + body) as a string.
fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(bytes).expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let resp = raw(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
    let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_owned())
}

fn json_body(addr: SocketAddr, path: &str) -> (u16, serde_json::Value) {
    let (status, body) = get(addr, path);
    let v = serde_json::from_str(&body)
        .unwrap_or_else(|e| panic!("{path}: non-JSON body ({e:?}):\n{body}"));
    (status, v)
}

#[test]
fn protocol_guards_and_all_routes() {
    let srv = Running::start(4);
    let addr = srv.addr;

    // -- protocol guards ---------------------------------------------------
    let bad = raw(addr, b"GARBAGE\r\n\r\n");
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    assert!(bad.contains("malformed request"), "{bad}");

    let huge_decl = raw(
        addr,
        b"GET /health HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert!(huge_decl.starts_with("HTTP/1.1 413"), "{huge_decl}");

    let mut huge_head = Vec::from(&b"GET /health HTTP/1.1\r\n"[..]);
    while huge_head.len() <= schemachron_serve::http::MAX_HEAD_BYTES {
        huge_head.extend_from_slice(b"X-Filler: yadda yadda yadda yadda\r\n");
    }
    huge_head.extend_from_slice(b"\r\n");
    let huge = raw(addr, &huge_head);
    assert!(huge.starts_with("HTTP/1.1 413"), "{huge}");

    let post = raw(addr, b"POST /health HTTP/1.1\r\n\r\n");
    assert!(post.starts_with("HTTP/1.1 405"), "{post}");

    let (nf_status, nf) = json_body(addr, "/definitely/not/a/route");
    assert_eq!(nf_status, 404);
    assert!(nf["error"].as_str().is_some(), "404 body must be JSON");

    // -- the six documented routes ----------------------------------------
    let (s, health) = json_body(addr, "/health");
    assert_eq!(s, 200);
    assert_eq!(health["status"].as_str(), Some("ok"));

    let (s, listing) = json_body(addr, "/corpus/42/projects");
    assert_eq!(s, 200);
    assert_eq!(listing["count"].as_u64(), Some(151));
    let name = listing["projects"][0]["name"].as_str().unwrap().to_owned();

    let (s, hist) = json_body(addr, &format!("/project/{name}/history"));
    assert_eq!(s, 200);
    assert!(!hist["schema"].as_array().unwrap().is_empty());

    let (s, pat) = json_body(addr, &format!("/project/{name}/pattern"));
    assert_eq!(s, 200);
    assert!(pat["labels"]["birth_volume"].as_str().is_some());
    assert!(pat["nearest"]["pattern"].as_str().is_some());

    let (s, exp) = json_body(addr, "/experiments/exp_table1");
    assert_eq!(s, 200);
    assert!(exp["censuses"].as_array().is_some());

    let (s, svg) = get(addr, &format!("/chart/{name}.svg"));
    assert_eq!(s, 200);
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"), "{svg}");

    srv.stop();
}

#[test]
fn asof_routes_distinguish_bad_months_from_out_of_lifespan() {
    let srv = Running::start(2);
    let addr = srv.addr;

    let (_, listing) = json_body(addr, "/corpus/42/projects");
    let name = listing["projects"][0]["name"].as_str().unwrap().to_owned();

    // A well-formed as-of query answers 200 with the schema envelope.
    let (s, schema) = json_body(addr, &format!("/project/{name}/schema?asof=2009-06"));
    if s == 200 {
        assert_eq!(schema["asof"].as_str(), Some("2009-06"));
        assert!(schema["schema"]["tables"].as_array().is_some(), "{schema:?}");
    } else {
        // 2009-06 may fall outside this project's lifespan; then the
        // service must say so precisely, not claim a bad request.
        assert_eq!(s, 422, "{schema:?}");
    }

    // Malformed months are 400 with a hint, on every month-taking route.
    for path in [
        format!("/project/{name}/schema?asof=2009-13"),
        format!("/project/{name}/schema?asof=June-2009"),
        format!("/project/{name}/schema"),
        format!("/project/{name}/diff?from=2009-01"),
        format!("/project/{name}/diff?from=x&to=2009-02"),
    ] {
        let (s, body) = json_body(addr, &path);
        assert_eq!(s, 400, "{path}: {body:?}");
        assert!(body["error"].as_str().is_some(), "{path}: {body:?}");
        assert!(
            body["hint"].as_str().is_some_and(|h| h.contains("YYYY-MM")),
            "{path}: {body:?}"
        );
    }

    // A syntactically fine month outside the lifespan is 422, and the
    // body tells the caller where the lifespan actually is.
    let (s, body) = json_body(addr, &format!("/project/{name}/schema?asof=1901-01"));
    assert_eq!(s, 422, "{body:?}");
    assert!(body["lifespan"]["start"].as_str().is_some(), "{body:?}");
    assert!(body["lifespan"]["months"].as_u64().is_some(), "{body:?}");

    let start = body["lifespan"]["start"].as_str().unwrap().to_owned();
    let (s, body) = json_body(
        addr,
        &format!("/project/{name}/diff?from={start}&to=2525-01"),
    );
    assert_eq!(s, 422, "{body:?}");

    // Provenance of a table nobody ever created is 404, not 422.
    let (s, body) = json_body(addr, &format!("/project/{name}/provenance/no_such_table"));
    assert_eq!(s, 404, "{body:?}");
    assert_eq!(body["subject"].as_str(), Some("no_such_table"));

    srv.stop();
}

#[test]
fn concurrent_clients_share_one_corpus_build() {
    let srv = Running::start(4);
    let addr = srv.addr;

    // The server warms the default corpus before accepting; whatever the
    // process-wide count is now, 32 concurrent clients must not raise it.
    let (_, listing) = json_body(addr, "/corpus/42/projects");
    let name = Arc::new(
        listing["projects"][0]["name"]
            .as_str()
            .unwrap()
            .to_owned(),
    );
    let builds_before = Corpus::build_count();

    let clients: Vec<_> = (0..32)
        .map(|i| {
            let name = Arc::clone(&name);
            std::thread::spawn(move || {
                // Mix the corpus-backed routes; every client reconnects per
                // request like real HTTP/1.0-style traffic.
                let paths = [
                    format!("/project/{name}/pattern"),
                    format!("/project/{name}/history"),
                    "/corpus/42/projects".to_owned(),
                ];
                let path = &paths[i % paths.len()];
                for _ in 0..3 {
                    let (status, _) = get(addr, path);
                    assert_eq!(status, 200, "{path}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    assert_eq!(
        Corpus::build_count(),
        builds_before,
        "concurrent load must be served from the cached corpus"
    );

    let (_, health) = json_body(addr, "/health");
    assert!(health["requests"]["total"].as_u64().unwrap() >= 97);
    srv.stop();
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let srv = Running::start(2);
    let addr = srv.addr;
    // Warm up and grab a project id.
    let (_, listing) = json_body(addr, "/corpus/42/projects");
    let name = listing["projects"][0]["name"].as_str().unwrap().to_owned();

    // Every client connects and fully sends its request, *then* signals;
    // shutdown is requested only after all 8 are in flight. The accept
    // loop's drain-until-empty guarantee must still deliver every reply.
    let sent = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let path = format!("/project/{name}/pattern");
            let sent = Arc::clone(&sent);
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                    .expect("send");
                sent.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let mut out = String::new();
                s.read_to_string(&mut out).expect("read response");
                let (head, body) = out.split_once("\r\n\r\n").expect("head/body");
                let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
                (status, body.to_owned())
            })
        })
        .collect();
    while sent.load(std::sync::atomic::Ordering::SeqCst) < 8 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let served = srv.stop();

    for c in clients {
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200, "in-flight request dropped: {body}");
        assert!(body.trim_end().ends_with('}'), "truncated body: {body}");
    }
    assert!(served >= 9, "server undercounted: {served}");
}

/// POSTs a JSON body, returns `(status, head, parsed body)`.
fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String, serde_json::Value) {
    let resp = raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let v = serde_json::from_str(body)
        .unwrap_or_else(|e| panic!("{path}: non-JSON body ({e:?}):\n{body}"));
    (status, head.to_owned(), v)
}

#[test]
fn commit_appends_are_idempotent_over_the_wire() {
    // Duplicate and out-of-order POST retries — the exact bytes a client
    // resends after a dropped connection — must be acknowledged no-ops at
    // the socket level, and must never re-emit feed events.
    let stream_dir = std::env::temp_dir().join(format!(
        "schemachron-http-stream-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&stream_dir);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        jobs: 2,
        quiet: true,
        stream_dir: Some(stream_dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());

    let commit1 = r#"{"seq": 1, "date": "2020-01-10", "sql": "CREATE TABLE t (a INT);"}"#;
    let (s, _, ack) = post_json(addr, "/project/wire-a/commit", commit1);
    assert_eq!(s, 201, "{ack:?}");
    assert_eq!(ack["status"].as_str(), Some("appended"));
    assert_eq!(ack["cursor"].as_u64(), Some(1));

    // The client's connection died before the ack: it resends the exact
    // same bytes. The server must answer a duplicate ack, not re-append.
    let (s, _, dup) = post_json(addr, "/project/wire-a/commit", commit1);
    assert_eq!(s, 200, "{dup:?}");
    assert_eq!(dup["status"].as_str(), Some("duplicate"));
    assert_eq!(dup["last_seq"].as_u64(), Some(1));

    let commit2 = r#"{"seq": 2, "date": "2020-06-10", "sql": "ALTER TABLE t ADD COLUMN b INT;"}"#;
    let (s, _, ack2) = post_json(addr, "/project/wire-a/commit", commit2);
    assert_eq!(s, 201, "{ack2:?}");
    assert_eq!(ack2["cursor"].as_u64(), Some(2));

    // An out-of-order retry of seq 1 arriving *after* seq 2 is still a
    // safe no-op that reports where the chain actually is.
    let (s, _, late) = post_json(addr, "/project/wire-a/commit", commit1);
    assert_eq!(s, 200, "{late:?}");
    assert_eq!(late["status"].as_str(), Some("duplicate"));
    assert_eq!(late["last_seq"].as_u64(), Some(2));

    // A gap is refused with the expected sequence so the client resyncs.
    let gap = r#"{"seq": 5, "date": "2020-07-10", "sql": "DROP TABLE t;"}"#;
    let (s, _, refused) = post_json(addr, "/project/wire-a/commit", gap);
    assert_eq!(s, 409, "{refused:?}");
    assert_eq!(refused["expected_seq"].as_u64(), Some(3));

    // Idempotency is observable on the feed: two appends, two events —
    // the three retries emitted nothing.
    let (s, feed) = json_body(addr, "/changes?since=0");
    assert_eq!(s, 200, "{feed:?}");
    let events = feed["events"].as_array().unwrap();
    assert_eq!(events.len(), 2, "{feed:?}");
    assert_eq!(events[0]["cursor"].as_u64(), Some(1));
    assert_eq!(events[1]["cursor"].as_u64(), Some(2));

    // Wrong method on a real socket: the route resolves first, so the
    // answer is 405 with the route's Allow header — not a blanket rule.
    let wrong = raw(
        addr,
        b"GET /project/wire-a/commit HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert!(wrong.starts_with("HTTP/1.1 405"), "{wrong}");
    assert!(wrong.contains("Allow: POST"), "{wrong}");

    // And the feed speaks SSE when asked, with cursors as event ids.
    let sse = raw(
        addr,
        b"GET /changes?since=0&format=sse HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert!(sse.contains("text/event-stream"), "{sse}");
    assert!(sse.contains("id: 1"), "{sse}");
    assert!(sse.contains("event: transition"), "{sse}");

    handle.request_shutdown();
    thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&stream_dir);
}

#[test]
fn queue_overflow_sheds_load_with_503() {
    // One worker and a tiny queue: a burst of slow-ish requests must see
    // some 503s rather than unbounded queueing — and no hung connections.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        jobs: 1,
        queue_depth: 1,
        quiet: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());

    let clients: Vec<_> = (0..24)
        .map(|_| std::thread::spawn(move || get(addr, "/corpus/42/projects").0))
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503),
        "{statuses:?}"
    );
    assert!(statuses.contains(&200), "{statuses:?}");

    handle.request_shutdown();
    thread.join().unwrap().unwrap();
}
