//! The spec linter: trait cards against the paper's label domains, plus
//! cross-card corpus invariants.
//!
//! Per-card checks run on *any* card set (including user-supplied ones).
//! The cross-card invariants (S010–S014) pin the calibrated 151-project
//! corpus against the paper's published aggregates — Fig. 4 populations,
//! Fig. 7 birth buckets, Table 2 exception counts — and are only enabled
//! when the caller says the card set claims to *be* that corpus.

use std::collections::BTreeMap;

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_core::Pattern;
use schemachron_corpus::Card;
use schemachron_history::{MonthId, ProjectHistory};

use crate::diag::{Diagnostic, Report};

/// Fig. 4 pattern populations of the 151-project corpus, in
/// [`Pattern::ALL`] order.
const FIG4_POPULATIONS: [(Pattern, usize); 8] = [
    (Pattern::Flatliner, 23),
    (Pattern::RadicalSign, 41),
    (Pattern::Sigmoid, 19),
    (Pattern::LateRiser, 14),
    (Pattern::QuantumSteps, 23),
    (Pattern::RegularlyCurated, 14),
    (Pattern::Siesta, 10),
    (Pattern::SmokingFunnel, 7),
];

/// Table 2 exception counts (patterns with zero exceptions omitted).
const TABLE2_EXCEPTIONS: [(Pattern, usize); 4] = [
    (Pattern::Sigmoid, 2),
    (Pattern::LateRiser, 1),
    (Pattern::QuantumSteps, 2),
    (Pattern::Siesta, 3),
];

/// Fig. 7 birth-bucket populations: month 0, months 1–6, months 7–12,
/// beyond the first year.
const FIG7_BUCKETS: [usize; 4] = [52, 38, 13, 48];

/// The study's corpus size (§3).
const CORPUS_SIZE: usize = 151;

/// Lints one card: field domains, plan feasibility, exception-flag
/// consistency against the statically predicted labels.
pub fn lint_card(card: &Card, report: &mut Report) {
    let mut clean = true;
    let mut domain = |field: &str, value: f64, ok: bool| {
        if !ok {
            clean = false;
            report.push(Diagnostic::new(
                "S002",
                &card.name,
                format!("`{field}` = {value} is outside the domain [0, 1]"),
            ));
        }
    };
    domain(
        "birth_frac",
        card.birth_frac,
        card.birth_frac.is_finite() && (0.0..=1.0).contains(&card.birth_frac),
    );
    domain(
        "maintenance_bias",
        card.maintenance_bias,
        card.maintenance_bias.is_finite() && (0.0..=1.0).contains(&card.maintenance_bias),
    );
    if !clean {
        // Out-of-domain fields make feasibility and label prediction
        // meaningless; don't cascade.
        return;
    }

    let schedule = match card.try_schedule() {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::new(
                "S001",
                &card.name,
                format!("infeasible plan: {e}"),
            ));
            return;
        }
    };

    // Statically predict the labels the measurement pipeline would emit:
    // the schedule *is* the schema heartbeat, up to DDL realization.
    let mut activity = vec![0.0; card.duration as usize];
    for (m, u) in &schedule.events {
        activity[*m as usize] += f64::from(*u);
    }
    let n = activity.len();
    let project =
        ProjectHistory::from_heartbeats(&card.name, MonthId(0), activity, vec![1.0; n], [0; 6]);
    let Some(metrics) = TimeMetrics::from_project(&project) else {
        // Unreachable after try_schedule succeeded (ZeroEvolution is
        // rejected there), but a lint must never panic on odd input.
        report.push(Diagnostic::new(
            "S001",
            &card.name,
            "infeasible plan: schedule produces no schema activity".to_owned(),
        ));
        return;
    };
    let labels = Labels::from_metrics(&metrics);
    let matches = card.pattern.matches(&labels);
    if matches && card.exception {
        report.push(Diagnostic::new(
            "S003",
            &card.name,
            format!(
                "flagged as a Table 2 exception, but its plan satisfies the strict {} definition",
                card.pattern.name()
            ),
        ));
    } else if !matches && !card.exception {
        report.push(Diagnostic::new(
            "S003",
            &card.name,
            format!(
                "plan violates the strict {} definition but the card is not flagged as an exception",
                card.pattern.name()
            ),
        ));
    }
}

/// Lints the cross-card invariants of the calibrated corpus (S010–S014).
pub fn lint_corpus_invariants(cards: &[Card], report: &mut Report) {
    const PROJECT: &str = "(corpus)";
    if cards.len() != CORPUS_SIZE {
        report.push(Diagnostic::new(
            "S010",
            PROJECT,
            format!("corpus has {} cards, the study has {CORPUS_SIZE}", cards.len()),
        ));
    }

    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for c in cards {
        *seen.entry(c.name.as_str()).or_insert(0) += 1;
    }
    for (name, count) in seen {
        if count > 1 {
            report.push(Diagnostic::new(
                "S011",
                PROJECT,
                format!("project name `{name}` appears {count} times"),
            ));
        }
    }

    let mut populations: BTreeMap<Pattern, usize> = BTreeMap::new();
    let mut exceptions: BTreeMap<Pattern, usize> = BTreeMap::new();
    for c in cards {
        *populations.entry(c.pattern).or_insert(0) += 1;
        if c.exception {
            *exceptions.entry(c.pattern).or_insert(0) += 1;
        }
    }
    for (pattern, expected) in FIG4_POPULATIONS {
        let got = populations.get(&pattern).copied().unwrap_or(0);
        if got != expected {
            report.push(Diagnostic::new(
                "S012",
                PROJECT,
                format!(
                    "{} population is {got}, Fig. 4 reports {expected}",
                    pattern.name()
                ),
            ));
        }
    }
    for pattern in Pattern::ALL {
        let expected = TABLE2_EXCEPTIONS
            .iter()
            .find(|(p, _)| *p == pattern)
            .map_or(0, |(_, n)| *n);
        let got = exceptions.get(&pattern).copied().unwrap_or(0);
        if got != expected {
            report.push(Diagnostic::new(
                "S014",
                PROJECT,
                format!(
                    "{} has {got} exception cards, Table 2 reports {expected}",
                    pattern.name()
                ),
            ));
        }
    }

    let mut buckets = [0usize; 4];
    for c in cards {
        let b = match c.birth_month {
            0 => 0,
            1..=6 => 1,
            7..=12 => 2,
            _ => 3,
        };
        buckets[b] += 1;
    }
    if buckets != FIG7_BUCKETS {
        report.push(Diagnostic::new(
            "S013",
            PROJECT,
            format!("birth buckets are {buckets:?}, Fig. 7 reports {FIG7_BUCKETS:?}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_corpus::cards::all_cards;

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics().iter().map(|d| d.code).collect()
    }

    fn feasible_card() -> Card {
        Card {
            name: "probe".into(),
            pattern: Pattern::RadicalSign,
            exception: false,
            duration: 40,
            birth_month: 1,
            top_month: 3,
            agm: 0,
            birth_frac: 0.8,
            total_units: 50,
            tail_units: 0,
            tail_months: 0,
            maintenance_bias: 0.15,
        }
    }

    #[test]
    fn calibrated_corpus_is_clean() {
        let cards = all_cards();
        let mut report = Report::new();
        for c in &cards {
            lint_card(c, &mut report);
        }
        lint_corpus_invariants(&cards, &mut report);
        assert!(report.diagnostics().is_empty(), "{}", report.render_human());
    }

    #[test]
    fn out_of_domain_birth_frac_is_s002() {
        let mut card = feasible_card();
        card.birth_frac = 1.5;
        let mut report = Report::new();
        lint_card(&card, &mut report);
        assert_eq!(codes(&report), ["S002"]);
    }

    #[test]
    fn infeasible_plan_is_s001() {
        let mut card = feasible_card();
        card.duration = 12;
        let mut report = Report::new();
        lint_card(&card, &mut report);
        assert_eq!(codes(&report), ["S001"]);
    }

    #[test]
    fn exception_flag_contradiction_is_s003() {
        // A clean Radical Sign plan wrongly flagged as an exception.
        let mut card = feasible_card();
        card.exception = true;
        let mut report = Report::new();
        lint_card(&card, &mut report);
        assert_eq!(codes(&report), ["S003"]);
    }

    #[test]
    fn missing_exception_flag_is_s003() {
        // A Flatliner-labelled card whose plan clearly is not a Flatliner.
        let mut card = feasible_card();
        card.pattern = Pattern::Flatliner;
        let mut report = Report::new();
        lint_card(&card, &mut report);
        assert_eq!(codes(&report), ["S003"]);
    }

    #[test]
    fn truncated_corpus_trips_the_invariants() {
        let cards: Vec<Card> = all_cards().into_iter().skip(1).collect();
        let mut report = Report::new();
        lint_corpus_invariants(&cards, &mut report);
        let codes = codes(&report);
        assert!(codes.contains(&"S010"), "{codes:?}");
        // Dropping one card also perturbs a Fig. 4 population and a
        // Fig. 7 bucket.
        assert!(codes.contains(&"S012"), "{codes:?}");
        assert!(codes.contains(&"S013"), "{codes:?}");
    }

    #[test]
    fn duplicate_name_is_s011() {
        let mut cards = all_cards();
        let clone = cards[0].clone();
        cards.push(clone);
        let mut report = Report::new();
        lint_corpus_invariants(&cards, &mut report);
        assert!(codes(&report).contains(&"S011"));
    }
}
