#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-history
//!
//! Schema **version histories** and month-granule **heartbeats** — the data
//! structures behind §3.2 of the EDBT 2025 study.
//!
//! A project's history is a pair of monthly activity series over its
//! *Project Update Period* (PUP): the **schema heartbeat** (number of
//! affected attributes per month, as measured by `schemachron-model::diff`)
//! and the **source heartbeat** (lines of code changed per month). From the
//! cumulative, total-normalized form of these series the study derives all
//! of its time-related metrics.
//!
//! ## Quick example
//!
//! ```
//! use schemachron_history::{Date, ProjectHistoryBuilder};
//!
//! let mut b = ProjectHistoryBuilder::new("demo");
//! b.snapshot(Date::new(2020, 1, 10), "CREATE TABLE t (a INT, b INT);");
//! b.snapshot(Date::new(2020, 4, 2), "CREATE TABLE t (a INT, b INT, c INT);");
//! b.source_commit(Date::new(2020, 1, 5), 100.0);
//! b.source_commit(Date::new(2020, 12, 20), 50.0);
//! let p = b.build();
//!
//! assert_eq!(p.month_count(), 12);           // Jan..Dec 2020
//! assert_eq!(p.schema_total(), 3.0);         // 2 born + 1 injected
//! assert_eq!(p.schema_birth_index(), Some(0));
//! ```

mod date;
mod heartbeat;
mod project;
mod version;

pub use date::{Date, DateParseError, MonthId, MonthParseError};
pub use heartbeat::Heartbeat;
pub use project::{ProjectHistory, ProjectHistoryBuilder};
pub use version::{IngestMode, SchemaHistory, SchemaVersion};
