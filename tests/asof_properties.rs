//! Property: for every project in the seed-42 corpus and every month of its
//! lifespan, the checkpointed as-of lookup equals both the stored version
//! snapshots (an independent oracle) and naive full replay from birth, at
//! every checkpoint spacing.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use schemachron_asof::AsOfIndex;
use schemachron_bench::DEFAULT_SEED;
use schemachron_corpus::Corpus;
use schemachron_model::Schema;

#[test]
fn checkpoint_replay_equals_full_replay_for_every_month_of_every_project() {
    let corpus = Corpus::generate(DEFAULT_SEED);
    assert_eq!(corpus.projects().len(), 151);
    for k in [1usize, 3, 12, usize::MAX] {
        for project in corpus.projects() {
            let Some(index) = AsOfIndex::build(&project.history, k) else {
                panic!("{}: every corpus project has schema versions", project.card.name);
            };
            let versions = project.history.schema_history().unwrap().versions();

            // Independent oracle: the stored snapshot of the last version
            // committed in or before each month (empty before the first).
            let empty = Schema::default();
            let mut next_version = 0;
            let mut expected = &empty;
            let mut m = index.start();
            while m <= index.last_month() {
                while next_version < versions.len()
                    && versions[next_version].date.month_id() <= m
                {
                    expected = &versions[next_version].schema;
                    next_version += 1;
                }
                let got = index.schema_as_of(m).unwrap_or_else(|| {
                    panic!("{} K={k}: month {m} is in the lifespan", index.project())
                });
                assert_eq!(got.as_ref(), expected, "{} K={k} month {m}", index.project());
                // Full replay is O(versions) per call; sampling it every few
                // months keeps the suite fast while still pinning the
                // checkpoint path against the naive baseline everywhere the
                // oracle walk runs.
                if m.months_since(index.start()) % 5 == 0 || m == index.last_month() {
                    assert_eq!(
                        index.schema_by_full_replay(m).as_ref(),
                        Some(got.as_ref()),
                        "{} K={k} month {m}: full replay disagrees",
                        index.project()
                    );
                }
                m = m.plus(1);
            }
            // Outside the lifespan: no answer on either path.
            assert!(index.schema_as_of(index.start().plus(-1)).is_none());
            assert!(index.schema_as_of(index.last_month().plus(1)).is_none());
        }
    }
}
