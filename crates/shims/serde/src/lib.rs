#![forbid(unsafe_code)]

//! In-tree stand-in for `serde`.
//!
//! The build environment is offline, so this workspace vendors a reduced
//! serde: a single self-describing data model ([`Content`]), a
//! [`Serialize`] trait producing it, a [`Deserialize`] marker, and derive
//! macros re-exported from the in-tree `serde_derive`. `serde_json` (also
//! vendored) renders [`Content`] as JSON.
//!
//! The reduction is deliberate: the repo only ever serializes experiment
//! results *out* (JSON artifacts under `target/experiments/`) and parses
//! JSON documents *in* as dynamic [`serde_json::Value`]s — nothing
//! round-trips through typed deserialization, so the visitor machinery of
//! real serde would be dead weight here.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing serialization data model — a superset of JSON's.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Ordered map with string keys (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// Types that can render themselves into the [`Content`] data model.
pub trait Serialize {
    /// The content form of `self`.
    fn to_content(&self) -> Content;
}

/// Marker trait: the type opted into deserialization.
///
/// The stand-in never deserializes typed values (see the crate docs), so
/// the trait carries no methods; the derive exists so `#[derive(Serialize,
/// Deserialize)]` lines compile unchanged.
pub trait Deserialize {}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    };
}

ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_content_forms() {
        assert_eq!(3u32.to_content(), Content::U64(3));
        assert_eq!((-3i32).to_content(), Content::I64(-3));
        assert_eq!(1.5f64.to_content(), Content::F64(1.5));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!("x".to_content(), Content::Str("x".into()));
        assert_eq!(None::<u8>.to_content(), Content::Null);
    }

    #[test]
    fn composite_content_forms() {
        assert_eq!(
            vec![1u8, 2].to_content(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
        assert_eq!(
            ("a".to_owned(), 7usize).to_content(),
            Content::Seq(vec![Content::Str("a".into()), Content::U64(7)])
        );
        let m: std::collections::BTreeMap<String, usize> =
            [("k".to_owned(), 1)].into_iter().collect();
        assert_eq!(
            m.to_content(),
            Content::Map(vec![("k".into(), Content::U64(1))])
        );
    }
}
