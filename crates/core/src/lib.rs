#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-core
//!
//! The primary contribution of the EDBT 2025 study *"Time-Related Patterns
//! Of Schema Evolution"*, as an executable library:
//!
//! * [`metrics`] — the §3.2 **time-related metrics** of a project's schema
//!   evolution: schema birth (point and volume), top-band attainment (90% of
//!   total activity), the intervals birth→top and top→end, vaults, and
//!   active growth months;
//! * [`quantize`] — the §3.3 **quantization** of those metrics into ordinal
//!   labels with the exact published limits (Table 1);
//! * [`patterns`] — the **8 patterns in 3 families** (§4) as executable
//!   definitions, with a strict classifier and a nearest-pattern scorer;
//! * [`validate`] — the §5 validation machinery: pattern **cohesion** (mean
//!   distance to centroid of 20-point quantized lines), **disjointedness**
//!   (label-space active-domain coverage) and **completeness**
//!   (attainability of label combinations);
//! * [`predict`] — the §6.2 birth-point predictor: P(pattern | month of
//!   schema birth), including the headline rigidity probabilities;
//! * [`tables`] — per-table evolution profiles and rigidity census (the
//!   "gravitation to rigidity" companion-study lineage);
//! * [`lag`] — joint schema/source co-evolution measures (who leads whom).
//!
//! ## Quick example
//!
//! ```
//! use schemachron_history::{ProjectHistory, MonthId};
//! use schemachron_core::metrics::TimeMetrics;
//! use schemachron_core::quantize::Labels;
//! use schemachron_core::patterns::{classify, Pattern};
//!
//! // A schema fully born in the project's first month and never touched:
//! let mut activity = vec![0.0; 24];
//! activity[0] = 20.0;
//! let p = ProjectHistory::from_heartbeats(
//!     "frozen", MonthId::from_ym(2020, 1),
//!     activity, vec![1.0; 24], [20, 0, 0, 0, 0, 0]);
//!
//! let m = TimeMetrics::from_project(&p).expect("schema exists");
//! let labels = Labels::from_metrics(&m);
//! assert_eq!(classify(&labels), Some(Pattern::Flatliner));
//! ```

pub mod lag;
pub mod metrics;
pub mod patterns;
pub mod predict;
pub mod quantize;
pub mod tables;
pub mod validate;

pub use metrics::TimeMetrics;
pub use patterns::{classify, classify_nearest, Family, Pattern};
pub use quantize::Labels;
