//! Fixed-bucket histograms with pinned special values.
//!
//! The study quantizes its (mostly `[0, 1]`-normalized) metrics into
//! histograms of 10 buckets "with special care for special values like 0
//! and 1" (§3.4.1): exact zeros and exact ones carry semantics of their own
//! (e.g. "born at V⁰", "all change at birth") and must not be smeared into
//! the neighbouring interval.

/// A histogram over `[lo, hi]` with dedicated bins for values exactly equal
/// to `lo` and `hi`.
#[derive(Clone, Debug, PartialEq)]
pub struct PinnedHistogram {
    lo: f64,
    hi: f64,
    /// Count of values exactly `lo`.
    pub at_lo: usize,
    /// Count of values exactly `hi`.
    pub at_hi: usize,
    /// Interior bucket counts over `(lo, hi)`, equal widths.
    pub buckets: Vec<usize>,
    /// Values outside `[lo, hi]` (counted, not binned).
    pub out_of_range: usize,
}

impl PinnedHistogram {
    /// Builds a histogram of `n_buckets` interior buckets over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `n_buckets == 0` or `hi <= lo`.
    pub fn build(values: &[f64], lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        assert!(hi > lo, "hi must exceed lo");
        let mut h = PinnedHistogram {
            lo,
            hi,
            at_lo: 0,
            at_hi: 0,
            buckets: vec![0; n_buckets],
            out_of_range: 0,
        };
        let width = (hi - lo) / n_buckets as f64;
        for &v in values {
            if v == lo {
                h.at_lo += 1;
            } else if v == hi {
                h.at_hi += 1;
            } else if v < lo || v > hi || v.is_nan() {
                h.out_of_range += 1;
            } else {
                let idx = (((v - lo) / width).floor() as usize).min(n_buckets - 1);
                h.buckets[idx] += 1;
            }
        }
        h
    }

    /// Builds the study's standard 10-bucket histogram over `[0, 1]`.
    pub fn unit(values: &[f64]) -> Self {
        PinnedHistogram::build(values, 0.0, 1.0, 10)
    }

    /// Total count of in-range values (pins + buckets).
    pub fn total(&self) -> usize {
        self.at_lo + self.at_hi + self.buckets.iter().sum::<usize>()
    }

    /// A compact one-line rendering: `0:{n} [b1 b2 ...] 1:{n}`.
    pub fn render(&self) -> String {
        let mid: Vec<String> = self.buckets.iter().map(|c| c.to_string()).collect();
        format!(
            "{}:{} [{}] {}:{}",
            self.lo,
            self.at_lo,
            mid.join(" "),
            self.hi,
            self.at_hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_capture_exact_bounds() {
        let vals = [0.0, 0.0, 1.0, 0.5, 0.05, 0.951];
        let h = PinnedHistogram::unit(&vals);
        assert_eq!(h.at_lo, 2);
        assert_eq!(h.at_hi, 1);
        assert_eq!(h.buckets[0], 1); // 0.05
        assert_eq!(h.buckets[5], 1); // 0.5
        assert_eq!(h.buckets[9], 1); // 0.951
        assert_eq!(h.total(), 6);
        assert_eq!(h.out_of_range, 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let h = PinnedHistogram::unit(&[-0.1, 1.5, 0.5]);
        assert_eq!(h.out_of_range, 2);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn nan_counts_as_out_of_range() {
        let h = PinnedHistogram::unit(&[f64::NAN, 0.5]);
        assert_eq!(h.out_of_range, 1);
        assert_eq!(h.total(), 1);
        assert_eq!(h.buckets[0], 0, "NaN must not land in bucket 0");
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        // 0.1 falls into bucket 1 (buckets are [lo+k*w, lo+(k+1)*w)).
        let h = PinnedHistogram::unit(&[0.1, 0.2]);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
    }

    #[test]
    fn custom_range() {
        let h = PinnedHistogram::build(&[10.0, 15.0, 20.0], 10.0, 20.0, 2);
        assert_eq!(h.at_lo, 1);
        assert_eq!(h.at_hi, 1);
        assert_eq!(h.buckets, vec![0, 1]);
    }

    #[test]
    fn render_is_stable() {
        let h = PinnedHistogram::build(&[0.0, 0.6, 1.0], 0.0, 1.0, 2);
        assert_eq!(h.render(), "0:1 [0 1] 1:1");
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_buckets_panics() {
        let _ = PinnedHistogram::build(&[], 0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn inverted_range_panics() {
        let _ = PinnedHistogram::build(&[], 1.0, 0.0, 2);
    }
}
