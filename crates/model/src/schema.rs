//! The logical schema model: schemas, tables, attributes, data types, keys.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Name;

/// A (simplified, logical-level) SQL data type: a base name plus optional
/// numeric parameters, e.g. `varchar(255)` or `decimal(10, 2)`.
///
/// Type names are normalized to ASCII lowercase on construction so that
/// `VARCHAR(40)` and `varchar(40)` compare equal; the study counts a
/// data-type change only when the *logical* type actually differs.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataType {
    base: String,
    params: Vec<i64>,
    /// Dialect modifiers that change the logical type (e.g. `unsigned`).
    modifiers: Vec<String>,
}

impl DataType {
    /// A parameterless type such as `int` or `text`.
    pub fn named(base: impl Into<String>) -> Self {
        DataType::with_params(base, Vec::new())
    }

    /// A parameterized type such as `varchar(255)`.
    pub fn with_params(base: impl Into<String>, params: Vec<i64>) -> Self {
        DataType {
            base: base.into().to_ascii_lowercase(),
            params,
            modifiers: Vec::new(),
        }
    }

    /// Adds a logical modifier (e.g. `unsigned`), normalized to lowercase.
    pub fn with_modifier(mut self, modifier: impl Into<String>) -> Self {
        self.modifiers.push(modifier.into().to_ascii_lowercase());
        self
    }

    /// The normalized base type name (`varchar`, `int`, ...).
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The numeric parameters (length, precision/scale, ...).
    pub fn params(&self) -> &[i64] {
        &self.params
    }

    /// Logical modifiers such as `unsigned`.
    pub fn modifiers(&self) -> &[String] {
        &self.modifiers
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.base)?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        for m in &self.modifiers {
            write!(f, " {m}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DataType({self})")
    }
}

/// A single attribute (column) of a table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// The attribute name.
    pub name: Name,
    /// The declared data type.
    pub data_type: DataType,
    /// Whether a `NOT NULL` constraint is present.
    pub not_null: bool,
    /// The raw text of the `DEFAULT` expression, if any.
    pub default: Option<String>,
    /// Whether the column auto-increments (`AUTO_INCREMENT`, `SERIAL`, ...).
    pub auto_increment: bool,
}

impl Attribute {
    /// Creates a nullable attribute with no default.
    pub fn new(name: impl Into<Name>, data_type: DataType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
            not_null: false,
            default: None,
            auto_increment: false,
        }
    }

    /// Builder-style: marks the attribute `NOT NULL`.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Builder-style: sets the default expression.
    pub fn with_default(mut self, expr: impl Into<String>) -> Self {
        self.default = Some(expr.into());
        self
    }
}

/// A foreign-key constraint of a table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Optional constraint name.
    pub name: Option<Name>,
    /// Referencing columns (in this table).
    pub columns: Vec<Name>,
    /// The referenced table.
    pub ref_table: Name,
    /// The referenced columns; empty means "the primary key of `ref_table`".
    pub ref_columns: Vec<Name>,
}

/// A table: an ordered list of attributes plus key constraints.
///
/// Attribute order is preserved (it matters for rendering and for
/// dump-style diffs), but lookups are by case-insensitive name.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// The table name.
    pub name: Name,
    attributes: Vec<Attribute>,
    /// The primary-key columns, in key order. Empty = no primary key.
    pub primary_key: Vec<Name>,
    /// Foreign keys declared on this table.
    pub foreign_keys: Vec<ForeignKey>,
    /// Columns under single- or multi-column `UNIQUE` constraints.
    pub uniques: Vec<Vec<Name>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<Name>) -> Self {
        Table {
            name: name.into(),
            attributes: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
            uniques: Vec::new(),
        }
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Looks up an attribute by (case-insensitive) name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        let key = Name::from(name);
        self.attributes.iter().find(|a| a.name == key)
    }

    /// Like [`Table::attribute`], but keyed by an existing [`Name`] — no
    /// normalization allocation, for hot paths like diffing.
    pub fn attribute_of(&self, name: &Name) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == *name)
    }

    /// Mutable lookup by (case-insensitive) name.
    pub fn attribute_mut(&mut self, name: &str) -> Option<&mut Attribute> {
        let key = Name::from(name);
        self.attributes.iter_mut().find(|a| a.name == key)
    }

    /// Appends an attribute. Replaces an existing attribute of the same name
    /// in place (keeping its position), mirroring how repeated `ADD COLUMN`
    /// in sloppy migration scripts behaves in tolerant miners.
    pub fn push_attribute(&mut self, attr: Attribute) {
        if let Some(existing) = self.attributes.iter_mut().find(|a| a.name == attr.name) {
            *existing = attr;
        } else {
            self.attributes.push(attr);
        }
    }

    /// Inserts an attribute at a specific position (for `ADD COLUMN ... AFTER c`).
    /// Positions past the end append.
    pub fn insert_attribute(&mut self, index: usize, attr: Attribute) {
        if self.attributes.iter().any(|a| a.name == attr.name) {
            self.push_attribute(attr);
            return;
        }
        let index = index.min(self.attributes.len());
        self.attributes.insert(index, attr);
    }

    /// Removes an attribute by name, returning it if present. Also scrubs the
    /// attribute from the primary key, uniques and foreign keys.
    pub fn remove_attribute(&mut self, name: &str) -> Option<Attribute> {
        let key = Name::from(name);
        let pos = self.attributes.iter().position(|a| a.name == key)?;
        let attr = self.attributes.remove(pos);
        self.primary_key.retain(|c| *c != key);
        for u in &mut self.uniques {
            u.retain(|c| *c != key);
        }
        self.uniques.retain(|u| !u.is_empty());
        self.foreign_keys.retain(|fk| !fk.columns.contains(&key));
        Some(attr)
    }

    /// Renames an attribute (for `CHANGE COLUMN` / `RENAME COLUMN`), updating
    /// key participation. Returns `false` if the old name does not exist.
    pub fn rename_attribute(&mut self, old: &str, new: impl Into<Name>) -> bool {
        let old_key = Name::from(old);
        let new_name: Name = new.into();
        let Some(attr) = self.attributes.iter_mut().find(|a| a.name == old_key) else {
            return false;
        };
        attr.name = new_name.clone();
        for c in self.primary_key.iter_mut() {
            if *c == old_key {
                *c = new_name.clone();
            }
        }
        for u in &mut self.uniques {
            for c in u.iter_mut() {
                if *c == old_key {
                    *c = new_name.clone();
                }
            }
        }
        for fk in &mut self.foreign_keys {
            for c in fk.columns.iter_mut() {
                if *c == old_key {
                    *c = new_name.clone();
                }
            }
        }
        true
    }

    /// Whether `column` participates in the primary key.
    pub fn in_primary_key(&self, column: &Name) -> bool {
        self.primary_key.contains(column)
    }

    /// The set of foreign keys a column participates in, identified by the
    /// referenced table (a stable identity across versions).
    pub fn fk_memberships(&self, column: &Name) -> Vec<&Name> {
        let mut v: Vec<&Name> = self
            .foreign_keys
            .iter()
            .filter(|fk| fk.columns.contains(column))
            .map(|fk| &fk.ref_table)
            .collect();
        v.sort();
        v
    }
}

/// A view; the study tracks views only by name and definition text.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// The view name.
    pub name: Name,
    /// The raw `SELECT` body.
    pub definition: String,
}

/// A full logical schema: a set of tables (and views) keyed by name.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    tables: BTreeMap<Name, Table>,
    views: BTreeMap<Name, View>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of attributes over all tables (the study's "schema size").
    pub fn attribute_count(&self) -> usize {
        self.tables.values().map(Table::attribute_count).sum()
    }

    /// Whether the schema holds no tables and no views.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.views.is_empty()
    }

    /// Iterates over tables in name order (deterministic).
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&Name::from(name))
    }

    /// Like [`Schema::table`], but keyed by an existing [`Name`] — no
    /// normalization allocation, for hot paths like diffing.
    pub fn table_of(&self, name: &Name) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&Name::from(name))
    }

    /// Inserts (or replaces) a table.
    pub fn insert_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Removes a table by name, returning it if present.
    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(&Name::from(name))
    }

    /// Renames a table, preserving its contents. Returns `false` if absent.
    pub fn rename_table(&mut self, old: &str, new: impl Into<Name>) -> bool {
        let Some(mut t) = self.tables.remove(&Name::from(old)) else {
            return false;
        };
        let new_name: Name = new.into();
        t.name = new_name.clone();
        self.tables.insert(new_name, t);
        true
    }

    /// Iterates over views in name order.
    pub fn views(&self) -> impl Iterator<Item = &View> {
        self.views.values()
    }

    /// Looks up a view by case-insensitive name.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(&Name::from(name))
    }

    /// Inserts (or replaces) a view.
    pub fn insert_view(&mut self, view: View) {
        self.views.insert(view.name.clone(), view);
    }

    /// Removes a view by name.
    pub fn remove_view(&mut self, name: &str) -> Option<View> {
        self.views.remove(&Name::from(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users_table() -> Table {
        let mut t = Table::new("users");
        t.push_attribute(Attribute::new("id", DataType::named("int")).not_null());
        t.push_attribute(Attribute::new(
            "name",
            DataType::with_params("varchar", vec![64]),
        ));
        t.primary_key = vec![Name::from("id")];
        t
    }

    #[test]
    fn data_type_display_and_equality() {
        let d = DataType::with_params("VarChar", vec![255]);
        assert_eq!(d.to_string(), "varchar(255)");
        assert_eq!(d, DataType::with_params("varchar", vec![255]));
        assert_ne!(d, DataType::with_params("varchar", vec![100]));
        assert_ne!(
            DataType::named("int"),
            DataType::named("int").with_modifier("unsigned")
        );
    }

    #[test]
    fn table_attribute_lookup_is_case_insensitive() {
        let t = users_table();
        assert!(t.attribute("NAME").is_some());
        assert!(t.attribute("missing").is_none());
        assert_eq!(t.attribute_count(), 2);
    }

    #[test]
    fn push_attribute_replaces_same_name_in_place() {
        let mut t = users_table();
        t.push_attribute(Attribute::new("NAME", DataType::named("text")));
        assert_eq!(t.attribute_count(), 2);
        assert_eq!(
            t.attribute("name").unwrap().data_type,
            DataType::named("text")
        );
        // Position retained: still the second attribute.
        assert_eq!(t.attributes()[1].name, Name::from("name"));
    }

    #[test]
    fn insert_attribute_respects_position_and_clamps() {
        let mut t = users_table();
        t.insert_attribute(1, Attribute::new("email", DataType::named("text")));
        assert_eq!(t.attributes()[1].name, Name::from("email"));
        t.insert_attribute(99, Attribute::new("bio", DataType::named("text")));
        assert_eq!(t.attributes().last().unwrap().name, Name::from("bio"));
    }

    #[test]
    fn remove_attribute_scrubs_keys() {
        let mut t = users_table();
        t.uniques.push(vec![Name::from("name")]);
        t.foreign_keys.push(ForeignKey {
            name: None,
            columns: vec![Name::from("id")],
            ref_table: Name::from("accounts"),
            ref_columns: vec![],
        });
        let removed = t.remove_attribute("id").unwrap();
        assert_eq!(removed.name, Name::from("id"));
        assert!(t.primary_key.is_empty());
        assert!(t.foreign_keys.is_empty());
        assert_eq!(t.uniques.len(), 1);
        assert!(t.remove_attribute("id").is_none());
    }

    #[test]
    fn rename_attribute_updates_key_participation() {
        let mut t = users_table();
        assert!(t.rename_attribute("id", "user_id"));
        assert!(t.attribute("user_id").is_some());
        assert_eq!(t.primary_key, vec![Name::from("user_id")]);
        assert!(!t.rename_attribute("ghost", "x"));
    }

    #[test]
    fn fk_membership_identity_is_referenced_table() {
        let mut t = users_table();
        t.foreign_keys.push(ForeignKey {
            name: Some(Name::from("fk1")),
            columns: vec![Name::from("name")],
            ref_table: Name::from("directory"),
            ref_columns: vec![Name::from("full_name")],
        });
        assert_eq!(
            t.fk_memberships(&Name::from("name")),
            vec![&Name::from("directory")]
        );
        assert!(t.fk_memberships(&Name::from("id")).is_empty());
    }

    #[test]
    fn schema_insert_lookup_remove_rename() {
        let mut s = Schema::new();
        s.insert_table(users_table());
        assert_eq!(s.table_count(), 1);
        assert_eq!(s.attribute_count(), 2);
        assert!(s.table("USERS").is_some());
        assert!(s.rename_table("users", "accounts"));
        assert!(s.table("users").is_none());
        assert!(s.table("accounts").is_some());
        assert!(s.remove_table("accounts").is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn schema_views_roundtrip() {
        let mut s = Schema::new();
        s.insert_view(View {
            name: Name::from("v_active"),
            definition: "SELECT * FROM users".into(),
        });
        assert!(s.view("V_ACTIVE").is_some());
        assert!(!s.is_empty());
        assert!(s.remove_view("v_active").is_some());
        assert!(s.is_empty());
    }
}

/// Aggregate statistics of one schema — the summary shape miners print.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaStats {
    /// Number of tables.
    pub tables: usize,
    /// Total attributes over all tables.
    pub attributes: usize,
    /// Number of views.
    pub views: usize,
    /// Tables with a primary key.
    pub tables_with_pk: usize,
    /// Foreign-key constraints over all tables.
    pub foreign_keys: usize,
    /// Attribute count per base data type, in descending frequency.
    pub type_distribution: Vec<(String, usize)>,
}

impl Schema {
    /// Computes the aggregate statistics of this schema.
    pub fn stats(&self) -> SchemaStats {
        let mut by_type: BTreeMap<String, usize> = BTreeMap::new();
        let mut tables_with_pk = 0;
        let mut foreign_keys = 0;
        for t in self.tables() {
            if !t.primary_key.is_empty() {
                tables_with_pk += 1;
            }
            foreign_keys += t.foreign_keys.len();
            for a in t.attributes() {
                *by_type.entry(a.data_type.base().to_owned()).or_insert(0) += 1;
            }
        }
        let mut type_distribution: Vec<(String, usize)> = by_type.into_iter().collect();
        type_distribution.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        SchemaStats {
            tables: self.table_count(),
            attributes: self.attribute_count(),
            views: self.views().count(),
            tables_with_pk,
            foreign_keys,
            type_distribution,
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn stats_aggregate_structure() {
        let mut s = Schema::new();
        let mut a = Table::new("a");
        a.push_attribute(Attribute::new("x", DataType::named("int")));
        a.push_attribute(Attribute::new("y", DataType::named("int")));
        a.primary_key = vec![Name::from("x")];
        a.foreign_keys.push(ForeignKey {
            name: None,
            columns: vec![Name::from("y")],
            ref_table: Name::from("b"),
            ref_columns: vec![],
        });
        s.insert_table(a);
        let mut b = Table::new("b");
        b.push_attribute(Attribute::new("z", DataType::named("text")));
        s.insert_table(b);
        s.insert_view(View {
            name: Name::from("v"),
            definition: "SELECT 1".into(),
        });
        let stats = s.stats();
        assert_eq!(stats.tables, 2);
        assert_eq!(stats.attributes, 3);
        assert_eq!(stats.views, 1);
        assert_eq!(stats.tables_with_pk, 1);
        assert_eq!(stats.foreign_keys, 1);
        assert_eq!(
            stats.type_distribution,
            vec![("int".to_owned(), 2), ("text".to_owned(), 1)]
        );
    }

    #[test]
    fn empty_schema_stats_are_zero() {
        assert_eq!(Schema::new().stats(), SchemaStats::default());
    }
}
