//! The parameterized workload generator: random per-pattern project cards.
//!
//! While [`crate::cards`] encodes the 151 calibrated projects that reproduce
//! the paper's aggregates, this module **synthesizes fresh cards** for any
//! requested pattern mix — the workload generator behind scale benchmarks
//! and what-if studies. Every sampled card is verified end to end: it must
//! pass [`Card::validate`] *and* its emergent schedule must classify
//! strictly as the requested pattern (generate-and-verify).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_core::{classify, Pattern};
use schemachron_history::{MonthId, ProjectHistory};

use crate::spec::Card;

/// Maximum resampling attempts before giving up on one card.
const MAX_ATTEMPTS: usize = 200;

/// Samples one feasible card of the requested pattern.
///
/// # Panics
/// Panics if no feasible card is found within a generous attempt budget —
/// which would indicate a bug in the samplers, not bad luck (each sampler's
/// acceptance rate is far above 1%).
pub fn random_card(pattern: Pattern, name: impl Into<String>, rng: &mut StdRng) -> Card {
    let name = name.into();
    for _ in 0..MAX_ATTEMPTS {
        let Some(card) = sample(pattern, &name, rng) else {
            continue;
        };
        if card.validate().is_err() {
            continue;
        }
        if emergent_pattern(&card) == Some(pattern) {
            return card;
        }
    }
    panic!("no feasible {pattern:?} card in {MAX_ATTEMPTS} attempts");
}

/// Classifies the card's schedule as the measurement pipeline would.
fn emergent_pattern(card: &Card) -> Option<Pattern> {
    let mut activity = vec![0.0; card.duration as usize];
    for (m, u) in card.schedule().events {
        activity[m as usize] += f64::from(u);
    }
    let n = activity.len();
    let p = ProjectHistory::from_heartbeats(&card.name, MonthId(0), activity, vec![1.0; n], [0; 6]);
    let metrics = TimeMetrics::from_project(&p)?;
    classify(&Labels::from_metrics(&metrics))
}

/// Integer months whose `m / (d-1)` fraction falls in `(lo, hi]`
/// (`lo == hi == 0.0` means exactly month 0).
fn month_range(d: u32, lo: f64, hi: f64) -> Option<(u32, u32)> {
    let span = f64::from(d - 1);
    let first = if lo <= 0.0 {
        0
    } else {
        (lo * span).floor() as u32 + 1
    };
    let last = (hi * span).floor() as u32;
    (first <= last && last < d).then_some((first, last))
}

fn pick(rng: &mut StdRng, range: (u32, u32)) -> u32 {
    rng.random_range(range.0..=range.1)
}

fn sample(pattern: Pattern, name: &str, rng: &mut StdRng) -> Option<Card> {
    let d = rng.random_range(16..=96u32);
    let card = |b: u32, t: u32, agm: u32, frac: f64, total: u32, tail: u32, tail_m: u32| Card {
        name: name.to_owned(),
        pattern,
        exception: false,
        duration: d,
        birth_month: b,
        top_month: t,
        agm,
        birth_frac: frac,
        total_units: total,
        tail_units: tail,
        tail_months: tail_m,
        maintenance_bias: rng_bias(pattern),
    };

    match pattern {
        Pattern::Flatliner => {
            let total = rng.random_range(4..=40u32);
            let full = rng.random_bool(0.7);
            let frac = if full {
                1.0
            } else {
                rng.random_range(0.93..0.99)
            };
            let tail = if full { 0 } else { (total / 12).max(1) };
            Some(card(0, 0, 0, frac, total, tail, 1))
        }
        Pattern::RadicalSign => {
            let early = month_range(d, 0.0, 0.25)?;
            if rng.random_bool(0.35) {
                // Zero interval: full volume at an early (non-V0) birth.
                let b = pick(rng, (early.0.max(1), early.1));
                let total = rng.random_range(8..=60);
                Some(card(b, b, 0, rng.random_range(0.93..1.0), total, 0, 0))
            } else {
                let b = if rng.random_bool(0.4) {
                    0
                } else {
                    pick(rng, early)
                };
                let t = pick(rng, (b + 1, early.1.max(b + 1)));
                if t >= d {
                    return None;
                }
                let agm = rng.random_range(0..=2u32.min(t.saturating_sub(b + 1)));
                let total = rng.random_range(15..=140);
                Some(card(b, t, agm, rng.random_range(0.35..0.85), total, 0, 0))
            }
        }
        Pattern::Sigmoid => {
            let middle = month_range(d, 0.25, 0.75)?;
            let b = pick(rng, middle);
            let soon = (f64::from(d - 1) * 0.10).floor() as u32;
            if rng.random_bool(0.6) || soon == 0 || b + 1 > (b + soon).min(middle.1) {
                let total = rng.random_range(10..=40);
                Some(card(b, b, 0, rng.random_range(0.93..1.0), total, 0, 0))
            } else {
                let t = pick(rng, (b + 1, (b + soon).min(middle.1)));
                let total = rng.random_range(15..=50);
                let agm = u32::from(rng.random_bool(0.3) && t > b + 1);
                Some(card(b, t, agm, rng.random_range(0.4..0.7), total, 0, 0))
            }
        }
        Pattern::LateRiser => {
            let late = month_range(d, 0.75, 1.0)?;
            let b = pick(rng, late);
            if rng.random_bool(0.7) || b + 1 >= d {
                let total = rng.random_range(8..=30);
                Some(card(b, b, 0, rng.random_range(0.93..1.0), total, 0, 0))
            } else {
                let soon = (f64::from(d - 1) * 0.10).floor() as u32;
                let t = (b + 1 + rng.random_range(0..=soon.saturating_sub(1))).min(d - 1);
                let total = rng.random_range(10..=30);
                Some(card(b, t, 0, rng.random_range(0.76..0.88), total, 0, 0))
            }
        }
        Pattern::QuantumSteps => {
            let (b, t) = if rng.random_bool(0.7) {
                // Variant 1: born V0/early, top middle.
                let early = month_range(d, 0.0, 0.25)?;
                let middle = month_range(d, 0.25, 0.75)?;
                (
                    if rng.random_bool(0.25) {
                        0
                    } else {
                        pick(rng, early)
                    },
                    pick(rng, middle),
                )
            } else {
                // Variant 2: born middle, top late.
                let middle = month_range(d, 0.25, 0.75)?;
                let late = month_range(d, 0.75, 1.0)?;
                (pick(rng, middle), pick(rng, late))
            };
            if t <= b + 1 {
                return None;
            }
            let agm = rng.random_range(0..=3u32).min(t - b - 1);
            let total = rng.random_range(25..=110);
            Some(card(b, t, agm, rng.random_range(0.3..0.7), total, 0, 0))
        }
        Pattern::RegularlyCurated => {
            let (b, t) = if rng.random_bool(0.75) {
                let early = month_range(d, 0.0, 0.25)?;
                let rest = month_range(d, 0.25, 1.0)?;
                (
                    if rng.random_bool(0.25) {
                        0
                    } else {
                        pick(rng, early)
                    },
                    pick(rng, rest),
                )
            } else {
                let middle = month_range(d, 0.25, 0.75)?;
                let late = month_range(d, 0.75, 1.0)?;
                (pick(rng, middle), pick(rng, late))
            };
            if t < b + 6 {
                return None;
            }
            let agm = rng.random_range(4..=12u32).min(t - b - 1);
            let total = rng.random_range(160..=480);
            Some(card(b, t, agm, rng.random_range(0.06..0.3), total, 0, 0))
        }
        Pattern::Siesta => {
            // Very long interval: birth early, top late, gap > 75% of life.
            let vlong = (f64::from(d - 1) * 0.75).floor() as u32 + 1;
            let t_lo = vlong; // earliest top for a V0 birth
            if t_lo >= d {
                return None;
            }
            let t = pick(rng, (t_lo, d - 1));
            let b_hi = t
                .checked_sub(vlong)?
                .min((f64::from(d - 1) * 0.25).floor() as u32);
            let b = pick(rng, (0, b_hi));
            let agm = rng.random_range(0..=3u32).min(t.saturating_sub(b + 1));
            let total = rng.random_range(15..=90);
            Some(card(b, t, agm, rng.random_range(0.3..0.7), total, 0, 0))
        }
        Pattern::SmokingFunnel => {
            let middle = month_range(d, 0.25, 0.75)?;
            let b = pick(rng, middle);
            // Fair interval: (10%, 35%] of life, and enough interior for >3
            // active months.
            let span = f64::from(d - 1);
            let gap_lo = ((span * 0.10).floor() as u32 + 1).max(5);
            let gap_hi = (span * 0.35).floor() as u32;
            if gap_lo > gap_hi {
                return None;
            }
            let t = b + rng.random_range(gap_lo..=gap_hi);
            if t > middle.1 {
                return None;
            }
            let agm = rng.random_range(4..=8u32).min(t - b - 1);
            if agm < 4 {
                return None;
            }
            let total = rng.random_range(220..=620);
            let tail = total / 25;
            Some(card(b, t, agm, rng.random_range(0.3..0.5), total, tail, 2))
        }
    }
}

fn rng_bias(pattern: Pattern) -> f64 {
    match pattern {
        Pattern::Flatliner => 0.05,
        Pattern::RadicalSign => 0.12,
        Pattern::Sigmoid => 0.08,
        Pattern::LateRiser => 0.06,
        Pattern::QuantumSteps => 0.2,
        Pattern::RegularlyCurated => 0.25,
        Pattern::Siesta => 0.18,
        Pattern::SmokingFunnel => 0.3,
    }
}

/// Synthesizes a full card set for an arbitrary pattern mix.
///
/// `counts[i]` is the number of projects of `Pattern::ALL[i]` to generate.
pub fn random_cards(seed: u64, counts: [usize; 8]) -> Vec<Card> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(counts.iter().sum());
    for (pattern, &n) in Pattern::ALL.iter().zip(&counts) {
        for k in 0..n {
            out.push(random_card(
                *pattern,
                format!(
                    "rnd-{}-{k:04}",
                    pattern.name().to_lowercase().replace(' ', "-")
                ),
                &mut rng,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pattern_samples_and_verifies() {
        let mut rng = StdRng::seed_from_u64(7);
        for pattern in Pattern::ALL {
            for k in 0..25 {
                let c = random_card(pattern, format!("t-{k}"), &mut rng);
                assert_eq!(c.pattern, pattern);
                assert!(c.validate().is_ok(), "{pattern:?}: {c:?}");
                assert_eq!(emergent_pattern(&c), Some(pattern), "{c:?}");
            }
        }
    }

    #[test]
    fn random_cards_honors_the_mix() {
        let cards = random_cards(3, [2, 0, 1, 0, 3, 0, 0, 1]);
        assert_eq!(cards.len(), 7);
        assert_eq!(
            cards
                .iter()
                .filter(|c| c.pattern == Pattern::Flatliner)
                .count(),
            2
        );
        assert_eq!(
            cards
                .iter()
                .filter(|c| c.pattern == Pattern::QuantumSteps)
                .count(),
            3
        );
        // Names unique.
        let mut names: Vec<&str> = cards.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_cards(11, [1, 1, 1, 1, 1, 1, 1, 1]);
        let b = random_cards(11, [1, 1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn month_range_edges() {
        // d = 21 → span 20; early (0, 0.25] = months 1..=5.
        assert_eq!(month_range(21, 0.0, 0.25), Some((0, 5)));
        // middle (0.25, 0.75] = months 6..=15.
        assert_eq!(month_range(21, 0.25, 0.75), Some((6, 15)));
        // late (0.75, 1.0] = months 16..=20.
        assert_eq!(month_range(21, 0.75, 1.0), Some((16, 20)));
        // An impossible band on a tiny duration.
        assert_eq!(month_range(14, 0.9, 0.92), None);
    }
}
