//! The §3.2 time-related metrics of schema evolution.
//!
//! All percentages are over the **Project Update Period** (PUP): the months
//! from the project's originating version to its last commit. Month index 0
//! is V⁰ₚ; a month index `i` maps to time fraction `i / (PUP − 1)` (so the
//! last month is 100%). The **top band** is 90% of total schema activity.

use schemachron_history::ProjectHistory;
use serde::{Deserialize, Serialize};

/// The fraction of total activity that marks top-band attainment.
pub const TOP_BAND: f64 = 0.9;

/// The maximum birth→top time fraction that still counts as a *vault*.
pub const VAULT_THRESHOLD: f64 = 0.10;

/// All §3.2 time-related measures for one project.
///
/// Produced by [`TimeMetrics::from_project`]; `None` when the project never
/// shows any schema activity (such zero-evolution projects are excluded
/// from the study's corpus).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeMetrics {
    /// PUP length in months.
    pub pup_months: usize,
    /// Month index (0-based) of schema birth.
    pub birth_index: usize,
    /// Schema birth as a fraction of the PUP, in `[0, 1]`.
    pub birth_pct_pup: f64,
    /// Fraction of *total* schema activity carried by the birth month.
    pub birth_volume_pct_total: f64,
    /// Month index of top-band attainment (first month with cumulative
    /// activity ≥ [`TOP_BAND`] of the total).
    pub topband_index: usize,
    /// Top-band attainment as a fraction of the PUP.
    pub topband_pct_pup: f64,
    /// Interval from schema birth to top-band, as a fraction of the PUP.
    pub interval_birth_to_top_pct: f64,
    /// Interval from top-band to project end, as a fraction of the PUP.
    pub interval_top_to_end_pct: f64,
    /// Whether the birth→top transition is a single *vault*
    /// (< [`VAULT_THRESHOLD`] of the PUP).
    pub has_single_vault: bool,
    /// Active months in the **proper** interval between birth and top-band
    /// (both endpoints excluded).
    pub active_growth_months: usize,
    /// [`TimeMetrics::active_growth_months`] as a fraction of the proper
    /// growth interval's length (0 when that interval is empty).
    pub active_pct_growth: f64,
    /// [`TimeMetrics::active_growth_months`] as a fraction of the PUP.
    pub active_pct_pup: f64,
    /// Total schema activity (affected attributes) over the whole life.
    pub total_activity: f64,
    /// Schema activity in the birth month (the birth "volume" in units).
    pub birth_volume: f64,
    /// Total activity *after* the birth month — §6.1's "Total Schema
    /// Activity ... that took place in the life of the project after schema
    /// birth".
    pub activity_after_birth: f64,
    /// Total expansion changes (§6.3).
    pub expansion_total: usize,
    /// Total maintenance changes (§6.3).
    pub maintenance_total: usize,
}

impl TimeMetrics {
    /// Computes the metrics for a project, or `None` if the schema never
    /// appears (no activity at all). Uses the paper's operating point
    /// ([`TOP_BAND`] = 90%, [`VAULT_THRESHOLD`] = 10%).
    pub fn from_project(p: &ProjectHistory) -> Option<TimeMetrics> {
        TimeMetrics::from_project_with(p, TOP_BAND, VAULT_THRESHOLD)
    }

    /// Computes the metrics with explicit top-band and vault thresholds —
    /// the knob the ablation experiments sweep to show the patterns are not
    /// artifacts of the 90%/10% convention.
    pub fn from_project_with(
        p: &ProjectHistory,
        top_band: f64,
        vault_threshold: f64,
    ) -> Option<TimeMetrics> {
        let hb = p.schema_heartbeat();
        let values = hb.values();
        let birth_index = hb.first_active_index()?;
        let pup_months = p.month_count();
        let total: f64 = hb.total();

        // Top band: first month with cumulative >= top_band * total.
        let threshold = top_band * total;
        let mut acc = 0.0;
        let mut topband_index = birth_index;
        for (i, v) in values.iter().enumerate() {
            acc += v;
            // Tolerate floating-point dust on the comparison.
            if acc + 1e-9 >= threshold {
                topband_index = i;
                break;
            }
        }

        let pct = |idx: usize| -> f64 {
            if pup_months <= 1 {
                0.0
            } else {
                idx as f64 / (pup_months - 1) as f64
            }
        };
        let birth_pct_pup = pct(birth_index);
        let topband_pct_pup = pct(topband_index);
        let interval_birth_to_top_pct = topband_pct_pup - birth_pct_pup;
        let interval_top_to_end_pct = 1.0 - topband_pct_pup;

        // Active months strictly between birth and top-band.
        let active_growth_months = if topband_index > birth_index + 1 {
            hb.active_months_in(birth_index + 1, topband_index - 1)
        } else {
            0
        };
        let growth_interior = topband_index.saturating_sub(birth_index + 1);
        let active_pct_growth = if growth_interior == 0 {
            0.0
        } else {
            active_growth_months as f64 / growth_interior as f64
        };
        let active_pct_pup = if pup_months == 0 {
            0.0
        } else {
            active_growth_months as f64 / pup_months as f64
        };

        let birth_volume = values[birth_index];
        Some(TimeMetrics {
            pup_months,
            birth_index,
            birth_pct_pup,
            birth_volume_pct_total: if total > 0.0 {
                birth_volume / total
            } else {
                0.0
            },
            topband_index,
            topband_pct_pup,
            interval_birth_to_top_pct,
            interval_top_to_end_pct,
            has_single_vault: interval_birth_to_top_pct < vault_threshold,
            active_growth_months,
            active_pct_growth,
            active_pct_pup,
            total_activity: total,
            birth_volume,
            activity_after_birth: total - birth_volume,
            expansion_total: p.expansion_total(),
            maintenance_total: p.maintenance_total(),
        })
    }

    /// The absolute birth month (months since project start) — the
    /// predictor input of §6.2 / Fig. 7.
    pub fn birth_month_absolute(&self) -> usize {
        self.birth_index
    }

    /// Quantizes the project's cumulative schema line to `n` points of
    /// normalized time — the §5.2 vector representation (the paper uses
    /// n = 20).
    pub fn quantized_line(p: &ProjectHistory, n: usize) -> Vec<f64> {
        p.schema_heartbeat().sample_normalized(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::MonthId;

    fn project(schema: Vec<f64>) -> ProjectHistory {
        let n = schema.len();
        ProjectHistory::from_heartbeats("t", MonthId(0), schema, vec![1.0; n], [0; 6])
    }

    #[test]
    fn no_schema_activity_yields_none() {
        assert!(TimeMetrics::from_project(&project(vec![0.0; 10])).is_none());
    }

    #[test]
    fn flatliner_shape() {
        let mut v = vec![0.0; 20];
        v[0] = 10.0;
        let m = TimeMetrics::from_project(&project(v)).unwrap();
        assert_eq!(m.birth_index, 0);
        assert_eq!(m.topband_index, 0);
        assert_eq!(m.birth_pct_pup, 0.0);
        assert_eq!(m.birth_volume_pct_total, 1.0);
        assert_eq!(m.interval_birth_to_top_pct, 0.0);
        assert_eq!(m.interval_top_to_end_pct, 1.0);
        assert!(m.has_single_vault);
        assert_eq!(m.active_growth_months, 0);
        assert_eq!(m.activity_after_birth, 0.0);
    }

    #[test]
    fn topband_is_first_month_reaching_ninety_percent() {
        // 50, 30, 15, 5 → cumulative 50%, 80%, 95%, 100%: top at index 2.
        let m = TimeMetrics::from_project(&project(vec![50.0, 30.0, 15.0, 5.0])).unwrap();
        assert_eq!(m.topband_index, 2);
        assert!((m.topband_pct_pup - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.interval_top_to_end_pct - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_ninety_percent_counts() {
        let m = TimeMetrics::from_project(&project(vec![90.0, 0.0, 10.0])).unwrap();
        assert_eq!(m.topband_index, 0);
    }

    #[test]
    fn late_birth_percentages() {
        let mut v = vec![0.0; 11];
        v[9] = 5.0;
        v[10] = 1.0;
        let m = TimeMetrics::from_project(&project(v)).unwrap();
        assert_eq!(m.birth_index, 9);
        assert!((m.birth_pct_pup - 0.9).abs() < 1e-12);
        assert_eq!(m.topband_index, 10); // 5/6 < 0.9, needs the last month
        assert!((m.interval_birth_to_top_pct - 0.1).abs() < 1e-12);
    }

    #[test]
    fn active_growth_months_counts_proper_interval_only() {
        // birth at 0 (10), activity at 2 and 4, top at 8.
        let mut v = vec![0.0; 20];
        v[0] = 10.0;
        v[2] = 20.0;
        v[4] = 20.0;
        v[8] = 40.0; // cum: 10,30,50,90 → top reached at index 8 (90/90... )
        v[12] = 10.0;
        let m = TimeMetrics::from_project(&project(v)).unwrap();
        assert_eq!(m.topband_index, 8);
        assert_eq!(m.active_growth_months, 2); // months 2 and 4
        assert!((m.active_pct_growth - 2.0 / 7.0).abs() < 1e-12);
        assert!((m.active_pct_pup - 0.1).abs() < 1e-12);
        assert!(!m.has_single_vault);
    }

    #[test]
    fn adjacent_birth_and_top_have_zero_growth_interior() {
        let m = TimeMetrics::from_project(&project(vec![50.0, 50.0, 0.0, 0.0])).unwrap();
        assert_eq!(m.birth_index, 0);
        assert_eq!(m.topband_index, 1);
        assert_eq!(m.active_growth_months, 0);
        assert_eq!(m.active_pct_growth, 0.0);
    }

    #[test]
    fn vault_threshold_is_strict() {
        // 21 months: index 2 = 10% exactly → NOT a vault (must be < 10%).
        let mut v = vec![0.0; 21];
        v[0] = 50.0;
        v[2] = 50.0;
        let m = TimeMetrics::from_project(&project(v)).unwrap();
        assert!((m.interval_birth_to_top_pct - 0.1).abs() < 1e-12);
        assert!(!m.has_single_vault);
    }

    #[test]
    fn single_month_project() {
        let m = TimeMetrics::from_project(&project(vec![7.0])).unwrap();
        assert_eq!(m.pup_months, 1);
        assert_eq!(m.birth_pct_pup, 0.0);
        assert_eq!(m.topband_pct_pup, 0.0);
        assert_eq!(m.interval_top_to_end_pct, 1.0);
    }

    #[test]
    fn quantized_line_has_requested_length() {
        let mut v = vec![0.0; 40];
        v[0] = 1.0;
        let p = project(v);
        let line = TimeMetrics::quantized_line(&p, 20);
        assert_eq!(line.len(), 20);
        assert!((line[19] - 1.0).abs() < 1e-12);
    }
}
