//! Corpus calibration: the emergent aggregates of the synthetic corpus must
//! match the paper's published numbers (Table 1, Fig. 7, §3.4, §6.1).
//!
//! Exactly-engineered marginals are asserted exactly; the two documented
//! deviations (birth-point ±2, active-%PUP split) get tolerance bounds.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// allow-in-tests escape hatch does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use schemachron_core::predict::BirthBucket;
use schemachron_core::Pattern;
use schemachron_corpus::Corpus;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

#[test]
fn table1_marginals_match_paper() {
    let c = Corpus::generate(42);
    let mut vol = [0; 4];
    let mut bp = [0i32; 4];
    let mut tp = [0; 4];
    let mut iv = [0; 5];
    let mut tail = [0; 4];
    let mut ag = [0; 4];
    for p in c.projects() {
        vol[p.labels.birth_volume.ordinal() as usize] += 1;
        bp[p.labels.birth_point.ordinal() as usize] += 1;
        tp[p.labels.topband_point.ordinal() as usize] += 1;
        iv[p.labels.interval_birth_to_top.ordinal() as usize] += 1;
        tail[p.labels.interval_top_to_end.ordinal() as usize] += 1;
        ag[p.labels.active_growth.ordinal() as usize] += 1;
    }
    assert_eq!(vol, [16, 52, 44, 39], "birth volume (Table 1)");
    assert_eq!(tp, [23, 41, 47, 40], "top-band point (Table 1)");
    assert_eq!(iv, [62, 26, 27, 23, 13], "interval birth→top (Table 1)");
    assert_eq!(tail, [40, 48, 40, 23], "interval top→end (Table 1)");
    assert_eq!(ag, [98, 22, 22, 9], "active growth months (Table 1)");
    // Birth point: paper [52, 53, 33, 13]; two middles vs earlies trade
    // places in our construction (documented in EXPERIMENTS.md).
    assert_eq!(bp[0], 52);
    assert_eq!(bp[3], 13);
    assert!((bp[1] - 53).abs() <= 2, "{bp:?}");
    assert!((bp[2] - 33).abs() <= 2, "{bp:?}");
}

#[test]
fn figure7_birth_buckets_match_paper() {
    let c = Corpus::generate(42);
    let mut buckets = [0usize; 4];
    for p in c.projects() {
        let b = match BirthBucket::of(p.metrics.birth_index) {
            BirthBucket::M0 => 0,
            BirthBucket::M1toM6 => 1,
            BirthBucket::M7toM12 => 2,
            BirthBucket::AfterM12 => 3,
        };
        buckets[b] += 1;
    }
    assert_eq!(buckets, [52, 38, 13, 48]);
}

#[test]
fn section61_medians_match_paper() {
    let c = Corpus::generate(42);
    let med = |p: Pattern| {
        median(
            c.of_pattern(p)
                .map(|x| x.metrics.activity_after_birth)
                .collect(),
        )
    };
    assert!(med(Pattern::Flatliner) < 3.0);
    assert!(med(Pattern::Sigmoid) < 3.0);
    assert!(med(Pattern::LateRiser) < 3.0);
    assert_eq!(med(Pattern::RadicalSign), 13.0);
    assert_eq!(med(Pattern::Siesta), 17.0);
    assert_eq!(med(Pattern::QuantumSteps), 22.0);
    assert_eq!(med(Pattern::SmokingFunnel), 189.0);
    let rc = med(Pattern::RegularlyCurated);
    assert!((rc - 250.0).abs() <= 10.0, "RC median {rc}");
}

#[test]
fn section34_headline_stats_match_paper() {
    let c = Corpus::generate(42);
    // 58% of projects show a single vault.
    let vaults = c
        .projects()
        .iter()
        .filter(|p| p.metrics.has_single_vault)
        .count();
    assert_eq!(vaults, 88); // 88/151 = 58.3%
                            // Two thirds have zero active growth months.
    let zero_agm = c
        .projects()
        .iter()
        .filter(|p| p.metrics.active_growth_months == 0)
        .count();
    assert_eq!(zero_agm, 98);
    // About half are born within the first 10% of the project's life.
    let early = c
        .projects()
        .iter()
        .filter(|p| p.metrics.birth_pct_pup <= 0.10)
        .count();
    assert!((74..=84).contains(&early), "{early}");
    // 42% reach the top band at V0 or before 25% of the PUP.
    let quick_top = c
        .projects()
        .iter()
        .filter(|p| p.metrics.topband_pct_pup <= 0.25)
        .count();
    assert_eq!(quick_top, 64); // 23 + 41
}

#[test]
fn snapshot_and_migration_materializations_measure_identically() {
    use schemachron_corpus::materialize::{materialize, materialize_snapshots};
    use schemachron_history::ProjectHistoryBuilder;

    // A representative card from each pattern (first of each block).
    let cards = schemachron_corpus::cards::all_cards();
    let picks = [0usize, 23, 64, 83, 97, 120, 134, 144];
    for &i in &picks {
        let card = &cards[i];
        let mig = materialize(card, 42);
        let snap = materialize_snapshots(card, 42);

        let build = |commits: &[(schemachron_history::Date, String)], snapshot: bool| {
            let mut b = ProjectHistoryBuilder::new(&card.name);
            for (d, sql) in commits {
                if snapshot {
                    b.snapshot(*d, sql.clone());
                } else {
                    b.migration(*d, sql.clone());
                }
            }
            for (d, l) in &mig.source_commits {
                b.source_commit(*d, *l);
            }
            b.build()
        };
        let pm = build(&mig.ddl_commits, false);
        let ps = build(&snap.ddl_commits, true);
        assert_eq!(pm.schema_total(), ps.schema_total(), "{}", card.name);
        assert_eq!(
            pm.schema_heartbeat().values(),
            ps.schema_heartbeat().values(),
            "{}",
            card.name
        );
        assert_eq!(
            pm.schema_history().unwrap().last_schema(),
            ps.schema_history().unwrap().last_schema(),
            "{}",
            card.name
        );
    }
}
