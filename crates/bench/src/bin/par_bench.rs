//! Parallel-ingestion benchmark: a jobs × size grid over the stratified
//! corpus, written to `BENCH_pipeline.json`.
//!
//! For every `(size, jobs)` cell the stage cache is cleared and one full
//! ingestion of `size` stratified projects is timed through the streaming
//! [`summarize_cards`] path (same per-project compute as a corpus build,
//! no retained histories — so the 151k-project points stay memory-bounded).
//! Each row records the *requested* jobs, the *effective* worker count
//! after the small-batch serial fallback, and the speedup against the
//! serial (`jobs = 1`) row of the same size; the report header records the
//! host's detected core count and the stage-cache shard count, so a curve
//! measured on a single-core host can never masquerade as a scaling proof
//! again.
//!
//! `--gate <min-speedup>` turns the bench into a CI regression gate: it
//! exits nonzero when any threaded `jobs = 2` row of size ≥ 604 falls below
//! the threshold. On a single-core host the gate is skipped (two workers on
//! one core cannot beat serial; the old 0.41× regression this bench
//! polices was *contention*, which sharding removed — not core scarcity).
//!
//! ```text
//! par_bench [--sizes 151,604,1510,15100] [--jobs-list 1,2,4,8]
//!           [--seed N] [--gate MIN] [--out PATH]
//! ```

use std::num::NonZeroUsize;
use std::time::Instant;

use schemachron_corpus::cards::scaled_cards;
use schemachron_corpus::{pipeline, summarize_cards};

/// Default size axis: the historical curve points plus one 10^4-scale
/// point. The 151k point (`--sizes ...,151000`) is opt-in — it is minutes
/// of wall time on small hosts.
const DEFAULT_SIZES: [usize; 4] = [151, 604, 1510, 15_100];

/// Default jobs axis.
const DEFAULT_JOBS: [usize; 4] = [1, 2, 4, 8];

/// Sizes at or above this run a single repetition; smaller sizes take the
/// minimum of [`REPS`] to damp scheduler noise.
const SINGLE_REP_AT: usize = 10_000;
const REPS: usize = 3;

fn parse_list(v: &str, flag: &str) -> Vec<usize> {
    v.split(',')
        .map(|s| {
            s.trim().parse::<NonZeroUsize>().map_or_else(
                |_| {
                    eprintln!("par_bench: {flag}: expected positive integers, got `{s}`");
                    std::process::exit(2);
                },
                NonZeroUsize::get,
            )
        })
        .collect()
}

fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Times one full stratified ingestion; returns seconds.
fn time_ingest(size: usize, seed: u64, jobs: usize) -> f64 {
    pipeline::clear_stage_cache();
    let start = Instant::now();
    let summaries = match summarize_cards(scaled_cards(size), seed, jobs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("par_bench: ingestion failed: {e}");
            std::process::exit(1);
        }
    };
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(summaries.len(), size);
    secs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = opt_value(&args, "--sizes")
        .map_or_else(|| DEFAULT_SIZES.to_vec(), |v| parse_list(v, "--sizes"));
    let jobs_axis = opt_value(&args, "--jobs-list")
        .map_or_else(|| DEFAULT_JOBS.to_vec(), |v| parse_list(v, "--jobs-list"));
    let seed = opt_value(&args, "--seed").map_or(schemachron_bench::DEFAULT_SEED, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("par_bench: --seed: expected an integer, got `{v}`");
            std::process::exit(2);
        })
    });
    let gate: Option<f64> = opt_value(&args, "--gate").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("par_bench: --gate: expected a number, got `{v}`");
            std::process::exit(2);
        })
    });

    let detected_cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let shard_count = pipeline::stage_cache_shard_count();

    let mut rows = Vec::new();
    let mut gate_failures = Vec::new();
    for &size in &sizes {
        let reps = if size >= SINGLE_REP_AT { 1 } else { REPS };
        let mut serial_secs = f64::NAN;
        for &jobs in &jobs_axis {
            let workers = schemachron_corpus::effective_workers(size, jobs);
            let mut secs = f64::INFINITY;
            for _ in 0..reps {
                secs = secs.min(time_ingest(size, seed, jobs));
            }
            if jobs == 1 {
                serial_secs = secs;
            }
            let speedup = serial_secs / secs;
            let pps = size as f64 / secs;
            println!(
                "bench: grid size {size:>6}  jobs {jobs} (workers {workers})  \
                 {secs:>8.3}s ({pps:>8.1}/s)  speedup {speedup:>5.2}x"
            );
            rows.push(serde_json::json!({
                "size": size,
                "jobs_requested": jobs,
                "workers_effective": workers,
                "secs": secs,
                "projects_per_sec": pps,
                "speedup_vs_serial": speedup,
            }));
            if let Some(min) = gate {
                // The regression gate: threaded two-worker ingestion of any
                // non-trivial size must never lose to serial again.
                if detected_cores >= 2 && jobs == 2 && workers >= 2 && size >= 604 && speedup < min
                {
                    gate_failures.push(format!(
                        "size {size} jobs 2: speedup {speedup:.2}x < required {min:.2}x"
                    ));
                }
            }
        }
    }

    let report = serde_json::json!({
        "bench": "pipeline/parallel_grid",
        "seed": seed,
        "detected_cores": detected_cores,
        "stage_cache_shards": shard_count,
        "grid": rows,
    });
    let out_path = opt_value(&args, "--out")
        .map(str::to_owned)
        .unwrap_or_else(|| {
            // CARGO_MANIFEST_DIR = crates/bench, so ../.. is the workspace root.
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_owned()
        });
    match std::fs::write(&out_path, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => println!("bench: wrote {out_path}"),
        Err(e) => eprintln!("bench: could not write {out_path}: {e}"),
    }

    if gate.is_some() {
        if detected_cores < 2 {
            println!(
                "bench: gate skipped — single-core host (detected_cores = 1), \
                 parallel speedup is core-bound"
            );
        } else if gate_failures.is_empty() {
            println!("bench: gate passed");
        } else {
            for f in &gate_failures {
                eprintln!("bench: GATE FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}
