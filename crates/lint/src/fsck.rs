//! On-disk corpus integrity pass (`F001`): checks a checked-out project
//! directory's `MANIFEST` against the files actually on disk.
//!
//! `corpus io` writes every project atomically with a checksum manifest
//! (see `schemachron_corpus::io`); this pass re-verifies that record
//! without loading the project — the lint-time complement to the
//! load-time verification, for auditing corpora at rest. Directories
//! without a `MANIFEST` (hand-assembled fixtures, pre-manifest checkouts)
//! produce no findings: there is no record to disagree with.

use std::path::Path;

use schemachron_corpus::io::{read_manifest, verify_project_dir, LoadError};

use crate::diag::{Diagnostic, Report};

/// Checks `dir`'s `MANIFEST` (if any) against the on-disk files, pushing
/// an `F001` finding per disagreement: unparsable manifest, listed file
/// missing or checksum-mismatched, or a tracked file on disk the manifest
/// does not list.
///
/// # Errors
/// Returns the underlying I/O error when the directory cannot be read;
/// integrity disagreements are findings, not errors.
pub fn lint_manifest_dir(dir: &Path, report: &mut Report) -> std::io::Result<()> {
    let project = dir
        .file_name()
        .map_or_else(|| "(project)".to_owned(), |n| n.to_string_lossy().into_owned());
    match read_manifest(dir) {
        Ok(None) => return Ok(()),
        Ok(Some(_)) => {}
        Err(LoadError::Io(e)) => return Err(e),
        Err(LoadError::Corrupt(c)) => {
            report.push(Diagnostic::new("F001", project, c.detail));
            return Ok(());
        }
    }
    match verify_project_dir(dir) {
        Ok(()) => Ok(()),
        Err(LoadError::Io(e)) => Err(e),
        Err(LoadError::Corrupt(c)) => {
            report.push(Diagnostic::new("F001", project, c.detail));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_hash::fnv1a_once;
    use std::fs;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("schemachron-fsck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn manifest_for(files: &[(&str, &str)]) -> String {
        let mut out = String::from("# schemachron corpus manifest v1\n");
        for (name, body) in files {
            out.push_str(&format!("{:016x}  {name}\n", fnv1a_once(body.as_bytes())));
        }
        out
    }

    #[test]
    fn consistent_dir_is_clean_and_manifestless_dir_is_silent() {
        let dir = tmp("clean");
        let sql = "CREATE TABLE t (a INT);";
        fs::write(dir.join("0001_2020-01-10.sql"), sql).unwrap();
        let mut report = Report::new();
        lint_manifest_dir(&dir, &mut report).unwrap();
        assert!(report.diagnostics().is_empty(), "no MANIFEST, no findings");
        fs::write(
            dir.join("MANIFEST"),
            manifest_for(&[("0001_2020-01-10.sql", sql)]),
        )
        .unwrap();
        lint_manifest_dir(&dir, &mut report).unwrap();
        assert!(report.diagnostics().is_empty(), "{}", report.render_human());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_is_f001() {
        let dir = tmp("mismatch");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        fs::write(
            dir.join("MANIFEST"),
            manifest_for(&[("0001_2020-01-10.sql", "something else entirely")]),
        )
        .unwrap();
        let mut report = Report::new();
        lint_manifest_dir(&dir, &mut report).unwrap();
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["F001"]);
        assert!(
            report.diagnostics()[0].message.contains("checksum mismatch"),
            "{}",
            report.diagnostics()[0].message
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unlisted_and_missing_files_are_f001() {
        let dir = tmp("drift");
        let sql = "CREATE TABLE t (a INT);";
        fs::write(dir.join("0001_2020-01-10.sql"), sql).unwrap();
        // MANIFEST lists a second script that is not on disk.
        fs::write(
            dir.join("MANIFEST"),
            manifest_for(&[("0001_2020-01-10.sql", sql), ("0002_2020-02-10.sql", "x")]),
        )
        .unwrap();
        let mut report = Report::new();
        lint_manifest_dir(&dir, &mut report).unwrap();
        assert_eq!(report.diagnostics().len(), 1);
        assert!(report.diagnostics()[0].message.contains("missing"));

        // Now the mirror image: a tracked on-disk file the MANIFEST omits.
        fs::write(
            dir.join("MANIFEST"),
            manifest_for(&[("0001_2020-01-10.sql", sql)]),
        )
        .unwrap();
        fs::write(dir.join("source.csv"), "date,lines_changed\n").unwrap();
        let mut report = Report::new();
        lint_manifest_dir(&dir, &mut report).unwrap();
        assert_eq!(report.diagnostics().len(), 1);
        assert!(report.diagnostics()[0].message.contains("not in MANIFEST"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparsable_manifest_is_f001() {
        let dir = tmp("garbled");
        fs::write(dir.join("MANIFEST"), "not a manifest at all\n").unwrap();
        let mut report = Report::new();
        lint_manifest_dir(&dir, &mut report).unwrap();
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["F001"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
