//! Regenerates Figure 4 (pattern characteristics overview).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::figure4(&ctx);
    emit(
        "exp_figure4",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
