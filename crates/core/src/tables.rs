//! Per-**table** evolution profiles — the companion-study lineage the paper
//! builds on ("Gravitating to rigidity" and the "Schema Evolution Survival
//! Guide for Tables", refs \[47\] and \[46\], plus the foreign-key study \[44\]).
//!
//! While the paper's patterns describe the *whole schema's* timing, these
//! profiles track each table from its birth version to its death (or the
//! end of the history), counting the updates it receives — the substrate
//! for table-level rigidity statistics and the foreign-key activity split.

use std::collections::BTreeMap;

use schemachron_history::SchemaHistory;
use schemachron_model::{ChangeKind, Name};
use serde::{Deserialize, Serialize};

/// The life of one table inside a schema history.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableProfile {
    /// The table name.
    pub name: Name,
    /// Version index (0-based) at which the table appeared.
    pub birth_version: usize,
    /// Version index at which the table was dropped, if it was.
    pub death_version: Option<usize>,
    /// Attribute count at birth.
    pub attributes_at_birth: usize,
    /// Attribute count at death or at the end of the history.
    pub attributes_at_end: usize,
    /// Post-birth *updates*: attribute injections, ejections, type changes
    /// and key changes on this table (excluding birth and death).
    pub updates: usize,
    /// Whether the table participates in any foreign key (on either side)
    /// at any version of its life.
    pub in_foreign_key: bool,
}

impl TableProfile {
    /// A table is *rigid* when it never changes after birth — the
    /// "gravitation to rigidity" the companion studies report for the
    /// large majority of tables.
    pub fn is_rigid(&self) -> bool {
        self.updates == 0
    }

    /// Whether the table survives to the end of the history.
    pub fn survived(&self) -> bool {
        self.death_version.is_none()
    }

    /// Life span in versions (birth..death or history end). Saturates to 0
    /// when `total_versions` predates the table's birth.
    pub fn version_span(&self, total_versions: usize) -> usize {
        self.death_version
            .unwrap_or(total_versions)
            .saturating_sub(self.birth_version)
    }
}

/// Extracts the profile of every table that ever existed in the history.
///
/// A name that is dropped and later re-created yields **two** profiles (the
/// second life is a different table as far as evolution is concerned).
pub fn table_profiles(history: &SchemaHistory) -> Vec<TableProfile> {
    let mut done: Vec<TableProfile> = Vec::new();
    // Alive tables: name → index into `alive_profiles`.
    let mut alive: BTreeMap<Name, TableProfile> = BTreeMap::new();

    for (v, version) in history.versions().iter().enumerate() {
        // Deaths first (a drop+create of the same name in one version is a
        // rebirth; diff reports both sides).
        for dead in &version.diff.tables_dropped {
            if let Some(mut profile) = alive.remove(dead) {
                profile.death_version = Some(v);
                done.push(profile);
            }
        }
        // Births.
        for born in &version.diff.tables_added {
            let attrs = version
                .schema
                .table(born.as_str())
                .map_or(0, |t| t.attribute_count());
            alive.insert(
                born.clone(),
                TableProfile {
                    name: born.clone(),
                    birth_version: v,
                    death_version: None,
                    attributes_at_birth: attrs,
                    attributes_at_end: attrs,
                    updates: 0,
                    in_foreign_key: false,
                },
            );
        }
        // Updates on surviving tables.
        for change in &version.diff.changes {
            let counts_as_update = matches!(
                change.kind,
                ChangeKind::AttributeInjected
                    | ChangeKind::AttributeEjected
                    | ChangeKind::DataTypeChanged
                    | ChangeKind::KeyParticipationChanged
            );
            if !counts_as_update {
                continue;
            }
            if let Some(profile) = alive.get_mut(&change.table) {
                if profile.birth_version != v {
                    profile.updates += 1;
                }
            }
        }
        // Refresh sizes and FK participation of alive tables.
        for (name, profile) in alive.iter_mut() {
            if let Some(t) = version.schema.table(name.as_str()) {
                profile.attributes_at_end = t.attribute_count();
                if !t.foreign_keys.is_empty() {
                    profile.in_foreign_key = true;
                }
            }
        }
        // Referenced side of FKs.
        for t in version.schema.tables() {
            for fk in &t.foreign_keys {
                if let Some(p) = alive.get_mut(&fk.ref_table) {
                    p.in_foreign_key = true;
                }
            }
        }
    }

    done.extend(alive.into_values());
    done.sort_by(|a, b| (a.birth_version, &a.name).cmp(&(b.birth_version, &b.name)));
    done
}

/// Aggregate table-level statistics over one schema history.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TableCensus {
    /// Tables that ever existed.
    pub total: usize,
    /// Tables with zero post-birth updates.
    pub rigid: usize,
    /// Tables that survive to the end.
    pub survivors: usize,
    /// Post-birth update counts of foreign-key-involved tables.
    pub fk_updates: Vec<usize>,
    /// Post-birth update counts of tables not involved in any foreign key.
    pub non_fk_updates: Vec<usize>,
}

impl TableCensus {
    /// Fraction of rigid tables.
    pub fn rigidity_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.rigid as f64 / self.total as f64
        }
    }
}

/// Computes the census of one history's tables.
pub fn table_census(history: &SchemaHistory) -> TableCensus {
    let profiles = table_profiles(history);
    let mut census = TableCensus {
        total: profiles.len(),
        ..TableCensus::default()
    };
    for p in &profiles {
        if p.is_rigid() {
            census.rigid += 1;
        }
        if p.survived() {
            census.survivors += 1;
        }
        if p.in_foreign_key {
            census.fk_updates.push(p.updates);
        } else {
            census.non_fk_updates.push(p.updates);
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::{Date, IngestMode};

    fn d(m: u8) -> Date {
        Date::new(2020, m, 1)
    }

    fn history(scripts: &[&str]) -> SchemaHistory {
        let mut h = SchemaHistory::new();
        for (i, sql) in scripts.iter().enumerate() {
            h.push(IngestMode::Migration, d(i as u8 + 1), sql);
        }
        h
    }

    #[test]
    fn birth_death_and_updates_tracked() {
        let h = history(&[
            "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z INT);",
            "ALTER TABLE a ADD COLUMN w INT;",
            "DROP TABLE b;",
        ]);
        let profiles = table_profiles(&h);
        assert_eq!(profiles.len(), 2);
        let a = profiles.iter().find(|p| p.name == Name::from("a")).unwrap();
        assert_eq!(a.birth_version, 0);
        assert_eq!(a.updates, 1);
        assert_eq!(a.attributes_at_birth, 2);
        assert_eq!(a.attributes_at_end, 3);
        assert!(a.survived());
        assert!(!a.is_rigid());
        let b = profiles.iter().find(|p| p.name == Name::from("b")).unwrap();
        assert_eq!(b.death_version, Some(2));
        assert!(b.is_rigid());
        assert_eq!(b.version_span(3), 2);
    }

    #[test]
    fn same_version_birth_changes_do_not_count_as_updates() {
        // Attributes born with the table are part of birth, not updates.
        let h = history(&["CREATE TABLE t (a INT, b INT, c INT);"]);
        let p = &table_profiles(&h)[0];
        assert!(p.is_rigid());
    }

    #[test]
    fn rebirth_creates_a_second_profile() {
        let h = history(&[
            "CREATE TABLE t (a INT);",
            "DROP TABLE t;",
            "CREATE TABLE t (a INT, b INT);",
        ]);
        let profiles = table_profiles(&h);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].death_version, Some(1));
        assert_eq!(profiles[1].birth_version, 2);
        assert!(profiles[1].survived());
    }

    #[test]
    fn fk_participation_both_sides() {
        let h = history(&["CREATE TABLE parent (id INT PRIMARY KEY);
             CREATE TABLE child (pid INT, CONSTRAINT f FOREIGN KEY (pid) REFERENCES parent (id));
             CREATE TABLE loner (x INT);"]);
        let profiles = table_profiles(&h);
        let by_name = |n: &str| profiles.iter().find(|p| p.name == Name::from(n)).unwrap();
        assert!(by_name("parent").in_foreign_key, "referenced side");
        assert!(by_name("child").in_foreign_key, "referencing side");
        assert!(!by_name("loner").in_foreign_key);
    }

    #[test]
    fn census_aggregates() {
        let h = history(&[
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);",
            "ALTER TABLE a ADD COLUMN q INT; DROP TABLE b;",
        ]);
        let c = table_census(&h);
        assert_eq!(c.total, 2);
        assert_eq!(c.rigid, 1); // b never changed after birth
        assert_eq!(c.survivors, 1);
        assert!((c.rigidity_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.fk_updates.len() + c.non_fk_updates.len(), 2);
    }

    #[test]
    fn empty_history_yields_empty_census() {
        let h = SchemaHistory::new();
        let c = table_census(&h);
        assert_eq!(c.total, 0);
        assert_eq!(c.rigidity_rate(), 0.0);
    }

    #[test]
    fn type_and_key_changes_count_as_updates() {
        let h = history(&[
            "CREATE TABLE t (a INT, b INT);",
            "ALTER TABLE t MODIFY COLUMN a BIGINT;",
            "ALTER TABLE t ADD PRIMARY KEY (b);",
        ]);
        let p = &table_profiles(&h)[0];
        assert_eq!(p.updates, 2);
    }
}
