//! Stratified-scaling calibration: a `--scale N` corpus must preserve the
//! paper's joint label distribution *exactly* — every Fig. 4 population,
//! Fig. 7 birth bucket, Table 1 marginal and Table 2 exception count scales
//! by N, and the Fig. 6 joint label census keeps the same support with
//! every cell multiplied by N.
//!
//! This holds by construction (the generator cycles the 151 calibrated
//! cards in complete cycles, and every timing metric is card-determined),
//! but these tests pin the construction: a future "improvement" that
//! samples cards instead of cycling them would break scaling silently.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// allow-in-tests escape hatch does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};

use schemachron_core::predict::BirthBucket;
use schemachron_core::quantize::Labels;
use schemachron_core::Pattern;
use schemachron_corpus::cards::{all_cards, stratified_cards};
use schemachron_corpus::{Corpus, ProjectSummary};

fn bucket_index(birth_index: usize) -> usize {
    match BirthBucket::of(birth_index) {
        BirthBucket::M0 => 0,
        BirthBucket::M1toM6 => 1,
        BirthBucket::M7toM12 => 2,
        BirthBucket::AfterM12 => 3,
    }
}

fn label_census(summaries: &[ProjectSummary]) -> BTreeMap<String, usize> {
    let mut census = BTreeMap::new();
    for s in summaries {
        *census.entry(joint_key(&s.labels)).or_insert(0) += 1;
    }
    census
}

/// A total-order key over the §3.3 joint label tuple.
fn joint_key(l: &Labels) -> String {
    format!(
        "{}/{}/{}/{}/{}/{}",
        l.birth_volume.ordinal(),
        l.birth_point.ordinal(),
        l.topband_point.ordinal(),
        l.interval_birth_to_top.ordinal(),
        l.interval_top_to_end.ordinal(),
        l.active_growth.ordinal()
    )
}

/// One built corpus at scale 10 (1510 projects) shared by the assertions:
/// building it is the expensive part, so the test checks every scaled
/// aggregate on a single pass.
#[test]
fn scale10_built_corpus_scales_every_paper_aggregate_exactly() {
    const SCALE: usize = 10;
    let base = Corpus::generate_jobs(42, 2);
    let scaled = Corpus::generate_stratified_jobs(42, SCALE, 2);
    assert_eq!(scaled.projects().len(), SCALE * 151);

    // Fig. 4 pattern populations, ×N.
    let mut patterns: BTreeMap<Pattern, usize> = BTreeMap::new();
    for p in scaled.projects() {
        *patterns.entry(p.assigned).or_insert(0) += 1;
    }
    for (pattern, expect) in [
        (Pattern::Flatliner, 23),
        (Pattern::RadicalSign, 41),
        (Pattern::Sigmoid, 19),
        (Pattern::LateRiser, 14),
        (Pattern::QuantumSteps, 23),
        (Pattern::RegularlyCurated, 14),
        (Pattern::Siesta, 10),
        (Pattern::SmokingFunnel, 7),
    ] {
        assert_eq!(patterns[&pattern], SCALE * expect, "{pattern:?} (Fig. 4)");
    }

    // Fig. 7 birth buckets, ×N.
    let mut buckets = [0usize; 4];
    for p in scaled.projects() {
        buckets[bucket_index(p.metrics.birth_index)] += 1;
    }
    assert_eq!(
        buckets,
        [SCALE * 52, SCALE * 38, SCALE * 13, SCALE * 48],
        "birth buckets (Fig. 7)"
    );

    // Table 1 marginals, ×N. The engineered-exact ones are asserted exactly;
    // birth point keeps the base corpus's documented ±2 deviation, scaled.
    let mut vol = [0; 4];
    let mut bp = [0usize; 4];
    let mut tp = [0; 4];
    let mut iv = [0; 5];
    let mut tail = [0; 4];
    let mut ag = [0; 4];
    for p in scaled.projects() {
        vol[p.labels.birth_volume.ordinal() as usize] += 1;
        bp[p.labels.birth_point.ordinal() as usize] += 1;
        tp[p.labels.topband_point.ordinal() as usize] += 1;
        iv[p.labels.interval_birth_to_top.ordinal() as usize] += 1;
        tail[p.labels.interval_top_to_end.ordinal() as usize] += 1;
        ag[p.labels.active_growth.ordinal() as usize] += 1;
    }
    let by = |xs: [usize; 4]| xs.map(|x| SCALE * x);
    assert_eq!(vol, by([16, 52, 44, 39]), "birth volume (Table 1)");
    assert_eq!(tp, by([23, 41, 47, 40]), "top-band point (Table 1)");
    assert_eq!(
        iv,
        [62, 26, 27, 23, 13].map(|x| SCALE * x),
        "interval birth→top (Table 1)"
    );
    assert_eq!(tail, by([40, 48, 40, 23]), "interval top→end (Table 1)");
    assert_eq!(ag, by([98, 22, 22, 9]), "active growth (Table 1)");
    assert_eq!(bp[0], SCALE * 52, "birth point P0 (Table 1)");
    assert_eq!(bp[3], SCALE * 13, "birth point P3 (Table 1)");
    assert_eq!(bp.iter().sum::<usize>(), SCALE * 151);

    // Table 2 exceptions, ×N.
    let exceptions = scaled.projects().iter().filter(|p| p.exception).count();
    assert_eq!(exceptions, SCALE * 8, "exception count (Table 2)");

    // Fig. 6 joint label census: same support as the base corpus, every
    // cell exactly ×N. This is the strongest form of "the joint label
    // distribution is preserved" — not just the marginals.
    let base_census = label_census(&base.summaries());
    let scaled_census = label_census(&scaled.summaries());
    assert_eq!(
        base_census.keys().collect::<Vec<_>>(),
        scaled_census.keys().collect::<Vec<_>>(),
        "label-space support must not grow or shrink (Fig. 6)"
    );
    for (cell, count) in &base_census {
        assert_eq!(scaled_census[cell], SCALE * count, "census cell {cell}");
    }

    // Project names stay unique at scale.
    let names: BTreeSet<&str> = scaled.projects().iter().map(|p| p.card.name.as_str()).collect();
    assert_eq!(names.len(), SCALE * 151);
}

/// At scale 1000 (151 000 cards) building every project is a bench-only
/// affair, but the stratification guarantee is decided at the card level:
/// timing plans and label targets are card fields, so the card census *is*
/// the corpus census.
#[test]
fn scale1000_card_census_scales_exactly() {
    const SCALE: usize = 1000;
    let base = all_cards();
    let cards = stratified_cards(SCALE);
    assert_eq!(cards.len(), SCALE * 151);

    // Pattern populations (Fig. 4) and exceptions (Table 2), ×N.
    let mut patterns: BTreeMap<Pattern, usize> = BTreeMap::new();
    let mut exceptions = 0usize;
    for c in &cards {
        *patterns.entry(c.pattern).or_insert(0) += 1;
        exceptions += usize::from(c.exception);
    }
    let mut base_patterns: BTreeMap<Pattern, usize> = BTreeMap::new();
    for c in &base {
        *base_patterns.entry(c.pattern).or_insert(0) += 1;
    }
    for (pattern, count) in &base_patterns {
        assert_eq!(patterns[pattern], SCALE * count, "{pattern:?}");
    }
    assert_eq!(exceptions, SCALE * 8, "exceptions (Table 2)");

    // Every cycle is a verbatim copy of the base deck (names aside): cards
    // i and i+151 differ only in the `-x{cycle}` suffix.
    for (i, card) in cards.iter().enumerate().take(3 * 151) {
        let mut expected = base[i % 151].clone();
        expected.name = format!("{}-x{}", expected.name, i / 151);
        assert_eq!(card, &expected);
    }

    // Names are unique across all 151k cards.
    let names: BTreeSet<&str> = cards.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names.len(), SCALE * 151);
}
