//! The streaming store: per-project WALs plus the shared change feed,
//! behind one idempotent append operation.
//!
//! Layout on disk: `<root>/<project>/NNNNNN.wal`. Opening a store replays
//! every project's WAL (truncating torn tails), re-derives each project's
//! current classification, and resumes the feed cursor past the highest
//! cursor any replayed record carries — so a restarted process continues
//! the same monotonic cursor line it crashed on.
//!
//! Appends are **idempotent via client sequence numbers**: the first
//! commit of a project is `seq 1`, each next one `last + 1`. A duplicate
//! or out-of-order retry (`seq ≤ last`) is acknowledged as a safe no-op
//! without re-writing or re-emitting anything; a gap (`seq > last + 1`)
//! is refused with the expected sequence so the client can resync.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use schemachron_history::Date;

use crate::classify::{classification_for, classify_commits};
use crate::feed::{ChangeEvent, ChangeFeed, FeedBatch, FEED_CAPACITY};
use crate::wal::{Wal, WalError, WalRecord};

/// Outcome of one append call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Append {
    /// The commit was made durable and announced on the feed.
    Appended {
        /// The acknowledged sequence number.
        seq: u64,
        /// The feed cursor the transition event carries.
        cursor: u64,
        /// Pattern label before this commit (`None` for the first).
        before: Option<String>,
        /// Pattern label after this commit.
        after: String,
    },
    /// `seq` was already acknowledged: a retried or reordered request.
    Duplicate {
        /// The retried sequence number.
        seq: u64,
        /// The project's last acknowledged sequence number.
        last_seq: u64,
    },
}

/// A streaming-store failure.
#[derive(Debug)]
pub enum StreamError {
    /// `seq` skips ahead: the client must send `expected` next.
    SequenceGap {
        /// The next acceptable sequence number.
        expected: u64,
        /// The sequence number the client sent.
        got: u64,
    },
    /// The commit date is not a valid `YYYY-MM-DD`.
    BadDate(String),
    /// Sequence numbers start at 1.
    BadSeq(u64),
    /// The project name is empty or escapes the store root.
    BadProject(String),
    /// The WAL failed (I/O or corruption).
    Wal(WalError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::SequenceGap { expected, got } => {
                write!(f, "sequence gap: expected seq {expected}, got {got}")
            }
            StreamError::BadDate(d) => write!(f, "bad commit date `{d}` (want YYYY-MM-DD)"),
            StreamError::BadSeq(s) => write!(f, "bad seq {s}: sequence numbers start at 1"),
            StreamError::BadProject(p) => write!(f, "bad project name `{p}`"),
            StreamError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<WalError> for StreamError {
    fn from(e: WalError) -> Self {
        StreamError::Wal(e)
    }
}

/// One project's live state.
#[derive(Debug)]
struct ProjectStream {
    wal: Wal,
    /// The commit chain as `(date, sql)`, mirroring the WAL records.
    commits: Vec<(Date, String)>,
    /// The current pattern label (`None` before the first commit).
    pattern: Option<String>,
}

impl ProjectStream {
    fn from_wal(name: &str, wal: Wal) -> Result<ProjectStream, StreamError> {
        let mut commits = Vec::with_capacity(wal.records().len());
        for rec in wal.records() {
            let date =
                Date::from_str(&rec.date).map_err(|_| StreamError::BadDate(rec.date.clone()))?;
            commits.push((date, rec.payload.clone()));
        }
        let pattern = if commits.is_empty() {
            None
        } else {
            Some(classification_for(name, &commits, wal.chain_crc()).pattern.clone())
        };
        Ok(ProjectStream {
            wal,
            commits,
            pattern,
        })
    }
}

/// The streaming store.
#[derive(Debug)]
pub struct StreamStore {
    root: PathBuf,
    projects: BTreeMap<String, ProjectStream>,
    feed: ChangeFeed,
}

fn valid_project_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        && !name.starts_with('.')
}

impl StreamStore {
    /// Opens (or creates) the store rooted at `root`, replaying every
    /// project directory that holds WAL segments.
    ///
    /// # Errors
    /// I/O failures and non-recoverable WAL corruption.
    pub fn open(root: &Path) -> Result<StreamStore, StreamError> {
        std::fs::create_dir_all(root).map_err(WalError::Io)?;
        let mut store = StreamStore {
            root: root.to_owned(),
            projects: BTreeMap::new(),
            feed: ChangeFeed::new(FEED_CAPACITY),
        };
        let entries = std::fs::read_dir(root).map_err(WalError::Io)?;
        for entry in entries {
            let path = entry.map_err(WalError::Io)?.path();
            if !path.is_dir() {
                continue;
            }
            let name = path
                .file_name()
                .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
            if !valid_project_name(&name) {
                continue;
            }
            let has_wal = std::fs::read_dir(&path)
                .map_err(WalError::Io)?
                .filter_map(Result::ok)
                .any(|e| e.path().extension().is_some_and(|x| x == "wal"));
            if !has_wal {
                continue;
            }
            let wal = Wal::open(&path, &name)?;
            store.feed.resume_past(wal.last_cursor());
            let stream = ProjectStream::from_wal(&name, wal)?;
            store.projects.insert(name, stream);
        }
        Ok(store)
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Appends one commit: durable WAL write (write → fsync → ack), then
    /// live re-classification, then exactly one feed transition event.
    /// Duplicate and out-of-order retries are safe no-ops; gaps are
    /// refused with the expected sequence number.
    ///
    /// # Errors
    /// [`StreamError::SequenceGap`] on a gap, validation errors on bad
    /// input, and [`StreamError::Wal`] when the append could not be made
    /// durable (the commit is then *not* acknowledged and the same `seq`
    /// can be retried).
    pub fn append(
        &mut self,
        project: &str,
        seq: u64,
        date_str: &str,
        sql: &str,
    ) -> Result<Append, StreamError> {
        if !valid_project_name(project) {
            return Err(StreamError::BadProject(project.to_owned()));
        }
        if seq == 0 {
            return Err(StreamError::BadSeq(seq));
        }
        let date = Date::from_str(date_str).map_err(|_| StreamError::BadDate(date_str.to_owned()))?;

        if !self.projects.contains_key(project) {
            let dir = self.root.join(project);
            let wal = Wal::open(&dir, project)?;
            self.feed.resume_past(wal.last_cursor());
            let stream = ProjectStream::from_wal(project, wal)?;
            self.projects.insert(project.to_owned(), stream);
        }
        let cursor = self.feed.peek_cursor();
        let stream = self
            .projects
            .get_mut(project)
            .unwrap_or_else(|| unreachable!("inserted above"));

        let last = stream.wal.last_seq();
        if seq <= last {
            return Ok(Append::Duplicate { seq, last_seq: last });
        }
        if seq != last + 1 {
            return Err(StreamError::SequenceGap {
                expected: last + 1,
                got: seq,
            });
        }

        stream.wal.append(WalRecord {
            seq,
            cursor,
            date: date_str.to_owned(),
            payload: sql.to_owned(),
        })?;
        // Acknowledged: the commit is durable. Everything below is derived
        // state that a replay reconstructs identically.
        stream.commits.push((date, sql.to_owned()));
        let before = stream.pattern.clone();
        let after = classification_for(project, &stream.commits, stream.wal.chain_crc())
            .pattern
            .clone();
        stream.pattern = Some(after.clone());
        self.feed.emit(ChangeEvent {
            cursor,
            project: project.to_owned(),
            seq,
            date: date_str.to_owned(),
            before: before.clone(),
            after: after.clone(),
        });
        Ok(Append::Appended {
            seq,
            cursor,
            before,
            after,
        })
    }

    /// Feed events after `since`, at most `max`.
    pub fn events_since(&self, since: u64, max: usize) -> FeedBatch {
        self.feed.events_since(since, max)
    }

    /// The cursor the next commit will be announced under.
    pub fn next_cursor(&self) -> u64 {
        self.feed.peek_cursor()
    }

    /// Project names with at least one replayed or appended commit.
    pub fn project_names(&self) -> Vec<String> {
        self.projects.keys().cloned().collect()
    }

    /// A project's last acknowledged sequence number (0 when unknown).
    pub fn last_seq(&self, project: &str) -> u64 {
        self.projects.get(project).map_or(0, |s| s.wal.last_seq())
    }

    /// A project's current pattern label.
    pub fn pattern(&self, project: &str) -> Option<String> {
        self.projects.get(project).and_then(|s| s.pattern.clone())
    }

    /// A project's commit chain as `(date, sql)` pairs.
    pub fn commits(&self, project: &str) -> Vec<(Date, String)> {
        self.projects
            .get(project)
            .map_or_else(Vec::new, |s| s.commits.clone())
    }

    /// A project's WAL chain checksum.
    pub fn chain_crc(&self, project: &str) -> Option<u64> {
        self.projects.get(project).map(|s| s.wal.chain_crc())
    }

    /// Re-derives a project's pattern from its commits without the cache —
    /// the batch-rebuild reference the chaos drill compares against.
    pub fn batch_classify(&self, project: &str) -> Option<String> {
        let stream = self.projects.get(project)?;
        if stream.commits.is_empty() {
            return None;
        }
        Some(classify_commits(project, &stream.commits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("schemachron-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn appends_classify_and_announce_transitions() {
        let _shared = crate::testlock::shared();
        let root = tmp("basic");
        let mut store = StreamStore::open(&root).unwrap();
        let first = store
            .append("proj-a", 1, "2020-01-10", "CREATE TABLE t (a INT, b INT);")
            .unwrap();
        let Append::Appended { seq, cursor, before, after } = first else {
            panic!("expected an append, got {first:?}");
        };
        assert_eq!((seq, cursor), (1, 1));
        assert_eq!(before, None);
        assert!(!after.is_empty());
        let second = store
            .append("proj-a", 2, "2021-06-10", "ALTER TABLE t ADD COLUMN c INT;")
            .unwrap();
        let Append::Appended { before, .. } = &second else {
            panic!("expected an append, got {second:?}");
        };
        assert_eq!(before.as_deref(), Some(after.as_str()));
        let batch = store.events_since(0, 10);
        assert_eq!(batch.events.len(), 2);
        assert_eq!(batch.events[1].cursor, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicates_are_noops_and_gaps_are_refused() {
        let _shared = crate::testlock::shared();
        let root = tmp("idem");
        let mut store = StreamStore::open(&root).unwrap();
        store
            .append("proj-b", 1, "2020-01-10", "CREATE TABLE t (a INT);")
            .unwrap();
        // Retried and reordered sequence numbers are acknowledged no-ops.
        for retry in [1, 1] {
            let dup = store
                .append("proj-b", retry, "2020-01-10", "CREATE TABLE t (a INT);")
                .unwrap();
            assert_eq!(dup, Append::Duplicate { seq: retry, last_seq: 1 });
        }
        assert_eq!(store.events_since(0, 10).events.len(), 1, "no re-emission");
        // A gap names the expected sequence.
        match store.append("proj-b", 5, "2020-02-10", "DROP TABLE t;") {
            Err(StreamError::SequenceGap { expected: 2, got: 5 }) => {}
            other => panic!("expected a gap refusal, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restart_replays_state_and_resumes_cursors() {
        let _shared = crate::testlock::shared();
        let root = tmp("restart");
        let mut store = StreamStore::open(&root).unwrap();
        store
            .append("proj-c", 1, "2020-01-10", "CREATE TABLE t (a INT);")
            .unwrap();
        store
            .append("proj-c", 2, "2020-05-10", "ALTER TABLE t ADD COLUMN b INT;")
            .unwrap();
        let pattern = store.pattern("proj-c");
        drop(store);
        let mut reopened = StreamStore::open(&root).unwrap();
        assert_eq!(reopened.last_seq("proj-c"), 2);
        assert_eq!(reopened.pattern("proj-c"), pattern);
        assert_eq!(reopened.next_cursor(), 3, "cursors resume past the WAL");
        let third = reopened
            .append("proj-c", 3, "2021-01-10", "ALTER TABLE t ADD COLUMN c INT;")
            .unwrap();
        let Append::Appended { cursor, .. } = third else {
            panic!("expected an append, got {third:?}");
        };
        assert_eq!(cursor, 3);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn live_classification_agrees_with_batch_rebuild() {
        let _shared = crate::testlock::shared();
        let root = tmp("agree");
        let mut store = StreamStore::open(&root).unwrap();
        let commits = [
            ("2015-02-10", "CREATE TABLE users (id INT, name TEXT);"),
            ("2015-03-10", "ALTER TABLE users ADD COLUMN email TEXT;"),
            ("2018-11-10", "ALTER TABLE users DROP COLUMN name;"),
        ];
        for (i, (date, sql)) in commits.iter().enumerate() {
            store.append("proj-d", (i + 1) as u64, date, sql).unwrap();
        }
        assert_eq!(store.pattern("proj-d"), store.batch_classify("proj-d"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
