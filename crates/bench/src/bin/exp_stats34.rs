//! Regenerates the §3.4 statistical properties.

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::stats34(&ctx);
    emit(
        "exp_stats34",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
