//! The migration-safety pass: surfaces the abstract interpreter's
//! data-loss findings as lint notes.
//!
//! The heavy lifting lives in `schemachron-safety` — this pass runs the
//! analyzer over the project's materialized DDL history and translates its
//! per-op lattice verdicts into the canonical diagnostics pipeline:
//!
//! * **R010** (Info) — an op the analyzer classifies `lossy`: a drop whose
//!   destroyed rows or values have no inverse.
//! * **R011** (Info) — an op classified `recoverable`: invertible only
//!   given provenance (a narrowing cast, a rename-shaped column move, a
//!   NOT NULL tightening).
//!
//! Both are informational: the generated corpus legitimately drops tables
//! and columns, and the paper's whole point is measuring that churn.
//! `Lossless` ops are silent. Findings anchor on the `script:line` of the
//! causing statement when the locator finds one, falling back to line 1 of
//! the transition's script.

use schemachron_history::Date;
use schemachron_safety::{analyze, Safety};

use crate::diag::{Diagnostic, Report};

/// Runs the safety analyzer over a project's dated DDL commits and emits
/// R010/R011 notes for every non-lossless op.
pub fn lint_safety(project: &str, commits: &[(Date, String)], report: &mut Report) {
    let analysis = analyze(project, commits);
    for t in &analysis.transitions {
        for op in &t.ops {
            let (code, label) = match op.safety {
                Safety::Lossless => continue,
                Safety::Recoverable => ("R011", "provenance-dependent"),
                Safety::Lossy => ("R010", "lossy"),
            };
            let mut message = format!("{label} op `{}`: {}", op.op, op.reason);
            if let Some(inverse) = &op.inverse {
                message.push_str(&format!(" (inverse: {})", inverse.join("; ")));
            }
            report.push(
                Diagnostic::new(code, project, message).at(&t.script, op.line.unwrap_or(1)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn non_lossless_ops_surface_with_spans_and_never_fail() {
        let commits = vec![
            (
                Date::new(2020, 1, 1),
                "CREATE TABLE t (a INT, b VARCHAR(64));".to_owned(),
            ),
            (
                Date::new(2020, 2, 1),
                "ALTER TABLE t MODIFY COLUMN b VARCHAR(16);\nALTER TABLE t DROP COLUMN a;"
                    .to_owned(),
            ),
        ];
        let mut report = Report::new();
        lint_safety("p", &commits, &mut report);
        report.sort();
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        // Canonical order is by line first: the narrowing cast (line 1)
        // precedes the lossy drop (line 2).
        assert_eq!(codes, ["R011", "R010"], "{}", report.render_human());
        for d in report.diagnostics() {
            assert_eq!(d.severity, Severity::Info);
            let span = d.span.as_ref().expect("safety findings carry spans");
            assert_eq!(span.script, "0002_2020-02-01.sql");
        }
        assert!(!report.failed(true), "safety notes never fail a run");
    }

    #[test]
    fn lossless_histories_stay_silent() {
        let commits = vec![(
            Date::new(2020, 1, 1),
            "CREATE TABLE t (a INT);".to_owned(),
        )];
        let mut report = Report::new();
        lint_safety("p", &commits, &mut report);
        assert!(report.diagnostics().is_empty(), "{}", report.render_human());
    }
}
