//! The dialect-neutral core: inverting the diff engine into an ordered
//! batch of logical migration operations.
//!
//! [`diff_ops`] compares two [`Schema`] versions and emits [`DiffOp`]s with
//! full payloads (target table definitions, before/after attribute states),
//! ordered so a faithful rendering replays cleanly under the flow lint's
//! symbolic execution: new tables are created in foreign-key dependency
//! order, surviving tables are altered next (column changes before column
//! drops, key changes after), and removed tables are dropped last with
//! referencing tables dropped before their targets.
//!
//! The ops are *logical*: nothing here knows SQL syntax. Each [`Dialect`]
//! impl renders an op into its own statement forms — or refuses it with a
//! typed `UnsupportedDiffOp`, which the planner turns into a whole-table
//! rebuild.
//!
//! [`Dialect`]: crate::Dialect

use std::collections::BTreeSet;
use std::fmt;

use schemachron_model::{Attribute, ForeignKey, Name, Schema, Table, View};

/// One logical migration operation, with the full payload a renderer needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffOp {
    /// Create a table with its complete target definition.
    CreateTable(Table),
    /// Drop a table.
    DropTable(Name),
    /// Append a column to an existing table.
    AddColumn {
        /// The table the column joins.
        table: Name,
        /// The full target attribute definition.
        attr: Attribute,
    },
    /// Remove a column from an existing table.
    DropColumn {
        /// The table losing the column.
        table: Name,
        /// The column to remove.
        column: Name,
    },
    /// Redefine an existing column in place (type, nullability, default,
    /// auto-increment). Carries both states so dialects can render either a
    /// single redefinition (MySQL `MODIFY COLUMN`) or a minimal sequence of
    /// per-facet statements (PostgreSQL `ALTER COLUMN ...`).
    AlterColumn {
        /// The owning table.
        table: Name,
        /// The attribute as it is before the change.
        from: Attribute,
        /// The attribute as it must be after the change.
        to: Attribute,
    },
    /// Replace a table's primary key (empty `to` = drop it).
    SetPrimaryKey {
        /// The owning table.
        table: Name,
        /// Key columns before the change (empty = none).
        from: Vec<Name>,
        /// Key columns after the change (empty = none).
        to: Vec<Name>,
    },
    /// Add a foreign-key constraint to an existing table.
    AddForeignKey {
        /// The referencing table.
        table: Name,
        /// The constraint to add.
        fk: ForeignKey,
    },
    /// Remove a foreign-key constraint from an existing table.
    DropForeignKey {
        /// The referencing table.
        table: Name,
        /// The constraint to remove.
        fk: ForeignKey,
    },
    /// Add a `UNIQUE` constraint over the given columns.
    AddUnique {
        /// The owning table.
        table: Name,
        /// The constrained columns.
        columns: Vec<Name>,
    },
    /// Remove a `UNIQUE` constraint over the given columns.
    DropUnique {
        /// The owning table.
        table: Name,
        /// The constrained columns.
        columns: Vec<Name>,
    },
    /// Create a view with its full definition.
    CreateView(View),
    /// Drop a view.
    DropView(Name),
}

impl DiffOp {
    /// A compact, deterministic descriptor of the op — the text echoed in
    /// typed `UnsupportedDiffOp` errors, `422` bodies and plan JSON.
    pub fn describe(&self) -> String {
        match self {
            DiffOp::CreateTable(t) => format!("create_table {}", t.name.as_str()),
            DiffOp::DropTable(n) => format!("drop_table {}", n.as_str()),
            DiffOp::AddColumn { table, attr } => {
                format!("add_column {}.{}", table.as_str(), attr.name.as_str())
            }
            DiffOp::DropColumn { table, column } => {
                format!("drop_column {}.{}", table.as_str(), column.as_str())
            }
            DiffOp::AlterColumn { table, from, to } => format!(
                "alter_column {}.{} ({} -> {})",
                table.as_str(),
                to.name.as_str(),
                from.data_type,
                to.data_type,
            ),
            DiffOp::SetPrimaryKey { table, to, .. } if to.is_empty() => {
                format!("drop_primary_key {}", table.as_str())
            }
            DiffOp::SetPrimaryKey { table, to, .. } => format!(
                "set_primary_key {} ({})",
                table.as_str(),
                join_names(to)
            ),
            DiffOp::AddForeignKey { table, fk } => format!(
                "add_foreign_key {} -> {}",
                table.as_str(),
                fk.ref_table.as_str()
            ),
            DiffOp::DropForeignKey { table, fk } => format!(
                "drop_foreign_key {} -> {}",
                table.as_str(),
                fk.ref_table.as_str()
            ),
            DiffOp::AddUnique { table, columns } => {
                format!("add_unique {} ({})", table.as_str(), join_names(columns))
            }
            DiffOp::DropUnique { table, columns } => {
                format!("drop_unique {} ({})", table.as_str(), join_names(columns))
            }
            DiffOp::CreateView(v) => format!("create_view {}", v.name.as_str()),
            DiffOp::DropView(n) => format!("drop_view {}", n.as_str()),
        }
    }

    /// Whether executing the op destroys stored rows or values with no
    /// schema-level inverse: dropping a table loses its rows, dropping a
    /// column loses its values. Everything else — including `DROP VIEW`,
    /// since views hold no rows — leaves data reachable.
    pub fn destroys_data(&self) -> bool {
        matches!(self, DiffOp::DropTable(_) | DiffOp::DropColumn { .. })
    }
}

impl fmt::Display for DiffOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

fn join_names(names: &[Name]) -> String {
    names
        .iter()
        .map(Name::as_str)
        .collect::<Vec<_>>()
        .join(", ")
}

/// One renderable group of ops. The planner's unit of fallback: when a
/// dialect refuses any op in a unit that has a `rebuild` target, the whole
/// unit is replaced by `DROP TABLE` + `CREATE TABLE <target definition>`.
#[derive(Clone, Debug)]
pub(crate) struct PlanUnit {
    /// The table this unit belongs to, when it is table-scoped.
    pub table: Option<Name>,
    /// The ops, in render order.
    pub ops: Vec<DiffOp>,
    /// The full target table definition a rebuild may substitute; only
    /// surviving altered tables carry one.
    pub rebuild: Option<Table>,
}

impl PlanUnit {
    fn table_scoped(table: Name, ops: Vec<DiffOp>, rebuild: Option<Table>) -> Self {
        PlanUnit {
            table: Some(table),
            ops,
            rebuild,
        }
    }

    fn free(ops: Vec<DiffOp>) -> Self {
        PlanUnit {
            table: None,
            ops,
            rebuild: None,
        }
    }
}

/// Compares two schema versions and returns the ordered migration op batch.
///
/// The flat public form of the planner's internal unit list; an empty
/// result means the schemas are logically identical.
pub fn diff_ops(from: &Schema, to: &Schema) -> Vec<DiffOp> {
    diff_units(from, to)
        .into_iter()
        .flat_map(|u| u.ops)
        .collect()
}

/// The grouped form used by the planner (see [`PlanUnit`]).
pub(crate) fn diff_units(from: &Schema, to: &Schema) -> Vec<PlanUnit> {
    let mut units = Vec::new();

    // 1. Views that vanish or change definition are dropped up front (a
    //    changed view is re-created at the end).
    let mut view_drops = Vec::new();
    for v in from.views() {
        match to.view(v.name.as_str()) {
            None => view_drops.push(DiffOp::DropView(v.name.clone())),
            Some(nv) if nv.definition != v.definition => {
                view_drops.push(DiffOp::DropView(v.name.clone()));
            }
            Some(_) => {}
        }
    }
    if !view_drops.is_empty() {
        units.push(PlanUnit::free(view_drops));
    }

    // 2. New tables, created in foreign-key dependency order. Cycles are
    //    broken by stripping the offending constraints into deferred
    //    `ADD CONSTRAINT` ops emitted after every creation.
    let added_names: BTreeSet<Name> = to
        .tables()
        .filter(|t| from.table_of(&t.name).is_none())
        .map(|t| t.name.clone())
        .collect();
    let mut remaining: Vec<Table> = to
        .tables()
        .filter(|t| added_names.contains(&t.name))
        .cloned()
        .collect();
    let mut created: BTreeSet<Name> = BTreeSet::new();
    let mut deferred_fks = Vec::new();
    while !remaining.is_empty() {
        let satisfied = |t: &Table| {
            t.foreign_keys.iter().all(|fk| {
                fk.ref_table == t.name
                    || !added_names.contains(&fk.ref_table)
                    || created.contains(&fk.ref_table)
            })
        };
        let idx = remaining.iter().position(satisfied).unwrap_or(0);
        let mut t = remaining.remove(idx);
        if !satisfied(&t) {
            // Cycle: keep the satisfiable constraints inline, defer the rest.
            let (keep, defer): (Vec<ForeignKey>, Vec<ForeignKey>) =
                t.foreign_keys.drain(..).partition(|fk| {
                    fk.ref_table == t.name
                        || !added_names.contains(&fk.ref_table)
                        || created.contains(&fk.ref_table)
                });
            t.foreign_keys = keep;
            for fk in defer {
                deferred_fks.push(DiffOp::AddForeignKey {
                    table: t.name.clone(),
                    fk,
                });
            }
        }
        created.insert(t.name.clone());
        units.push(PlanUnit::table_scoped(
            t.name.clone(),
            vec![DiffOp::CreateTable(t)],
            None,
        ));
    }
    if !deferred_fks.is_empty() {
        units.push(PlanUnit::free(deferred_fks));
    }

    // 3. Surviving tables, altered in name order.
    for t_new in to.tables() {
        let Some(t_old) = from.table_of(&t_new.name) else {
            continue;
        };
        let ops = survivor_ops(t_old, t_new);
        if !ops.is_empty() {
            units.push(PlanUnit::table_scoped(
                t_new.name.clone(),
                ops,
                Some(t_new.clone()),
            ));
        }
    }

    // 4. Removed tables, referencing tables first so no remaining table
    //    holds a constraint into a dropped one.
    let dropped: Vec<&Table> = from
        .tables()
        .filter(|t| to.table_of(&t.name).is_none())
        .collect();
    let mut pending: Vec<&Table> = dropped.clone();
    while !pending.is_empty() {
        let referenced_by_pending = |name: &Name| {
            pending
                .iter()
                .any(|u| u.name != *name && u.foreign_keys.iter().any(|fk| fk.ref_table == *name))
        };
        let idx = pending
            .iter()
            .position(|t| !referenced_by_pending(&t.name))
            .unwrap_or(0);
        let t = pending.remove(idx);
        units.push(PlanUnit::table_scoped(
            t.name.clone(),
            vec![DiffOp::DropTable(t.name.clone())],
            None,
        ));
    }

    // 5. Views that are new or changed are (re-)created last.
    let mut view_adds = Vec::new();
    for v in to.views() {
        match from.view(v.name.as_str()) {
            Some(old) if old.definition == v.definition => {}
            _ => view_adds.push(DiffOp::CreateView(v.clone())),
        }
    }
    if !view_adds.is_empty() {
        units.push(PlanUnit::free(view_adds));
    }

    units
}

/// The op sequence that evolves one surviving table: constraint drops,
/// in-place column changes, column additions (in target order), column
/// drops, then key updates. The sequence is computed against the state a
/// replay actually passes through — e.g. dropping a column already scrubs
/// its key participation, so no separate ops are emitted for that.
fn survivor_ops(old: &Table, new: &Table) -> Vec<DiffOp> {
    let mut ops = Vec::new();
    let table = new.name.clone();
    let dropped: BTreeSet<&Name> = old
        .attributes()
        .iter()
        .map(|a| &a.name)
        .filter(|n| new.attribute_of(n).is_none())
        .collect();

    // Foreign keys that disappear while their columns survive. (A constraint
    // whose column is dropped is scrubbed by the column drop itself.)
    for fk in &old.foreign_keys {
        if fk.columns.iter().any(|c| dropped.contains(c)) {
            continue;
        }
        if !new.foreign_keys.contains(fk) {
            ops.push(DiffOp::DropForeignKey {
                table: table.clone(),
                fk: fk.clone(),
            });
        }
    }

    // Unique constraints: compare against the post-column-drop state (a
    // column drop removes the column from its uniques, keeping non-empty
    // remainders).
    let replayed_uniques: Vec<Vec<Name>> = old
        .uniques
        .iter()
        .map(|u| {
            u.iter()
                .filter(|c| !dropped.contains(c))
                .cloned()
                .collect::<Vec<Name>>()
        })
        .filter(|u| !u.is_empty())
        .collect();
    for u in &replayed_uniques {
        if !new.uniques.contains(u) {
            ops.push(DiffOp::DropUnique {
                table: table.clone(),
                columns: u.clone(),
            });
        }
    }

    // In-place column changes, in the old declaration order.
    for a_old in old.attributes() {
        if let Some(a_new) = new.attribute_of(&a_old.name) {
            if a_old != a_new {
                ops.push(DiffOp::AlterColumn {
                    table: table.clone(),
                    from: a_old.clone(),
                    to: a_new.clone(),
                });
            }
        }
    }

    // Additions, in the target declaration order.
    for a_new in new.attributes() {
        if old.attribute_of(&a_new.name).is_none() {
            ops.push(DiffOp::AddColumn {
                table: table.clone(),
                attr: a_new.clone(),
            });
        }
    }

    // Removals, in the old declaration order.
    for a_old in old.attributes() {
        if dropped.contains(&a_old.name) {
            ops.push(DiffOp::DropColumn {
                table: table.clone(),
                column: a_old.name.clone(),
            });
        }
    }

    // Primary key, compared against the post-column-drop state.
    let replayed_pk: Vec<Name> = old
        .primary_key
        .iter()
        .filter(|c| !dropped.contains(c))
        .cloned()
        .collect();
    if replayed_pk != new.primary_key {
        ops.push(DiffOp::SetPrimaryKey {
            table: table.clone(),
            from: replayed_pk,
            to: new.primary_key.clone(),
        });
    }

    // New constraints.
    for fk in &new.foreign_keys {
        if !old.foreign_keys.contains(fk) {
            ops.push(DiffOp::AddForeignKey {
                table: table.clone(),
                fk: fk.clone(),
            });
        }
    }
    for u in &new.uniques {
        if !replayed_uniques.contains(u) {
            ops.push(DiffOp::AddUnique {
                table: table.clone(),
                columns: u.clone(),
            });
        }
    }

    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_model::DataType;

    fn table(name: &str, cols: &[(&str, &str)]) -> Table {
        let mut t = Table::new(name);
        for (c, ty) in cols {
            t.push_attribute(Attribute::new(*c, DataType::named(*ty)));
        }
        t
    }

    fn schema_of(tables: Vec<Table>) -> Schema {
        let mut s = Schema::new();
        for t in tables {
            s.insert_table(t);
        }
        s
    }

    #[test]
    fn identical_schemas_emit_no_ops() {
        let s = schema_of(vec![table("t", &[("a", "int")])]);
        assert!(diff_ops(&s, &s.clone()).is_empty());
    }

    #[test]
    fn new_tables_are_created_in_fk_dependency_order() {
        let from = Schema::new();
        let mut to = Schema::new();
        // "aaa" references "zzz": despite name order, zzz must come first.
        let mut aaa = table("aaa", &[("id", "int"), ("z_id", "int")]);
        aaa.foreign_keys.push(ForeignKey {
            name: None,
            columns: vec![Name::from("z_id")],
            ref_table: Name::from("zzz"),
            ref_columns: vec![Name::from("id")],
        });
        to.insert_table(aaa);
        to.insert_table(table("zzz", &[("id", "int")]));
        let ops = diff_ops(&from, &to);
        let order: Vec<String> = ops.iter().map(DiffOp::describe).collect();
        assert_eq!(order, vec!["create_table zzz", "create_table aaa"]);
    }

    #[test]
    fn fk_cycles_are_broken_with_deferred_constraints() {
        let from = Schema::new();
        let mut to = Schema::new();
        for (name, other) in [("a", "b"), ("b", "a")] {
            let mut t = table(name, &[("id", "int"), ("ref", "int")]);
            t.foreign_keys.push(ForeignKey {
                name: None,
                columns: vec![Name::from("ref")],
                ref_table: Name::from(other),
                ref_columns: vec![Name::from("id")],
            });
            to.insert_table(t);
        }
        let ops = diff_ops(&from, &to);
        let descs: Vec<String> = ops.iter().map(DiffOp::describe).collect();
        assert_eq!(
            descs,
            vec![
                "create_table a",
                "create_table b",
                "add_foreign_key a -> b"
            ],
            "one edge of the cycle is deferred past both creations"
        );
    }

    #[test]
    fn referencing_tables_drop_before_their_targets() {
        let mut from = Schema::new();
        from.insert_table(table("parent", &[("id", "int")]));
        let mut child = table("child", &[("p", "int")]);
        child.foreign_keys.push(ForeignKey {
            name: None,
            columns: vec![Name::from("p")],
            ref_table: Name::from("parent"),
            ref_columns: vec![],
        });
        from.insert_table(child);
        let ops = diff_ops(&from, &Schema::new());
        let descs: Vec<String> = ops.iter().map(DiffOp::describe).collect();
        assert_eq!(descs, vec!["drop_table child", "drop_table parent"]);
    }

    #[test]
    fn survivor_changes_order_alters_then_adds_then_drops_then_keys() {
        let mut old = table("t", &[("a", "int"), ("gone", "int")]);
        old.primary_key = vec![Name::from("a")];
        let mut new = table("t", &[("a", "bigint"), ("fresh", "text")]);
        new.primary_key = vec![Name::from("a"), Name::from("fresh")];
        let from = schema_of(vec![old]);
        let to = schema_of(vec![new]);
        let descs: Vec<String> = diff_ops(&from, &to).iter().map(DiffOp::describe).collect();
        assert_eq!(
            descs,
            vec![
                "alter_column t.a (int -> bigint)",
                "add_column t.fresh",
                "drop_column t.gone",
                "set_primary_key t (a, fresh)",
            ]
        );
    }

    #[test]
    fn dropping_a_pk_column_emits_no_redundant_key_op() {
        let mut old = table("t", &[("a", "int"), ("b", "int")]);
        old.primary_key = vec![Name::from("a"), Name::from("b")];
        let mut new = table("t", &[("a", "int")]);
        new.primary_key = vec![Name::from("a")];
        let descs: Vec<String> = diff_ops(&schema_of(vec![old]), &schema_of(vec![new]))
            .iter()
            .map(DiffOp::describe)
            .collect();
        assert_eq!(
            descs,
            vec!["drop_column t.b"],
            "the column drop already shrinks the key during replay"
        );
    }

    #[test]
    fn view_changes_drop_then_recreate() {
        let mut from = Schema::new();
        from.insert_view(View {
            name: Name::from("v"),
            definition: "SELECT 1".into(),
        });
        let mut to = Schema::new();
        to.insert_view(View {
            name: Name::from("v"),
            definition: "SELECT 2".into(),
        });
        let descs: Vec<String> = diff_ops(&from, &to).iter().map(DiffOp::describe).collect();
        assert_eq!(descs, vec!["drop_view v", "create_view v"]);
    }
}
