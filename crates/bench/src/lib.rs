#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-bench
//!
//! The experiment harness: one module per **table and figure** of the EDBT
//! 2025 paper, each regenerating the published artifact from the calibrated
//! corpus through the full measurement pipeline.
//!
//! Every experiment is a library function returning a serializable result
//! with a `render()` method; the `exp_*` binaries are thin wrappers that
//! print the rendering (and the Criterion benches time the computations).
//!
//! | id  | paper artifact | function |
//! |-----|----------------|----------|
//! | T1  | Table 1 — quantization label counts | [`experiments::table1`] |
//! | T2  | Table 2 — exceptions & overlaps | [`experiments::table2`] |
//! | F1  | Fig. 1 — nomenclature chart | [`experiments::figure1`] |
//! | F2  | Fig. 2 — Spearman correlations | [`experiments::figure2`] |
//! | F3  | Fig. 3 — example pattern lines | [`experiments::figure3`] |
//! | F4  | Fig. 4 — pattern characteristics | [`experiments::figure4`] |
//! | F5  | Fig. 5 — decision-tree classification | [`experiments::figure5`] |
//! | F6  | Fig. 6 — label-space coverage | [`experiments::figure6`] |
//! | F7  | Fig. 7 — P(pattern \| birth month) | [`experiments::figure7`] |
//! | S34 | §3.4 — statistical properties | [`experiments::stats34`] |
//! | S52 | §5.2 — cohesion (MDC) | [`experiments::stats52`] |
//! | S61 | §6.1 — activity medians | [`experiments::stats61`] |
//! | S62 | §6.2 — rigidity probabilities | [`experiments::stats62`] |
//! | S63 | §6.3 — change-type mixture | [`experiments::stats63`] |

pub mod context;
pub mod experiments;
pub mod report;

/// The default corpus seed used by all experiments (and the paper-facing
/// numbers in EXPERIMENTS.md).
pub const DEFAULT_SEED: u64 = 42;

use std::io::Write as _;

/// Prints an experiment's rendering and persists both the rendering and a
/// JSON form under `target/experiments/`.
pub fn emit(id: &str, rendered: &str, json: &serde_json::Value) {
    println!("{rendered}");
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{id}.txt")), rendered);
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{id}.json"))) {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(json).unwrap_or_default()
            );
        }
    }
}
