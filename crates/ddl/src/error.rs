//! Typed parse errors with span context.
//!
//! The tolerant parser never fails a whole script, but each unparsable
//! statement produces one [`DdlError`] internally before being downgraded to
//! a [`crate::Diagnostic`]. The typed form carries the failure line and a
//! structured kind, so staged pipelines and the CLI can react to *what* went
//! wrong instead of string-matching messages.

use std::error::Error;
use std::fmt;

/// What went wrong while parsing a DDL statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdlErrorKind {
    /// A specific symbol or keyword was required but something else was found.
    Expected {
        /// The symbol/keyword the grammar required (e.g. `(` or `KEY`).
        what: String,
        /// A description of what was found instead (`` `foo` `` or
        /// `end of input`).
        found: String,
    },
    /// An identifier was required but something else was found.
    ExpectedIdentifier {
        /// A description of what was found instead.
        found: String,
    },
    /// A value-like expression (literal, function call, …) was required.
    ExpectedValue {
        /// A description of what was found instead.
        found: String,
    },
    /// A `( … )` group was opened but never closed.
    UnterminatedParens,
    /// The statement had no tokens at all.
    EmptyStatement,
}

impl fmt::Display for DdlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdlErrorKind::Expected { what, found } => {
                write!(f, "expected `{what}`, found {found}")
            }
            DdlErrorKind::ExpectedIdentifier { found } => {
                write!(f, "expected identifier, found {found}")
            }
            DdlErrorKind::ExpectedValue { found } => {
                write!(f, "expected value, found {found}")
            }
            DdlErrorKind::UnterminatedParens => f.write_str("unterminated parenthesized expression"),
            DdlErrorKind::EmptyStatement => f.write_str("empty statement"),
        }
    }
}

/// A typed DDL parse error: a [`DdlErrorKind`] plus the 1-based source line
/// where parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DdlError {
    /// The structured failure kind.
    pub kind: DdlErrorKind,
    /// 1-based line of the token that triggered the failure.
    pub line: u32,
}

impl DdlError {
    /// Creates an error at a line.
    pub fn new(kind: DdlErrorKind, line: u32) -> Self {
        DdlError { kind, line }
    }

    /// The message without the line prefix — the exact text the tolerant
    /// parser has always put into its diagnostics.
    pub fn message(&self) -> String {
        self.kind.to_string()
    }
}

impl fmt::Display for DdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl Error for DdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_diagnostic_text() {
        let e = DdlError::new(
            DdlErrorKind::Expected {
                what: "(".into(),
                found: "`;`".into(),
            },
            3,
        );
        assert_eq!(e.message(), "expected `(`, found `;`");
        assert_eq!(e.to_string(), "line 3: expected `(`, found `;`");
        assert_eq!(
            DdlErrorKind::ExpectedIdentifier {
                found: "end of input".into()
            }
            .to_string(),
            "expected identifier, found end of input"
        );
        assert_eq!(
            DdlErrorKind::UnterminatedParens.to_string(),
            "unterminated parenthesized expression"
        );
        assert_eq!(DdlErrorKind::EmptyStatement.to_string(), "empty statement");
    }
}
