//! `schemachron append` and `schemachron watch` — the CLI surface of the
//! crash-safe streaming store.
//!
//! `append` makes one commit durable (WAL write + fsync before the ack)
//! and prints the acknowledgement; with `--format json` the body is
//! byte-identical to the `POST /project/{id}/commit` answer for the same
//! commit — one renderer, two transports. `watch` polls a directory of
//! dated `.sql` files (`NNNN_YYYY-MM-DD.sql`, the `analyze` ingestion
//! format) and re-ingests new files into the store with debouncing (a
//! file still being written is deferred to the next scan) and bounded
//! retries of appends that failed to become durable.

use std::io::Write;
use std::path::{Path, PathBuf};

use schemachron_fault as fault;
use schemachron_stream::{render, Append, StreamError, StreamStore};

use crate::{flag, opt_value, positional, CliError, CliResult};

/// How many times `watch` retries an append that failed to become durable.
/// Each retry re-rolls the deterministic fault plan on a fresh attempt,
/// mirroring the chaos drill's bounded-retry discipline.
const WATCH_RETRIES: u32 = 3;

/// Default `watch` poll interval in milliseconds.
const WATCH_INTERVAL_MS: u64 = 500;

fn wal_dir(argv: &[&str], cmd: &str) -> Result<PathBuf, CliError> {
    match opt_value(argv, "--wal-dir") {
        Some(dir) => Ok(PathBuf::from(dir)),
        None => Err(CliError::new(format!(
            "{cmd}: missing --wal-dir <dir> (the streaming store root)"
        ))),
    }
}

fn open_store(dir: &Path, cmd: &str) -> Result<StreamStore, CliError> {
    StreamStore::open(dir).map_err(|e| {
        CliError::new(format!(
            "{cmd}: cannot open stream store {}: {e}",
            dir.display()
        ))
    })
}

/// `schemachron append <project> --seq N --date YYYY-MM-DD
/// (--sql DDL | --file F) --wal-dir DIR [--format json]`.
pub fn run_append(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let project =
        positional(&argv).ok_or_else(|| CliError::new("append: missing <project>"))?;
    let seq: u64 = match opt_value(&argv, "--seq") {
        Some(v) => v.parse().map_err(|_| {
            CliError::new(format!("append: invalid --seq value `{v}` (expected an integer)"))
        })?,
        None => return Err(CliError::new("append: missing --seq <n> (first commit is 1)")),
    };
    let Some(date) = opt_value(&argv, "--date") else {
        return Err(CliError::new("append: missing --date YYYY-MM-DD"));
    };
    let sql = match (opt_value(&argv, "--sql"), opt_value(&argv, "--file")) {
        (Some(s), None) => s.to_owned(),
        (None, Some(f)) => std::fs::read_to_string(f)
            .map_err(|e| CliError::new(format!("append: cannot read {f}: {e}")))?,
        _ => {
            return Err(CliError::new(
                "append: pass exactly one of --sql <ddl> or --file <path>",
            ))
        }
    };
    let json = match opt_value(&argv, "--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(CliError::new(format!(
                "append: unknown --format `{other}` (expected human or json)"
            )))
        }
    };
    let dir = wal_dir(&argv, "append")?;
    let mut store = open_store(&dir, "append")?;
    match store.append(project, seq, date, &sql) {
        Ok(outcome) => {
            if json {
                // The same renderer the serve route answers with: the
                // printed body is byte-identical to the HTTP ack.
                let body = serde_json::to_string_pretty(&render::ack_json(project, &outcome))
                    .unwrap_or_else(|_| "{}".to_owned());
                writeln!(out, "{body}")?;
            } else {
                match &outcome {
                    Append::Appended {
                        seq,
                        cursor,
                        before,
                        after,
                    } => writeln!(
                        out,
                        "{project} seq {seq} appended (cursor {cursor}): {} -> {after}",
                        before.as_deref().unwrap_or("(new)")
                    )?,
                    Append::Duplicate { seq, last_seq } => writeln!(
                        out,
                        "{project} seq {seq} already acknowledged (last seq {last_seq}); no-op"
                    )?,
                }
            }
            Ok(())
        }
        Err(StreamError::SequenceGap { expected, got }) => Err(CliError::new(format!(
            "append: sequence gap for {project}: expected seq {expected}, got {got}"
        ))),
        Err(e) => Err(CliError::new(format!("append: {e}"))),
    }
}

/// `schemachron watch --dir <src> --wal-dir DIR [--project NAME]
/// [--interval-ms N] [--once]`.
pub fn run_watch(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let Some(src) = opt_value(&argv, "--dir") else {
        return Err(CliError::new(
            "watch: missing --dir <dir> (the directory of dated .sql files)",
        ));
    };
    let src = PathBuf::from(src);
    let project = match opt_value(&argv, "--project") {
        Some(name) => name.to_owned(),
        None => src
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
    };
    if project.is_empty() {
        return Err(CliError::new(
            "watch: cannot derive a project name from --dir; pass --project <name>",
        ));
    }
    let interval = match opt_value(&argv, "--interval-ms") {
        None => WATCH_INTERVAL_MS,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            _ => {
                return Err(CliError::new(format!(
                    "watch: invalid --interval-ms value `{v}` (expected a positive integer)"
                )))
            }
        },
    };
    let once = flag(&argv, "--once");
    let dir = wal_dir(&argv, "watch")?;
    let mut store = open_store(&dir, "watch")?;
    loop {
        let appended = scan_once(&mut store, &src, &project, out)?;
        if once {
            writeln!(
                out,
                "watch: {project} at seq {}, pattern {}",
                store.last_seq(&project),
                store.pattern(&project).unwrap_or_else(|| "(none)".to_owned())
            )?;
            return Ok(());
        }
        if appended == 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval));
        }
    }
}

/// The `YYYY-MM-DD` a dated history file carries, if its name matches the
/// `NNNN_YYYY-MM-DD.sql` ingestion format.
fn dated_sql(name: &str) -> Option<String> {
    let stem = name.strip_suffix(".sql")?;
    let (_, date) = stem.split_once('_')?;
    let b = date.as_bytes();
    let dashes_ok = b.len() == 10 && b[4] == b'-' && b[7] == b'-';
    let digits_ok = b
        .iter()
        .enumerate()
        .all(|(i, c)| i == 4 || i == 7 || c.is_ascii_digit());
    (dashes_ok && digits_ok).then(|| date.to_owned())
}

/// One poll pass: enumerate the dated files in order, append every file
/// past the store's last acknowledged sequence, and return how many landed.
/// A file that changes while being read is deferred to the next scan.
fn scan_once(
    store: &mut StreamStore,
    src: &Path,
    project: &str,
    out: &mut dyn Write,
) -> Result<usize, CliError> {
    let entries = std::fs::read_dir(src)
        .map_err(|e| CliError::new(format!("watch: cannot read {}: {e}", src.display())))?;
    let mut files: Vec<(String, String, PathBuf)> = entries
        .filter_map(Result::ok)
        .filter_map(|e| {
            let path = e.path();
            let name = path.file_name()?.to_str()?.to_owned();
            let date = dated_sql(&name)?;
            Some((name, date, path))
        })
        .collect();
    files.sort();
    let last = store.last_seq(project);
    let mut appended = 0;
    for (i, (name, date, path)) in files.iter().enumerate() {
        let seq = (i + 1) as u64;
        if seq <= last {
            continue;
        }
        // Debounce: a file whose size changes across the read is mid-write;
        // stop here and pick it (and everything after it) up next scan.
        let Ok(before_len) = std::fs::metadata(path).map(|m| m.len()) else {
            break;
        };
        let Ok(sql) = std::fs::read_to_string(path) else {
            break;
        };
        if std::fs::metadata(path).map(|m| m.len()).ok() != Some(before_len) {
            writeln!(out, "watch: {name} still changing, deferred")?;
            break;
        }
        // Bounded retries: an append that failed to become durable (I/O
        // fault, injected or real) re-rolls on a fresh attempt; the same
        // seq stays safe to retry because nothing was acknowledged.
        let mut result = store.append(project, seq, date, &sql);
        let mut attempt = 1;
        while matches!(result, Err(StreamError::Wal(_))) && attempt < WATCH_RETRIES {
            attempt += 1;
            result = fault::with_attempt(attempt, || store.append(project, seq, date, &sql));
        }
        match result {
            Ok(Append::Appended {
                seq,
                before,
                after,
                ..
            }) => {
                writeln!(
                    out,
                    "watch: appended {project} seq {seq} ({name}): {} -> {after}",
                    before.as_deref().unwrap_or("(new)")
                )?;
                appended += 1;
            }
            Ok(Append::Duplicate { .. }) => {}
            Err(e) => return Err(CliError::new(format!("watch: {name}: {e}"))),
        }
    }
    Ok(appended)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "schemachron-streamcli-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn run(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        let mut out = Vec::new();
        crate::run(&args, &mut out).map(|()| String::from_utf8(out).unwrap())
    }

    #[test]
    fn dated_sql_accepts_the_ingestion_format_only() {
        assert_eq!(dated_sql("0001_2020-01-10.sql"), Some("2020-01-10".to_owned()));
        assert_eq!(dated_sql("0001_2020-01-10.txt"), None);
        assert_eq!(dated_sql("2020-01-10.sql"), None);
        assert_eq!(dated_sql("0001_2020-1-10.sql"), None);
        assert_eq!(dated_sql("notes.sql"), None);
    }

    #[test]
    fn append_cli_acks_duplicates_and_refuses_gaps() {
        let wal = tmp("append");
        let wal_s = wal.to_string_lossy().into_owned();
        let human = run(&[
            "append", "cli-a", "--seq", "1", "--date", "2020-01-10",
            "--sql", "CREATE TABLE t (a INT);", "--wal-dir", &wal_s,
        ])
        .unwrap();
        assert!(human.contains("cli-a seq 1 appended (cursor 1)"), "{human}");

        // JSON ack: the exact serve-route body shape.
        let json = run(&[
            "append", "cli-a", "--seq", "1", "--date", "2020-01-10",
            "--sql", "CREATE TABLE t (a INT);", "--wal-dir", &wal_s, "--format", "json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["status"].as_str(), Some("duplicate"));
        assert_eq!(v["last_seq"].as_u64(), Some(1));

        let gap = run(&[
            "append", "cli-a", "--seq", "9", "--date", "2020-02-10",
            "--sql", "DROP TABLE t;", "--wal-dir", &wal_s,
        ])
        .expect_err("gaps are refused");
        assert!(gap.message.contains("expected seq 2"), "{}", gap.message);

        // Argument validation.
        for bad in [
            vec!["append"],
            vec!["append", "cli-a"],
            vec!["append", "cli-a", "--seq", "2"],
            vec!["append", "cli-a", "--seq", "x", "--date", "2020-01-10", "--sql", "x"],
        ] {
            assert!(run(&bad).is_err(), "{bad:?}");
        }
        let _ = std::fs::remove_dir_all(&wal);
    }

    #[test]
    fn watch_ingests_new_dated_files_in_order() {
        let src = tmp("watch-src");
        let wal = tmp("watch-wal");
        let (src_s, wal_s) = (
            src.to_string_lossy().into_owned(),
            wal.to_string_lossy().into_owned(),
        );
        std::fs::write(src.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        std::fs::write(src.join("0002_2021-06-10.sql"), "ALTER TABLE t ADD COLUMN b INT;")
            .unwrap();
        std::fs::write(src.join("README.md"), "not sql").unwrap();

        let first = run(&[
            "watch", "--dir", &src_s, "--wal-dir", &wal_s, "--project", "cli-w", "--once",
        ])
        .unwrap();
        assert!(first.contains("appended cli-w seq 1 (0001_2020-01-10.sql)"), "{first}");
        assert!(first.contains("appended cli-w seq 2"), "{first}");
        assert!(first.contains("cli-w at seq 2, pattern "), "{first}");

        // A re-scan is idempotent; a new file is picked up where we left.
        std::fs::write(src.join("0003_2022-01-10.sql"), "DROP TABLE t;").unwrap();
        let second = run(&[
            "watch", "--dir", &src_s, "--wal-dir", &wal_s, "--project", "cli-w", "--once",
        ])
        .unwrap();
        assert!(!second.contains("seq 1"), "{second}");
        assert!(second.contains("appended cli-w seq 3 (0003_2022-01-10.sql)"), "{second}");
        assert!(second.contains("cli-w at seq 3"), "{second}");
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&wal);
    }
}
