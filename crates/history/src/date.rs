//! Minimal date handling at the study's granule: the **month**.
//!
//! The study aggregates all maintenance activity by month (§3.2), so a full
//! calendar implementation is unnecessary; [`MonthId`] is a flat month
//! counter with simple arithmetic, and [`Date`] is a calendar date used for
//! ingestion (commit timestamps, file names).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A flat month counter: `year * 12 + (month - 1)`.
///
/// Differences between `MonthId`s are exact month distances, which is all
/// the study's time arithmetic needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MonthId(pub i32);

impl MonthId {
    /// Builds a `MonthId` from a calendar year and 1-based month.
    pub fn from_ym(year: i32, month: u8) -> Self {
        debug_assert!((1..=12).contains(&month), "month out of range: {month}");
        MonthId(year * 12 + i32::from(month) - 1)
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        self.0.div_euclid(12)
    }

    /// The 1-based calendar month.
    pub fn month(self) -> u8 {
        (self.0.rem_euclid(12) + 1) as u8
    }

    /// Months elapsed since `earlier` (negative if `self` is earlier).
    pub fn months_since(self, earlier: MonthId) -> i32 {
        self.0 - earlier.0
    }

    /// The month `n` months after this one.
    pub fn plus(self, n: i32) -> MonthId {
        MonthId(self.0 + n)
    }
}

impl fmt::Display for MonthId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year(), self.month())
    }
}

/// A calendar date (year, month, day). Day precision is kept only for
/// ordering versions within a month; all analysis happens on [`MonthId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Calendar year (e.g. 2020).
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day.
    pub day: u8,
}

impl Date {
    /// Creates a date. Months/days outside their calendar range are clamped
    /// (tolerant ingestion beats panicking on a sloppy commit timestamp).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Date {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 31),
        }
    }

    /// The month this date falls in.
    pub fn month_id(self) -> MonthId {
        MonthId::from_ym(self.year, self.month)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Error parsing a date string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DateParseError(pub String);

impl fmt::Display for DateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date: {}", self.0)
    }
}

impl std::error::Error for DateParseError {}

impl FromStr for Date {
    type Err = DateParseError;

    /// Parses `YYYY-MM-DD`, `YYYY-MM` (day defaults to 1) or `YYYY/MM/DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().replace('/', "-");
        let mut parts = norm.splitn(3, '-');
        let year: i32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| DateParseError(s.into()))?;
        let month: u8 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| DateParseError(s.into()))?;
        if !(1..=12).contains(&month) {
            return Err(DateParseError(s.into()));
        }
        let day: u8 = match parts.next() {
            None => 1,
            Some(p) => p.parse().map_err(|_| DateParseError(s.into()))?,
        };
        if !(1..=31).contains(&day) {
            return Err(DateParseError(s.into()));
        }
        Ok(Date::new(year, month, day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_id_roundtrip() {
        let m = MonthId::from_ym(2021, 7);
        assert_eq!(m.year(), 2021);
        assert_eq!(m.month(), 7);
        assert_eq!(m.to_string(), "2021-07");
    }

    #[test]
    fn month_arithmetic_crosses_year_boundaries() {
        let dec = MonthId::from_ym(2019, 12);
        let feb = MonthId::from_ym(2020, 2);
        assert_eq!(feb.months_since(dec), 2);
        assert_eq!(dec.plus(2), feb);
        assert_eq!(dec.plus(-11), MonthId::from_ym(2019, 1));
    }

    #[test]
    fn negative_years_work() {
        let m = MonthId::from_ym(-1, 1);
        assert_eq!(m.year(), -1);
        assert_eq!(m.month(), 1);
    }

    #[test]
    fn date_ordering_is_calendar_order() {
        let a = Date::new(2020, 3, 15);
        let b = Date::new(2020, 3, 16);
        let c = Date::new(2021, 1, 1);
        assert!(a < b && b < c);
        assert_eq!(a.month_id(), b.month_id());
    }

    #[test]
    fn parse_full_and_partial_dates() {
        assert_eq!("2020-05-09".parse::<Date>().unwrap(), Date::new(2020, 5, 9));
        assert_eq!("2020-05".parse::<Date>().unwrap(), Date::new(2020, 5, 1));
        assert_eq!("2020/05/09".parse::<Date>().unwrap(), Date::new(2020, 5, 9));
        assert_eq!(
            " 2020-05-09 ".parse::<Date>().unwrap(),
            Date::new(2020, 5, 9)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-a-date".parse::<Date>().is_err());
        assert!("2020-13-01".parse::<Date>().is_err());
        assert!("2020-00-01".parse::<Date>().is_err());
        assert!("2020-01-32".parse::<Date>().is_err());
        assert!("".parse::<Date>().is_err());
    }

    #[test]
    fn new_clamps_out_of_range() {
        let d = Date::new(2020, 0, 99);
        assert_eq!(d.month, 1);
        assert_eq!(d.day, 31);
    }
}
