#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-stream
//!
//! Crash-safe **streaming ingestion** with live re-classification and a
//! fault-tolerant change feed — the live complement to the batch corpus
//! pipeline.
//!
//! * [`wal`] — the per-project write-ahead commit log: append-only segment
//!   files with per-record chained FNV-1a checksums, fsync-before-ack,
//!   temp-file+rename rotation and torn-tail truncation on replay. A
//!   `kill -9` at any point recovers to the last acknowledged commit.
//! * [`store`] — per-project WALs behind one **idempotent** append
//!   operation (client sequence numbers: duplicates and out-of-order
//!   retries are safe no-ops, gaps are refused with the expected seq),
//!   plus restart replay that resumes the feed cursor line.
//! * [`classify`] — live re-classification through the incremental stage
//!   cache: one appended commit re-runs exactly one classification chain,
//!   keyed by the WAL chain checksum (a content hash of the full prefix).
//! * [`feed`] — the bounded, cursored change feed: monotonic cursors that
//!   survive restarts, `lagged` shedding for slow subscribers, and no
//!   wall-clock anywhere so feed transcripts diff byte-for-byte.
//! * [`render`] — the shared JSON/SSE renderers behind `schemachron
//!   append` and the `POST /project/{id}/commit` / `GET /changes` routes.
//!
//! Fault injection: the `stream::wal_append`, `stream::wal_fsync` and
//! `stream::feed_emit` sites join the deterministic plan, and the chaos
//! drill's streaming phase replays a shuffled commit schedule under
//! injected faults plus a mid-stream kill/restart, asserting that WAL
//! replay, the live feed and a fault-free batch rebuild agree exactly.

pub mod classify;
pub mod feed;

/// Fault state is process-global: tests that install a plan take the write
/// lock, tests that merely exercise fault-instrumented paths take a read
/// lock, so an installed plan never leaks into an unrelated test.
#[cfg(test)]
pub(crate) mod testlock {
    use std::sync::RwLock;

    pub static FAULTS: RwLock<()> = RwLock::new(());

    pub fn shared() -> std::sync::RwLockReadGuard<'static, ()> {
        FAULTS.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn exclusive() -> std::sync::RwLockWriteGuard<'static, ()> {
        FAULTS.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
pub mod render;
pub mod store;
pub mod wal;

pub use classify::{
    classification_for, classify_commits, stream_key, StreamArtifact, STREAM_LOGIC_VERSION,
    STREAM_STAGE, UNCLASSIFIED,
};
pub use feed::{ChangeEvent, ChangeFeed, FeedBatch, FEED_CAPACITY};
pub use store::{Append, StreamError, StreamStore};
pub use wal::{record_crc, Wal, WalError, WalRecord, CHAIN_SEED, SEGMENT_HEADER_PREFIX};
