//! The DDL flow analyzer: symbolic execution of a project's commit history
//! over an abstract schema state.
//!
//! The pass parses each migration script (statement spans included) and
//! tracks only what reference checking needs — which tables and views
//! exist, and which columns (with their declared types) each table has. No
//! schema is built, no diff is computed, no metric is touched: the whole
//! project history is checked without executing the ingestion pipeline.

use std::collections::{BTreeMap, BTreeSet};

use schemachron_ddl::ast::{AlterAction, ColumnDef, CreateTable, Statement, TableConstraint};
use schemachron_ddl::parse_statements_spanned;
use schemachron_model::{DataType, Name};

use crate::diag::{Diagnostic, Report};

/// One script of a project history: its file name (the span anchor) and
/// its SQL text.
pub type ScriptSource = (String, String);

/// The abstract state: existing tables with their columns, plus views.
#[derive(Default)]
struct AbstractSchema {
    tables: BTreeMap<String, BTreeMap<String, DataType>>,
    views: BTreeSet<String>,
}

impl AbstractSchema {
    fn key(name: &Name) -> String {
        name.normalized()
    }
}

/// Lints one project's chronologically ordered scripts, appending findings
/// to `report`.
pub fn lint_scripts(project: &str, scripts: &[ScriptSource], report: &mut Report) {
    // First sweep: every table/view name the history ever creates, so a
    // premature DROP (name created only later) can be told apart from a
    // reference that is wrong everywhere.
    let mut ever_created: BTreeSet<String> = BTreeSet::new();
    let mut parsed = Vec::with_capacity(scripts.len());
    for (script, sql) in scripts {
        let (stmts, diags) = parse_statements_spanned(sql);
        for stmt in &stmts {
            match &stmt.statement {
                Statement::CreateTable(ct) => {
                    ever_created.insert(AbstractSchema::key(&ct.name));
                }
                Statement::CreateView { name, .. } => {
                    ever_created.insert(AbstractSchema::key(name));
                }
                Statement::RenameTable { renames } => {
                    for (_, new) in renames {
                        ever_created.insert(AbstractSchema::key(new));
                    }
                }
                Statement::AlterTable { actions, .. } => {
                    for a in actions {
                        if let AlterAction::RenameTable(new) = a {
                            ever_created.insert(AbstractSchema::key(new));
                        }
                    }
                }
                _ => {}
            }
        }
        parsed.push((script.as_str(), stmts, diags));
    }

    // Second sweep: symbolic execution with reference checking.
    let mut state = AbstractSchema::default();
    for (script, stmts, diags) in parsed {
        for d in diags.iter().filter(|d| d.is_error()) {
            report.push(
                Diagnostic::new(
                    "L008",
                    project,
                    format!("unparseable DDL skipped: {}", d.message),
                )
                .at(script, d.line),
            );
        }
        for stmt in stmts {
            check_statement(project, script, stmt.line, &stmt.statement, &mut state, &ever_created, report);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn check_statement(
    project: &str,
    script: &str,
    line: u32,
    stmt: &Statement,
    state: &mut AbstractSchema,
    ever_created: &BTreeSet<String>,
    report: &mut Report,
) {
    let mut push = |d: Diagnostic| report.push(d.at(script, line));
    match stmt {
        Statement::CreateTable(ct) => {
            let key = AbstractSchema::key(&ct.name);
            if state.tables.contains_key(&key) && !ct.if_not_exists {
                push(Diagnostic::new(
                    "L001",
                    project,
                    format!("table `{}` created while it already exists", ct.name),
                ));
            }
            check_create_fks(project, ct, state, &mut push);
            let columns = ct
                .columns
                .iter()
                .map(|c| (AbstractSchema::key(&c.name), c.data_type.clone()))
                .collect();
            state.tables.insert(key, columns);
        }
        Statement::DropTable { names, if_exists } => {
            for name in names {
                let key = AbstractSchema::key(name);
                if state.tables.remove(&key).is_none() && !if_exists {
                    if ever_created.contains(&key) {
                        push(Diagnostic::new(
                            "L003",
                            project,
                            format!("table `{name}` dropped before its creation commit"),
                        ));
                    } else {
                        push(Diagnostic::new(
                            "L002",
                            project,
                            format!("table `{name}` is never created in this history"),
                        ));
                    }
                }
            }
        }
        Statement::AlterTable { name, actions } => {
            let key = AbstractSchema::key(name);
            if !state.tables.contains_key(&key) {
                push(Diagnostic::new(
                    "L004",
                    project,
                    format!("ALTER TABLE on unknown table `{name}`"),
                ));
                return;
            }
            for action in actions {
                check_alter_action(project, name, &key, action, state, &mut push);
            }
        }
        Statement::CreateView {
            name, or_replace, ..
        } => {
            let key = AbstractSchema::key(name);
            if state.views.contains(&key) && !or_replace {
                push(Diagnostic::new(
                    "L001",
                    project,
                    format!("view `{name}` created while it already exists"),
                ));
            }
            state.views.insert(key);
        }
        Statement::DropView { names } => {
            for name in names {
                let key = AbstractSchema::key(name);
                if !state.views.remove(&key) {
                    if ever_created.contains(&key) {
                        push(Diagnostic::new(
                            "L003",
                            project,
                            format!("view `{name}` dropped before its creation commit"),
                        ));
                    } else {
                        push(Diagnostic::new(
                            "L002",
                            project,
                            format!("view `{name}` is never created in this history"),
                        ));
                    }
                }
            }
        }
        Statement::RenameTable { renames } => {
            for (old, new) in renames {
                let old_key = AbstractSchema::key(old);
                match state.tables.remove(&old_key) {
                    Some(columns) => {
                        state.tables.insert(AbstractSchema::key(new), columns);
                    }
                    None => push(Diagnostic::new(
                        "L004",
                        project,
                        format!("RENAME TABLE on unknown table `{old}`"),
                    )),
                }
            }
        }
        Statement::Other { .. } => {}
    }
}

/// Checks the foreign keys of a `CREATE TABLE` (inline `REFERENCES` and
/// table-level constraints). Self-references are legal.
fn check_create_fks(
    project: &str,
    ct: &CreateTable,
    state: &AbstractSchema,
    push: &mut impl FnMut(Diagnostic),
) {
    let self_key = AbstractSchema::key(&ct.name);
    let mut check_target = |target: &Name| {
        let key = AbstractSchema::key(target);
        if key != self_key && !state.tables.contains_key(&key) {
            push(Diagnostic::new(
                "L006",
                project,
                format!(
                    "`{}` references `{target}`, which does not exist at this point",
                    ct.name
                ),
            ));
        }
    };
    for col in &ct.columns {
        if let Some((target, _)) = &col.references {
            check_target(target);
        }
    }
    for constraint in &ct.constraints {
        if let TableConstraint::ForeignKey { ref_table, .. } = constraint {
            check_target(ref_table);
        }
    }
}

fn check_alter_action(
    project: &str,
    table: &Name,
    table_key: &str,
    action: &AlterAction,
    state: &mut AbstractSchema,
    push: &mut impl FnMut(Diagnostic),
) {
    // Column lookups and updates borrow the table map transiently so FK
    // checks can still read the whole state in between.
    let has_column = |state: &AbstractSchema, col: &Name| {
        state
            .tables
            .get(table_key)
            .is_some_and(|cols| cols.contains_key(&AbstractSchema::key(col)))
    };
    let unknown_column = |col: &Name| {
        Diagnostic::new(
            "L005",
            project,
            format!("`{table}` has no column `{col}` at this point"),
        )
    };
    match action {
        AlterAction::AddColumn { def, .. } => {
            check_fk_reference(project, table, def, state, push);
            set_column(state, table_key, def);
        }
        AlterAction::DropColumn(col) => {
            if !has_column(state, col) {
                push(unknown_column(col));
            } else if let Some(cols) = state.tables.get_mut(table_key) {
                cols.remove(&AbstractSchema::key(col));
            }
        }
        AlterAction::ModifyColumn(def) => {
            if has_column(state, &def.name) {
                check_narrowing(project, table, &def.name, &def.data_type, state, table_key, push);
            } else {
                push(unknown_column(&def.name));
            }
            set_column(state, table_key, def);
        }
        AlterAction::ChangeColumn { old, def } => {
            if has_column(state, old) {
                check_narrowing(project, table, old, &def.data_type, state, table_key, push);
                if let Some(cols) = state.tables.get_mut(table_key) {
                    cols.remove(&AbstractSchema::key(old));
                }
            } else {
                push(unknown_column(old));
            }
            set_column(state, table_key, def);
        }
        AlterAction::AlterColumnType { name, data_type } => {
            if has_column(state, name) {
                check_narrowing(project, table, name, data_type, state, table_key, push);
                if let Some(cols) = state.tables.get_mut(table_key) {
                    cols.insert(AbstractSchema::key(name), data_type.clone());
                }
            } else {
                push(unknown_column(name));
            }
        }
        AlterAction::AlterColumnDefault { name, .. }
        | AlterAction::AlterColumnNull { name, .. } => {
            if !has_column(state, name) {
                push(unknown_column(name));
            }
        }
        AlterAction::AddConstraint(TableConstraint::ForeignKey {
            ref_table, columns, ..
        }) => {
            for col in columns {
                if !has_column(state, col) {
                    push(unknown_column(col));
                }
            }
            let ref_key = AbstractSchema::key(ref_table);
            if ref_key != table_key && !state.tables.contains_key(&ref_key) {
                push(Diagnostic::new(
                    "L006",
                    project,
                    format!("`{table}` references `{ref_table}`, which does not exist at this point"),
                ));
            }
        }
        AlterAction::RenameColumn { old, new } => {
            if has_column(state, old) {
                if let Some(cols) = state.tables.get_mut(table_key) {
                    if let Some(ty) = cols.remove(&AbstractSchema::key(old)) {
                        cols.insert(AbstractSchema::key(new), ty);
                    }
                }
            } else {
                push(unknown_column(old));
            }
        }
        AlterAction::RenameTable(new) => {
            if let Some(cols) = state.tables.remove(table_key) {
                state.tables.insert(AbstractSchema::key(new), cols);
            }
        }
        // Constraint bookkeeping beyond FK targets is out of scope for the
        // abstract state (PKs, uniques, checks, defaults don't dangle).
        AlterAction::AddConstraint(_)
        | AlterAction::DropPrimaryKey
        | AlterAction::DropForeignKey(_)
        | AlterAction::DropConstraint(_)
        | AlterAction::Other(_) => {}
    }
}

fn set_column(state: &mut AbstractSchema, table_key: &str, def: &ColumnDef) {
    if let Some(cols) = state.tables.get_mut(table_key) {
        cols.insert(AbstractSchema::key(&def.name), def.data_type.clone());
    }
}

fn check_fk_reference(
    project: &str,
    table: &Name,
    def: &ColumnDef,
    state: &AbstractSchema,
    push: &mut impl FnMut(Diagnostic),
) {
    if let Some((target, _)) = &def.references {
        let key = AbstractSchema::key(target);
        if key != AbstractSchema::key(table) && !state.tables.contains_key(&key) {
            push(Diagnostic::new(
                "L006",
                project,
                format!("`{table}` references `{target}`, which does not exist at this point"),
            ));
        }
    }
}

fn check_narrowing(
    project: &str,
    table: &Name,
    column: &Name,
    new_type: &DataType,
    state: &AbstractSchema,
    table_key: &str,
    push: &mut impl FnMut(Diagnostic),
) {
    let old_type = state
        .tables
        .get(table_key)
        .and_then(|cols| cols.get(&AbstractSchema::key(column)));
    if let Some(old) = old_type {
        if narrows(old, new_type) {
            push(Diagnostic::new(
                "L007",
                project,
                format!("`{table}.{column}` narrows from {old} to {new_type}"),
            ));
        }
    }
}

/// Rank within the integer-width family; `None` for non-integers.
fn int_rank(base: &str) -> Option<u8> {
    match base {
        "tinyint" => Some(0),
        "smallint" => Some(1),
        "mediumint" => Some(2),
        "int" | "integer" => Some(3),
        "bigint" => Some(4),
        _ => None,
    }
}

fn is_textual(base: &str) -> bool {
    matches!(base, "varchar" | "char" | "character" | "text")
}

/// Whether changing a column from `old` to `new` narrows it — a conversion
/// that can lose data within the same type family. Cross-family changes
/// (e.g. `varchar` → `timestamp`) are conversions, not narrowings; the
/// study's corpus performs them routinely.
fn narrows(old: &DataType, new: &DataType) -> bool {
    if let (Some(o), Some(n)) = (int_rank(old.base()), int_rank(new.base())) {
        return n < o;
    }
    if is_textual(old.base()) && is_textual(new.base()) {
        // TEXT is unbounded; parameterless char types default to length 1.
        let cap = |t: &DataType| -> i64 {
            if t.base() == "text" {
                i64::MAX
            } else {
                t.params().first().copied().unwrap_or(1)
            }
        };
        return cap(new) < cap(old);
    }
    if old.base() == "decimal" && new.base() == "decimal" {
        let precision = |t: &DataType| t.params().first().copied().unwrap_or(10);
        return precision(new) < precision(old);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_sql(scripts: &[(&str, &str)]) -> Report {
        let owned: Vec<ScriptSource> = scripts
            .iter()
            .map(|(n, s)| ((*n).to_owned(), (*s).to_owned()))
            .collect();
        let mut report = Report::new();
        lint_scripts("test-project", &owned, &mut report);
        report.sort();
        report
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_history_has_no_findings() {
        let r = lint_sql(&[
            (
                "0001_2013-01-10.sql",
                "CREATE TABLE users (id INT, name VARCHAR(64));\n\
                 CREATE TABLE orders (id INT, user_id INT REFERENCES users (id));",
            ),
            (
                "0002_2013-02-10.sql",
                "ALTER TABLE users ADD COLUMN email VARCHAR(255);\n\
                 ALTER TABLE users MODIFY COLUMN name TEXT;\n\
                 DROP TABLE orders;",
            ),
        ]);
        assert!(r.diagnostics().is_empty(), "{}", r.render_human());
    }

    #[test]
    fn duplicate_create_is_l001() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE t (id INT);\nCREATE TABLE t (id INT);",
        )]);
        assert_eq!(codes(&r), ["L001"]);
        let span = r.diagnostics()[0].span.as_ref().unwrap();
        assert_eq!((span.script.as_str(), span.line), ("0001_2013-01-10.sql", 2));
    }

    #[test]
    fn if_not_exists_suppresses_l001() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE t (id INT);\nCREATE TABLE IF NOT EXISTS t (id INT);",
        )]);
        assert!(r.diagnostics().is_empty(), "{}", r.render_human());
    }

    #[test]
    fn drop_of_never_created_table_is_l002() {
        let r = lint_sql(&[("0001_2013-01-10.sql", "DROP TABLE ghost;")]);
        assert_eq!(codes(&r), ["L002"]);
    }

    #[test]
    fn drop_before_create_is_l003() {
        let r = lint_sql(&[
            ("0001_2013-01-10.sql", "DROP TABLE t;"),
            ("0002_2013-02-10.sql", "CREATE TABLE t (id INT);"),
        ]);
        assert_eq!(codes(&r), ["L003"]);
        assert_eq!(
            r.diagnostics()[0].span.as_ref().unwrap().script,
            "0001_2013-01-10.sql"
        );
    }

    #[test]
    fn if_exists_suppresses_drop_findings() {
        let r = lint_sql(&[("0001_2013-01-10.sql", "DROP TABLE IF EXISTS ghost;")]);
        assert!(r.diagnostics().is_empty());
    }

    #[test]
    fn alter_unknown_table_is_l004() {
        let r = lint_sql(&[("0001_2013-01-10.sql", "ALTER TABLE ghost ADD COLUMN x INT;")]);
        assert_eq!(codes(&r), ["L004"]);
    }

    #[test]
    fn alter_unknown_column_is_l005() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE t (id INT);\nALTER TABLE t DROP COLUMN ghost;",
        )]);
        assert_eq!(codes(&r), ["L005"]);
    }

    #[test]
    fn dangling_fk_target_is_l006() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE orders (id INT, user_id INT REFERENCES users (id));",
        )]);
        assert_eq!(codes(&r), ["L006"]);
        // The same table created *after* the reference still dangles at the
        // point of use — FK targets must exist at creation time.
        let late = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE orders (id INT, user_id INT REFERENCES users (id));\n\
             CREATE TABLE users (id INT);",
        )]);
        assert_eq!(codes(&late), ["L006"]);
    }

    #[test]
    fn table_level_fk_and_self_reference() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE nodes (\n  id INT,\n  parent_id INT,\n  FOREIGN KEY (parent_id) REFERENCES nodes (id)\n);",
        )]);
        assert!(r.diagnostics().is_empty(), "{}", r.render_human());
        let bad = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE a (\n  id INT,\n  b_id INT,\n  FOREIGN KEY (b_id) REFERENCES b (id)\n);",
        )]);
        assert_eq!(codes(&bad), ["L006"]);
    }

    #[test]
    fn type_narrowing_is_an_info_note() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE t (id BIGINT, name VARCHAR(255));\n\
             ALTER TABLE t MODIFY COLUMN id INT;\n\
             ALTER TABLE t MODIFY COLUMN name VARCHAR(64);",
        )]);
        assert_eq!(codes(&r), ["L007", "L007"]);
        assert_eq!(r.errors(), 0);
        assert_eq!(r.notes(), 2);
        assert!(!r.failed(true), "notes must not fail even under deny");
    }

    #[test]
    fn widening_and_cross_family_changes_are_silent() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE t (a INT, b VARCHAR(64), c TEXT);\n\
             ALTER TABLE t MODIFY COLUMN a BIGINT;\n\
             ALTER TABLE t MODIFY COLUMN b TEXT;\n\
             ALTER TABLE t MODIFY COLUMN c TIMESTAMP;",
        )]);
        assert!(r.diagnostics().is_empty(), "{}", r.render_human());
    }

    #[test]
    fn text_to_varchar_narrows() {
        assert!(narrows(
            &DataType::named("text"),
            &DataType::with_params("varchar", vec![255])
        ));
        assert!(!narrows(
            &DataType::with_params("varchar", vec![64]),
            &DataType::named("text")
        ));
        assert!(narrows(
            &DataType::with_params("decimal", vec![10, 2]),
            &DataType::with_params("decimal", vec![6, 2])
        ));
    }

    #[test]
    fn unparseable_ddl_is_l008() {
        let r = lint_sql(&[("0001_2013-01-10.sql", "CREATE TABLE t (;")]);
        assert_eq!(codes(&r), ["L008"]);
    }

    #[test]
    fn rename_moves_state() {
        let r = lint_sql(&[(
            "0001_2013-01-10.sql",
            "CREATE TABLE old_name (id INT);\n\
             RENAME TABLE old_name TO new_name;\n\
             ALTER TABLE new_name ADD COLUMN x INT;\n\
             DROP TABLE new_name;",
        )]);
        assert!(r.diagnostics().is_empty(), "{}", r.render_human());
    }
}
