//! HTTP load benchmark for `schemachron serve`: an in-process quiet server
//! under a burst of concurrent clients, reporting requests/sec and latency
//! percentiles for the hottest route, `/project/{id}/pattern`.
//!
//! Emits human-readable lines and writes a machine-readable summary to
//! `BENCH_serve.json` at the workspace root (mirroring `BENCH_pipeline.json`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use schemachron_bench::context::shared_corpus;
use schemachron_bench::DEFAULT_SEED;
use schemachron_corpus::Corpus;
use schemachron_serve::{Server, ServerConfig};

/// Client threads hammering the server concurrently.
const CLIENTS: usize = 32;
/// Requests per client thread.
const REQUESTS_PER_CLIENT: usize = 8;

/// One GET over a fresh connection; returns the wall time on a 200, panics
/// otherwise (a load bench over failing requests measures nothing).
fn timed_get(addr: std::net::SocketAddr, path: &str) -> Duration {
    let started = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    assert!(
        out.starts_with("HTTP/1.1 200"),
        "non-200 under load:\n{}",
        out.lines().next().unwrap_or("")
    );
    started.elapsed()
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1000.0
}

fn main() {
    let jobs = schemachron_corpus::effective_jobs().max(2);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        jobs,
        quiet: true,
        ..ServerConfig::default()
    })
    .expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // The pattern route for the corpus's first project, resolved from the
    // same shared cache the server uses (so this does not add a build).
    let corpus = shared_corpus(DEFAULT_SEED);
    let name = corpus.projects()[0].card.name.clone();
    let path = Arc::new(format!("/project/{name}/pattern"));

    // Warm-up: one request, also ensures the server finished its prewarm.
    timed_get(addr, &path);
    let builds_before = Corpus::build_count();

    let bench_started = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let path = Arc::clone(&path);
            std::thread::spawn(move || {
                (0..REQUESTS_PER_CLIENT)
                    .map(|_| timed_get(addr, &path))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let wall = bench_started.elapsed();

    assert_eq!(
        Corpus::build_count(),
        builds_before,
        "the load must be served from the cached corpus"
    );

    handle.request_shutdown();
    let served = server_thread.join().unwrap().expect("server run");

    latencies.sort();
    let total = latencies.len();
    let rps = total as f64 / wall.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    println!(
        "bench: serve/pattern_route {total} reqs, {CLIENTS} clients, j{jobs}: \
         {rps:.1} req/s  p50 {p50:.2}ms  p95 {p95:.2}ms  p99 {p99:.2}ms \
         (server counted {served})"
    );

    let report = serde_json::json!({
        "bench": "serve/pattern_route",
        "route": (path.as_str()),
        "seed": DEFAULT_SEED,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "jobs": jobs,
        "total_requests": total,
        "wall_secs": (wall.as_secs_f64()),
        "requests_per_sec": rps,
        "latency_ms": {
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "max": (percentile(&latencies, 1.0)),
        },
    });
    // CARGO_MANIFEST_DIR = crates/bench, so ../.. is the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(out, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => println!("bench: wrote {out}"),
        Err(e) => eprintln!("bench: could not write {out}: {e}"),
    }
}
