//! The planner-backed recommendation pass (`R001`).
//!
//! Where the flow analyzer looks *backward* (does the history replay
//! cleanly?), this pass looks *forward*: it replays a project's history to
//! its final schema, derives the lint-clean ideal of that schema — every
//! table keyed by a primary key — and asks the migration planner for the
//! DDL that would carry the real schema to the ideal. Each planned
//! statement surfaces as an Info-level "recommended next migration" note
//! through the shared diagnostics renderer, so the recommendations ride
//! the same JSON shape (and `--jobs` determinism) as every other finding.

use schemachron_ddl::SchemaBuilder;
use schemachron_dialect::{ingest_dialect, plan, PlanOptions};
use schemachron_model::Schema;

use crate::diag::{Diagnostic, Report};

/// The lint-clean ideal of a schema: identical, except every table carries
/// a primary key. A keyless table is keyed on its `id` column when it has
/// one, else on its first column — the same convention the corpus
/// generator uses for its own key toggles.
fn ideal_of(schema: &Schema) -> Schema {
    let mut ideal = schema.clone();
    let keyless: Vec<(String, schemachron_model::Name)> = schema
        .tables()
        .filter(|t| t.primary_key.is_empty())
        .filter_map(|t| {
            let key = t
                .attribute("id")
                .or_else(|| t.attributes().first())
                .map(|a| a.name.clone())?;
            Some((t.name.as_str().to_owned(), key))
        })
        .collect();
    for (table, key) in keyless {
        if let Some(t) = ideal.table_mut(&table) {
            t.primary_key = vec![key];
        }
    }
    ideal
}

/// Replays a project's scripts to the final schema and emits one `R001`
/// note per statement of the planned migration toward [`ideal_of`]. A
/// project whose final schema is already ideal emits nothing.
pub fn recommend_next_migration(
    project: &str,
    scripts: &[(String, String)],
    report: &mut Report,
) {
    let dialect = ingest_dialect();
    let mut builder = SchemaBuilder::new();
    for (_, sql) in scripts {
        let (stmts, _) = dialect.parse(sql);
        builder.apply_statements(&stmts);
    }
    let (final_schema, _) = builder.finish();
    let ideal = ideal_of(&final_schema);
    // The ideal only ever *adds* single-column primary keys, which the
    // ingestion dialect always expresses in place; a planner refusal here
    // would be a planner bug, not a project finding — stay silent rather
    // than misfile it as a diagnostic.
    let Ok(planned) = plan(&final_schema, &ideal, dialect, &PlanOptions::default()) else {
        return;
    };
    for stmt in &planned.statements {
        report.push(Diagnostic::new(
            "R001",
            project,
            format!("recommended next migration: {}", stmt.sql),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scripts(sql: &str) -> Vec<(String, String)> {
        vec![("0001_2020-01-10.sql".to_owned(), sql.to_owned())]
    }

    #[test]
    fn keyless_table_gets_a_recommended_primary_key() {
        let mut report = Report::new();
        recommend_next_migration(
            "p",
            &scripts("CREATE TABLE t (id INT, name VARCHAR(32));"),
            &mut report,
        );
        let rows: Vec<&str> = report
            .diagnostics()
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(
            rows,
            ["recommended next migration: ALTER TABLE `t` ADD PRIMARY KEY (`id`);"]
        );
        assert_eq!(report.notes(), 1);
        assert_eq!(report.errors(), 0);
    }

    #[test]
    fn first_column_keys_a_table_without_id() {
        let mut report = Report::new();
        recommend_next_migration(
            "p",
            &scripts("CREATE TABLE logs (ts TIMESTAMP, line TEXT);"),
            &mut report,
        );
        assert_eq!(report.notes(), 1);
        assert!(
            report.diagnostics()[0].message.contains("(`ts`)"),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn keyed_tables_recommend_nothing() {
        let mut report = Report::new();
        recommend_next_migration(
            "p",
            &scripts("CREATE TABLE t (id INT, PRIMARY KEY (id));"),
            &mut report,
        );
        assert!(report.diagnostics().is_empty(), "{}", report.render_human());
    }

    #[test]
    fn key_dropped_mid_history_resurfaces_as_a_recommendation() {
        let mut report = Report::new();
        recommend_next_migration(
            "p",
            &[
                (
                    "0001_2020-01-10.sql".to_owned(),
                    "CREATE TABLE t (id INT, PRIMARY KEY (id));".to_owned(),
                ),
                (
                    "0002_2020-02-10.sql".to_owned(),
                    "ALTER TABLE t DROP PRIMARY KEY;".to_owned(),
                ),
            ],
            &mut report,
        );
        assert_eq!(report.notes(), 1);
        assert!(
            report.diagnostics()[0].message.contains("ADD PRIMARY KEY"),
            "{}",
            report.render_human()
        );
    }
}
