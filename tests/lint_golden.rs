//! Fault-injection golden for the static analyzer: the checked-in faulty
//! project under `tests/fixtures/lint/` must produce exactly the findings
//! recorded in `goldens/lint/fault_injection.json`, byte for byte, through
//! the real CLI entry point (`schemachron lint --dir ... --format json`).
//!
//! The fixture covers every flow rule: L003 (drop before create), L006
//! (dangling FK), L001 (duplicate create), L004 (unknown table), L005
//! (unknown column), L007 (narrowing, info), L002 (never created), L008
//! (parse error). If a rule's code, span, message, or the JSON shape
//! changes, this test fails and the golden must be regenerated on purpose.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// allow-in-tests escape hatch does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

fn repo_path(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

fn run_lint(args: &[&str]) -> (Result<(), String>, String) {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    let mut buf: Vec<u8> = Vec::new();
    let result = schemachron_cli::run(&argv, &mut buf).map_err(|e| e.message);
    (result, String::from_utf8(buf).expect("lint output is UTF-8"))
}

#[test]
fn fault_fixture_matches_golden_byte_for_byte() {
    let (result, out) = run_lint(&[
        "lint",
        "--dir",
        &repo_path("tests/fixtures/lint/faulty_project"),
        "--format",
        "json",
    ]);
    let golden = std::fs::read_to_string(repo_path("goldens/lint/fault_injection.json"))
        .expect("checked-in golden");
    assert_eq!(out, golden, "lint JSON drifted from the golden");
    let err = result.expect_err("a fixture with error findings must exit nonzero");
    assert!(err.contains("7 errors"), "summary in error: {err}");
}

#[test]
fn fault_fixture_codes_and_spans() {
    let (_, out) = run_lint(&[
        "lint",
        "--dir",
        &repo_path("tests/fixtures/lint/faulty_project"),
    ]);
    // One line per finding, chronologically by script then line; the exact
    // text is pinned by the golden test — here we pin the rule → span map.
    for needle in [
        "L003 [error] faulty_project 0001_2020-01-10.sql:1",
        "L006 [error] faulty_project 0001_2020-01-10.sql:2",
        "L001 [error] faulty_project 0002_2020-02-15.sql:5",
        "L004 [error] faulty_project 0002_2020-02-15.sql:8",
        "L005 [error] faulty_project 0002_2020-02-15.sql:9",
        "L007 [info] faulty_project 0002_2020-02-15.sql:10",
        "L002 [error] faulty_project 0002_2020-02-15.sql:11",
        "L008 [error] faulty_project 0003_2020-03-20.sql:1",
    ] {
        assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
    }
    assert!(out.contains("7 errors, 0 warnings, 1 note"), "{out}");
}
