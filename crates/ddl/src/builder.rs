//! Applying parsed statements to a logical schema.
//!
//! Two ingestion modes are supported:
//!
//! * **snapshot** — each file is a full dump; [`parse_schema`] builds a fresh
//!   schema from it (the common case for `schema.sql`-style histories);
//! * **migration** — statements are applied on top of a running schema via
//!   [`SchemaBuilder`] (for `ALTER`-based histories).

use schemachron_model::{Attribute, ForeignKey, Name, Schema, Table, View};

use crate::ast::{AlterAction, ColumnDef, CreateTable, Statement, TableConstraint};
use crate::diagnostics::Diagnostic;
use crate::parser::parse_statements;

/// Parses a script as a **full schema snapshot**: a fresh schema is built
/// from every statement in the script.
///
/// Returns the schema plus all parser/builder diagnostics. This function
/// never fails; the worst case is an empty schema and a pile of diagnostics.
pub fn parse_schema(sql: &str) -> (Schema, Vec<Diagnostic>) {
    let mut b = SchemaBuilder::new();
    b.apply_script(sql);
    b.finish()
}

/// Incrementally builds a schema by applying DDL scripts (migration mode).
///
/// ```
/// use schemachron_ddl::SchemaBuilder;
///
/// let mut b = SchemaBuilder::new();
/// b.apply_script("CREATE TABLE t (a INT);");
/// b.apply_script("ALTER TABLE t ADD COLUMN b TEXT;");
/// let (schema, _diags) = b.finish();
/// assert_eq!(schema.table("t").unwrap().attribute_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    schema: Schema,
    diagnostics: Vec<Diagnostic>,
}

impl SchemaBuilder {
    /// Creates a builder over an empty schema.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Creates a builder seeded with an existing schema.
    pub fn with_schema(schema: Schema) -> Self {
        SchemaBuilder {
            schema,
            diagnostics: Vec::new(),
        }
    }

    /// A read-only view of the schema built so far.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Parses and applies a whole script.
    pub fn apply_script(&mut self, sql: &str) {
        let (stmts, mut diags) = parse_statements(sql);
        self.diagnostics.append(&mut diags);
        self.apply_statements(&stmts);
    }

    /// Applies a slice of already-parsed statements, in order — the entry
    /// point for staged pipelines that parse and apply as separate cached
    /// steps.
    pub fn apply_statements(&mut self, stmts: &[Statement]) {
        for s in stmts {
            self.apply_statement(s);
        }
    }

    /// Applies one parsed statement.
    pub fn apply_statement(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable(ct) => self.apply_create_table(ct),
            Statement::DropTable { names, .. } => {
                for n in names {
                    // Tolerant: dropping a missing table is a no-op either way.
                    let _ = self.schema.remove_table(n.as_str());
                }
            }
            Statement::AlterTable { name, actions } => self.apply_alter(name, actions),
            Statement::CreateView {
                name, definition, ..
            } => {
                self.schema.insert_view(View {
                    name: name.clone(),
                    definition: definition.clone(),
                });
            }
            Statement::DropView { names } => {
                for n in names {
                    let _ = self.schema.remove_view(n.as_str());
                }
            }
            Statement::RenameTable { renames } => {
                for (old, new) in renames {
                    let _ = self.schema.rename_table(old.as_str(), new.clone());
                }
            }
            Statement::Other { .. } => {}
        }
    }

    /// Consumes the builder, returning the schema and all diagnostics.
    pub fn finish(self) -> (Schema, Vec<Diagnostic>) {
        (self.schema, self.diagnostics)
    }

    fn apply_create_table(&mut self, ct: &CreateTable) {
        if ct.if_not_exists && self.schema.table(ct.name.as_str()).is_some() {
            return;
        }
        let mut t = Table::new(ct.name.clone());
        // Structure copy (`LIKE other`): start from the source's attributes
        // and primary key. FKs are not copied (neither MySQL nor PostgreSQL
        // copies them by default).
        if let Some(source) = &ct.like {
            if let Some(src) = self.schema.table(source.as_str()) {
                for a in src.attributes() {
                    t.push_attribute(a.clone());
                }
                t.primary_key = src.primary_key.clone();
                t.uniques = src.uniques.clone();
            }
        }
        for col in &ct.columns {
            install_column(&mut t, col);
        }
        for k in &ct.constraints {
            install_constraint(&mut t, k);
        }
        self.schema.insert_table(t);
    }

    fn apply_alter(&mut self, name: &Name, actions: &[AlterAction]) {
        // Handle renames first-class: RenameTable switches the target.
        let mut current = name.clone();
        for a in actions {
            if let AlterAction::RenameTable(n) = a {
                let _ = self.schema.rename_table(current.as_str(), n.clone());
                current = n.clone();
                continue;
            }
            // Altering a missing table: tolerated no-op (common in
            // partially-applied migration histories).
            let Some(t) = self.schema.table_mut(current.as_str()) else {
                continue;
            };
            match a {
                AlterAction::AddColumn { def, position } => {
                    let attr_pos = match position {
                        None => t.attribute_count(),
                        Some(None) => 0,
                        Some(Some(after)) => t
                            .attributes()
                            .iter()
                            .position(|x| x.name == *after)
                            .map_or(t.attribute_count(), |i| i + 1),
                    };
                    let (attr, pk, unique, refs) = column_parts(def);
                    t.insert_attribute(attr_pos, attr);
                    if pk {
                        t.primary_key = vec![def.name.clone()];
                    }
                    if unique {
                        t.uniques.push(vec![def.name.clone()]);
                    }
                    if let Some((rt, rc)) = refs {
                        t.foreign_keys.push(ForeignKey {
                            name: None,
                            columns: vec![def.name.clone()],
                            ref_table: rt,
                            ref_columns: rc,
                        });
                    }
                }
                AlterAction::DropColumn(c) => {
                    let _ = t.remove_attribute(c.as_str());
                }
                AlterAction::ModifyColumn(def) => {
                    if let Some(a) = t.attribute_mut(def.name.as_str()) {
                        a.data_type = def.data_type.clone();
                        a.not_null = def.not_null;
                        a.default = def.default.clone();
                        a.auto_increment = def.auto_increment;
                    } else {
                        let (attr, ..) = column_parts(def);
                        t.push_attribute(attr);
                    }
                }
                AlterAction::ChangeColumn { old, def } => {
                    if t.rename_attribute(old.as_str(), def.name.clone()) {
                        if let Some(a) = t.attribute_mut(def.name.as_str()) {
                            a.data_type = def.data_type.clone();
                            a.not_null = def.not_null;
                            a.default = def.default.clone();
                            a.auto_increment = def.auto_increment;
                        }
                    } else {
                        let (attr, ..) = column_parts(def);
                        t.push_attribute(attr);
                    }
                }
                AlterAction::AlterColumnType { name: c, data_type } => {
                    if let Some(a) = t.attribute_mut(c.as_str()) {
                        a.data_type = data_type.clone();
                    }
                }
                AlterAction::AlterColumnDefault { name: c, default } => {
                    if let Some(a) = t.attribute_mut(c.as_str()) {
                        a.default = default.clone();
                    }
                }
                AlterAction::AlterColumnNull { name: c, not_null } => {
                    if let Some(a) = t.attribute_mut(c.as_str()) {
                        a.not_null = *not_null;
                    }
                }
                AlterAction::AddConstraint(k) => {
                    install_constraint(t, k);
                }
                AlterAction::DropPrimaryKey => {
                    t.primary_key.clear();
                }
                AlterAction::DropForeignKey(n) => {
                    t.foreign_keys.retain(|fk| fk.name.as_ref() != Some(n));
                }
                AlterAction::DropConstraint(n) => {
                    // PostgreSQL spells "drop the primary key" as dropping
                    // the conventionally named `<table>_pkey` constraint.
                    if n.as_str() == format!("{}_pkey", current.as_str()) {
                        t.primary_key.clear();
                    }
                    t.foreign_keys.retain(|fk| fk.name.as_ref() != Some(n));
                }
                AlterAction::RenameTable(_) => {
                    // Handled before the table lookup above.
                }
                AlterAction::RenameColumn { old, new } => {
                    let _ = t.rename_attribute(old.as_str(), new.clone());
                }
                AlterAction::Other(_) => {}
            }
        }
    }
}

/// Splits a parsed column definition into the model attribute plus the
/// inline key information.
#[allow(clippy::type_complexity)]
fn column_parts(def: &ColumnDef) -> (Attribute, bool, bool, Option<(Name, Vec<Name>)>) {
    let mut a = Attribute::new(def.name.clone(), def.data_type.clone());
    a.not_null = def.not_null;
    a.default = def.default.clone();
    a.auto_increment = def.auto_increment;
    (a, def.primary_key, def.unique, def.references.clone())
}

fn install_column(t: &mut Table, def: &ColumnDef) {
    let (attr, pk, unique, refs) = column_parts(def);
    let name = attr.name.clone();
    t.push_attribute(attr);
    if pk {
        t.primary_key = vec![name.clone()];
    }
    if unique {
        t.uniques.push(vec![name.clone()]);
    }
    if let Some((rt, rc)) = refs {
        t.foreign_keys.push(ForeignKey {
            name: None,
            columns: vec![name],
            ref_table: rt,
            ref_columns: rc,
        });
    }
}

fn install_constraint(t: &mut Table, k: &TableConstraint) {
    match k {
        TableConstraint::PrimaryKey(cols) => t.primary_key = cols.clone(),
        TableConstraint::Unique(cols) => t.uniques.push(cols.clone()),
        TableConstraint::ForeignKey {
            name,
            columns,
            ref_table,
            ref_columns,
        } => t.foreign_keys.push(ForeignKey {
            name: name.clone(),
            columns: columns.clone(),
            ref_table: ref_table.clone(),
            ref_columns: ref_columns.clone(),
        }),
        TableConstraint::Check(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_model::DataType;

    #[test]
    fn snapshot_mode_builds_full_schema() {
        let (s, d) = parse_schema(
            "CREATE TABLE a (x INT PRIMARY KEY);
             CREATE TABLE b (y INT REFERENCES a (x));
             CREATE VIEW v AS SELECT x FROM a;",
        );
        assert_eq!(s.table_count(), 2);
        assert_eq!(s.views().count(), 1);
        assert_eq!(s.table("a").unwrap().primary_key, vec![Name::from("x")]);
        assert_eq!(s.table("b").unwrap().foreign_keys.len(), 1);
        assert!(d.is_empty());
    }

    #[test]
    fn migration_mode_add_modify_drop() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (a INT, b INT);");
        b.apply_script("ALTER TABLE t ADD COLUMN c TEXT FIRST;");
        b.apply_script("ALTER TABLE t MODIFY COLUMN a BIGINT;");
        b.apply_script("ALTER TABLE t DROP COLUMN b;");
        let (s, _d) = b.finish();
        let t = s.table("t").unwrap();
        assert_eq!(t.attribute_count(), 2);
        assert_eq!(t.attributes()[0].name, Name::from("c"));
        assert_eq!(
            t.attribute("a").unwrap().data_type,
            DataType::named("bigint")
        );
    }

    #[test]
    fn add_column_after_position() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (a INT, c INT);");
        b.apply_script("ALTER TABLE t ADD COLUMN b INT AFTER a;");
        let (s, _) = b.finish();
        let names: Vec<String> = s
            .table("t")
            .unwrap()
            .attributes()
            .iter()
            .map(|a| a.name.to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn change_column_renames_and_retypes() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (old INT);");
        b.apply_script("ALTER TABLE t CHANGE old fresh VARCHAR(10) NOT NULL;");
        let (s, _) = b.finish();
        let t = s.table("t").unwrap();
        assert!(t.attribute("old").is_none());
        let f = t.attribute("fresh").unwrap();
        assert_eq!(f.data_type, DataType::with_params("varchar", vec![10]));
        assert!(f.not_null);
    }

    #[test]
    fn rename_table_midway_through_actions() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (a INT);");
        b.apply_script("ALTER TABLE t RENAME TO t2, ADD COLUMN b INT;");
        let (s, _) = b.finish();
        assert!(s.table("t").is_none());
        assert_eq!(s.table("t2").unwrap().attribute_count(), 2);
    }

    #[test]
    fn drop_and_readd_primary_key() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a));");
        b.apply_script("ALTER TABLE t DROP PRIMARY KEY, ADD PRIMARY KEY (a, b);");
        let (s, _) = b.finish();
        assert_eq!(
            s.table("t").unwrap().primary_key,
            vec![Name::from("a"), Name::from("b")]
        );
    }

    #[test]
    fn drop_constraint_pkey_clears_primary_key() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (a INT, PRIMARY KEY (a));");
        b.apply_script("ALTER TABLE t DROP CONSTRAINT t_pkey;");
        let (s, _) = b.finish();
        assert!(s.table("t").unwrap().primary_key.is_empty());
        // A pkey-named constraint on a *different* table is just a
        // constraint name; nothing is cleared.
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE u (a INT, PRIMARY KEY (a));");
        b.apply_script("ALTER TABLE u DROP CONSTRAINT other_pkey;");
        let (s, _) = b.finish();
        assert_eq!(s.table("u").unwrap().primary_key, vec![Name::from("a")]);
    }

    #[test]
    fn drop_foreign_key_by_name() {
        let mut b = SchemaBuilder::new();
        b.apply_script(
            "CREATE TABLE t (x INT, CONSTRAINT fk_x FOREIGN KEY (x) REFERENCES p (id));",
        );
        b.apply_script("ALTER TABLE t DROP FOREIGN KEY fk_x;");
        let (s, _) = b.finish();
        assert!(s.table("t").unwrap().foreign_keys.is_empty());
    }

    #[test]
    fn alter_missing_table_is_tolerated() {
        let mut b = SchemaBuilder::new();
        b.apply_script("ALTER TABLE ghost ADD COLUMN x INT;");
        let (s, d) = b.finish();
        assert!(s.is_empty());
        assert!(d.iter().all(|x| !x.is_error()));
    }

    #[test]
    fn create_if_not_exists_does_not_clobber() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (a INT, b INT);");
        b.apply_script("CREATE TABLE IF NOT EXISTS t (z INT);");
        let (s, _) = b.finish();
        assert_eq!(s.table("t").unwrap().attribute_count(), 2);
    }

    #[test]
    fn create_without_if_not_exists_replaces() {
        // Tolerant semantics: later full definition wins (snapshot dumps
        // sometimes repeat tables after a DROP that the miner did not see).
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE t (a INT, b INT);");
        b.apply_script("CREATE TABLE t (z INT);");
        let (s, _) = b.finish();
        assert_eq!(s.table("t").unwrap().attribute_count(), 1);
    }

    #[test]
    fn rename_table_statement_applies() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE TABLE a (x INT); RENAME TABLE a TO b;");
        let (s, _) = b.finish();
        assert!(s.table("b").is_some());
    }

    #[test]
    fn drop_view() {
        let mut b = SchemaBuilder::new();
        b.apply_script("CREATE VIEW v AS SELECT 1; DROP VIEW v;");
        let (s, _) = b.finish();
        assert!(s.is_empty());
    }

    #[test]
    fn create_table_like_copies_structure() {
        let mut b = SchemaBuilder::new();
        b.apply_script(
            "CREATE TABLE base (id INT NOT NULL, name VARCHAR(32), PRIMARY KEY (id));
             CREATE TABLE mysql_copy LIKE base;
             CREATE TABLE pg_copy (LIKE base INCLUDING ALL);
             CREATE TABLE extended (LIKE base, extra TEXT);",
        );
        let (s, d) = b.finish();
        assert!(d.iter().all(|x| !x.is_error()), "{d:?}");
        let base = s.table("base").unwrap().clone();
        let copy = s.table("mysql_copy").unwrap();
        assert_eq!(copy.attribute_count(), 2);
        assert_eq!(copy.primary_key, base.primary_key);
        assert_eq!(s.table("pg_copy").unwrap().attribute_count(), 2);
        let ext = s.table("extended").unwrap();
        assert_eq!(ext.attribute_count(), 3);
        assert!(ext.attribute("extra").is_some());
    }

    #[test]
    fn like_missing_source_degrades_to_empty_table() {
        let (s, _) = parse_schema("CREATE TABLE t LIKE ghost;");
        assert_eq!(s.table("t").unwrap().attribute_count(), 0);
    }

    #[test]
    fn roundtrip_render_then_parse() {
        let (s1, _) = parse_schema(
            "CREATE TABLE users (
                id INT NOT NULL,
                name VARCHAR(64) DEFAULT 'x',
                PRIMARY KEY (id)
            );
            CREATE TABLE posts (
                id INT NOT NULL,
                author INT,
                PRIMARY KEY (id),
                CONSTRAINT fk_author FOREIGN KEY (author) REFERENCES users (id)
            );",
        );
        let sql = schemachron_model::render_schema_sql(&s1);
        let (s2, d) = parse_schema(&sql);
        assert!(d.iter().all(|x| !x.is_error()), "{d:?}");
        assert_eq!(s1, s2);
    }
}
