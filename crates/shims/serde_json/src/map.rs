//! The insertion-ordered JSON object map.

use std::fmt;

/// An insertion-ordered map, mirroring `serde_json::Map`.
///
/// Backed by a `Vec` of pairs: JSON objects in this workspace are small
/// (document fields, experiment artifacts), where linear probing beats a
/// tree and insertion order matches what real serde_json produces with
/// `preserve_order`.
#[derive(Clone, PartialEq, Default)]
pub struct Map<K = String, V = super::Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a value, replacing (in place) an existing entry of the same
    /// key. Returns the previous value, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up by key.
    pub fn get<Q: ?Sized>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key<Q: ?Sized>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq,
    {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for Map<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = MapIter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        MapIter {
            inner: self.entries.iter(),
        }
    }
}

/// Borrowing iterator over a [`Map`].
pub struct MapIter<'a, K, V> {
    inner: std::slice::Iter<'a, (K, V)>,
}

impl<'a, K, V> Iterator for MapIter<'a, K, V> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_preserves_order_and_replaces() {
        let mut m: Map<String, u32> = Map::new();
        assert!(m.is_empty());
        m.insert("b".into(), 1);
        m.insert("a".into(), 2);
        assert_eq!(m.insert("b".into(), 3), Some(1));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&3));
        assert_eq!(m.len(), 2);
        assert!(m.contains_key("a"));
        assert!(!m.contains_key("z"));
    }

    #[test]
    fn iteration_forms_agree() {
        let m: Map<String, u32> = [("x".to_owned(), 1), ("y".to_owned(), 2)]
            .into_iter()
            .collect();
        assert_eq!(m.values().sum::<u32>(), 3);
        let by_ref: Vec<(&String, &u32)> = (&m).into_iter().collect();
        assert_eq!(by_ref.len(), 2);
        let owned: Vec<(String, u32)> = m.into_iter().collect();
        assert_eq!(owned[0].0, "x");
    }
}
