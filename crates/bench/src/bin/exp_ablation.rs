//! Runs the threshold/granule ablation sweeps (beyond the paper).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::ablation(&ctx);
    emit(
        "exp_ablation",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
