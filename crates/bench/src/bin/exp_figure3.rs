//! Regenerates Figure 3 (example pattern lines).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::figure3(&ctx);
    emit(
        "exp_figure3",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );

    // Also export an SVG gallery, one file per pattern exemplar.
    let dir = std::path::Path::new("target/experiments/figure3");
    if std::fs::create_dir_all(dir).is_ok() {
        let svg = schemachron_chart::svg::SvgChart::default();
        for (pattern, name, _) in &result.charts {
            let exemplar = ctx
                .corpus
                .projects()
                .iter()
                .find(|p| &p.card.name == name)
                .expect("exemplar exists");
            let art = svg.render(&exemplar.history);
            let file = dir.join(format!("{}.svg", pattern.name().replace(' ', "_")));
            if std::fs::write(&file, art).is_ok() {
                println!("wrote {}", file.display());
            }
        }
    }
}
