//! Document-store version histories: snapshots of collections over time,
//! flowing into the standard relational evolution pipeline.

use schemachron_history::{Date, ProjectHistory, ProjectHistoryBuilder};

use crate::infer::{infer_schema, Collections};

/// Builds a [`ProjectHistory`] from dated **document-store snapshots**:
/// each snapshot's implicit schema is inferred and diffed exactly like a
/// relational schema version, so all time-related metrics and patterns
/// apply unchanged.
///
/// ```
/// use schemachron_history::Date;
/// use schemachron_nosql::{Collections, DocumentHistoryBuilder};
///
/// let mut v1 = Collections::new();
/// v1.add_json("posts", r#"{"id": 1, "title": "hello"}"#).unwrap();
/// let mut v2 = Collections::new();
/// v2.add_json("posts", r#"{"id": 1, "title": "hello", "likes": 3}"#).unwrap();
///
/// let mut b = DocumentHistoryBuilder::new("doc-store");
/// b.snapshot(Date::new(2021, 1, 5), &v1);
/// b.snapshot(Date::new(2021, 6, 5), &v2);
/// b.source_commit(Date::new(2022, 6, 1), 10.0);
/// let project = b.build();
/// assert_eq!(project.schema_total(), 3.0); // id+title born, likes injected
/// ```
#[derive(Debug)]
pub struct DocumentHistoryBuilder {
    inner: ProjectHistoryBuilder,
}

impl DocumentHistoryBuilder {
    /// Starts a builder for the named document store.
    pub fn new(name: impl Into<String>) -> Self {
        DocumentHistoryBuilder {
            inner: ProjectHistoryBuilder::new(name),
        }
    }

    /// Adds a dated snapshot of the whole store.
    pub fn snapshot(&mut self, date: Date, store: &Collections) -> &mut Self {
        self.inner.schema_version(date, infer_schema(store));
        self
    }

    /// Records application-code activity (for the source heartbeat).
    pub fn source_commit(&mut self, date: Date, lines_changed: f64) -> &mut Self {
        self.inner.source_commit(date, lines_changed);
        self
    }

    /// Finalizes the project history.
    pub fn build(self) -> ProjectHistory {
        self.inner.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_core::metrics::TimeMetrics;
    use schemachron_core::quantize::Labels;
    use schemachron_core::{classify, Pattern};
    use schemachron_model::ChangeKind;

    fn d(y: i32, m: u8) -> Date {
        Date::new(y, m, 10)
    }

    fn snapshot(docs: &[(&str, &str)]) -> Collections {
        let mut c = Collections::new();
        for (entity, json) in docs {
            c.add_json(*entity, json).expect("valid json");
        }
        c
    }

    #[test]
    fn field_injection_measured_like_relational() {
        let mut b = DocumentHistoryBuilder::new("t");
        b.snapshot(d(2020, 1), &snapshot(&[("u", r#"{"a": 1}"#)]));
        b.snapshot(d(2020, 6), &snapshot(&[("u", r#"{"a": 1, "b": 2}"#)]));
        let p = b.build();
        let hist = p.schema_history().unwrap();
        assert_eq!(
            hist.versions()[1]
                .diff
                .count_of(ChangeKind::AttributeInjected),
            1
        );
    }

    #[test]
    fn entity_type_drop_counts_all_fields() {
        let mut b = DocumentHistoryBuilder::new("t");
        b.snapshot(
            d(2020, 1),
            &snapshot(&[("u", r#"{"a": 1}"#), ("logs", r#"{"msg": "x", "ts": 1}"#)]),
        );
        b.snapshot(d(2020, 9), &snapshot(&[("u", r#"{"a": 1}"#)]));
        let p = b.build();
        let hist = p.schema_history().unwrap();
        assert_eq!(
            hist.versions()[1]
                .diff
                .count_of(ChangeKind::AttributeDeletedWithTable),
            2
        );
    }

    #[test]
    fn type_drift_is_a_type_change() {
        let mut b = DocumentHistoryBuilder::new("t");
        b.snapshot(d(2020, 1), &snapshot(&[("u", r#"{"x": 1}"#)]));
        b.snapshot(d(2020, 7), &snapshot(&[("u", r#"{"x": "one"}"#)]));
        let p = b.build();
        let hist = p.schema_history().unwrap();
        assert_eq!(
            hist.versions()[1]
                .diff
                .count_of(ChangeKind::DataTypeChanged),
            1
        );
    }

    #[test]
    fn document_store_classifies_into_the_same_patterns() {
        // A store whose implicit schema is fully set up in month 0 and
        // never changes: the Flatliner pattern, on documents.
        let snap = snapshot(&[
            ("users", r#"{"id": 1, "name": "a", "email": "x"}"#),
            ("posts", r#"{"id": 1, "title": "t", "body": "b"}"#),
        ]);
        let mut b = DocumentHistoryBuilder::new("nosql-flatliner");
        b.snapshot(d(2020, 1), &snap);
        for m in 0..24u8 {
            b.source_commit(d(2020 + i32::from(m / 12), m % 12 + 1), 50.0);
        }
        let p = b.build();
        let metrics = TimeMetrics::from_project(&p).unwrap();
        assert_eq!(
            classify(&Labels::from_metrics(&metrics)),
            Some(Pattern::Flatliner)
        );
    }
}
