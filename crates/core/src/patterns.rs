//! The 8 time-related patterns of schema evolution in 3 families (§4).
//!
//! Each pattern is an executable predicate over the quantized profile
//! ([`Labels`]). The definitions use exactly the four defining features of
//! the paper: birth point class, top-band point class, birth→top interval
//! class, and the active-growth-months bucket.
//!
//! The definitions are pairwise **disjoint** (verified by tests and by
//! `validate::domain`), but not **complete**: real histories occasionally
//! fall outside every definition — the paper keeps such projects in the
//! pattern they resemble most and reports them as *exceptions* (Table 2).
//! [`classify_nearest`] implements that "most-resembled" assignment.

use serde::{Deserialize, Serialize};

use crate::quantize::{IntervalClass, Labels, TimepointClass};

/// The three pattern families (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Focused change around schema birth, then freeze:
    /// Flatliner, Radical Sign, Sigmoid, Late Riser.
    BeQuickOrBeDead,
    /// Regular steps of change: Quantum Steps, Regularly Curated.
    StairwayToHeaven,
    /// Change (re)starting late in the project's life:
    /// Siesta, Smoking Funnel.
    ScaredToFallAsleepAgain,
}

impl Family {
    /// All families, in paper order.
    pub const ALL: [Family; 3] = [
        Family::BeQuickOrBeDead,
        Family::StairwayToHeaven,
        Family::ScaredToFallAsleepAgain,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Family::BeQuickOrBeDead => "Be Quick or Be Dead",
            Family::StairwayToHeaven => "Stairway to Heaven",
            Family::ScaredToFallAsleepAgain => "Scared to Fall Asleep Again",
        }
    }
}

/// The eight time-related patterns of schema evolution (§4.1–§4.8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// §4.1 — born at V⁰ₚ and immediately frozen; a flat line.
    Flatliner,
    /// §4.2 — born early, a sharp vault to the top, then a long flat tail.
    RadicalSign,
    /// §4.3 — born mid-life, sharp rise at birth, long frozen tail.
    Sigmoid,
    /// §4.4 — born late, the vault *is* the schema's whole life.
    LateRiser,
    /// §4.5 — few (≤ 3) focused steps between birth and top-band.
    QuantumSteps,
    /// §4.6 — many (> 3) steps of consistent maintenance.
    RegularlyCurated,
    /// §4.7 — born early, long sleep, change returns late in life.
    Siesta,
    /// §4.8 — born mid-life and regularly evolved afterwards.
    SmokingFunnel,
}

impl Pattern {
    /// All patterns, in paper order.
    pub const ALL: [Pattern; 8] = [
        Pattern::Flatliner,
        Pattern::RadicalSign,
        Pattern::Sigmoid,
        Pattern::LateRiser,
        Pattern::QuantumSteps,
        Pattern::RegularlyCurated,
        Pattern::Siesta,
        Pattern::SmokingFunnel,
    ];

    /// The family the pattern belongs to.
    pub fn family(self) -> Family {
        match self {
            Pattern::Flatliner | Pattern::RadicalSign | Pattern::Sigmoid | Pattern::LateRiser => {
                Family::BeQuickOrBeDead
            }
            Pattern::QuantumSteps | Pattern::RegularlyCurated => Family::StairwayToHeaven,
            Pattern::Siesta | Pattern::SmokingFunnel => Family::ScaredToFallAsleepAgain,
        }
    }

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Flatliner => "Flatliner",
            Pattern::RadicalSign => "Radical Sign",
            Pattern::Sigmoid => "Sigmoid",
            Pattern::LateRiser => "Late Riser",
            Pattern::QuantumSteps => "Quantum Steps",
            Pattern::RegularlyCurated => "Regularly Curated",
            Pattern::Siesta => "Siesta",
            Pattern::SmokingFunnel => "Smoking Funnel",
        }
    }

    /// Index in [`Pattern::ALL`] (stable ordinal for tables and trees).
    pub fn ordinal(self) -> usize {
        Pattern::ALL
            .iter()
            .position(|p| *p == self)
            .expect("Pattern::ALL lists every variant, so ordinal() is total")
    }

    /// Parses a pattern from its paper name, case-insensitively and
    /// ignoring spaces/hyphens/underscores, so user-facing surfaces (CLI
    /// arguments, HTTP query strings) accept `"Radical Sign"`,
    /// `"radical-sign"` and `"radicalsign"` alike.
    pub fn from_name(name: &str) -> Option<Pattern> {
        let fold = |s: &str| -> String {
            s.chars()
                .filter(|c| !matches!(c, ' ' | '-' | '_'))
                .map(|c| c.to_ascii_lowercase())
                .collect()
        };
        let wanted = fold(name);
        Pattern::ALL
            .into_iter()
            .find(|p| fold(p.name()) == wanted)
    }

    /// The strict definition (§4): does the quantized profile satisfy this
    /// pattern's defining clauses?
    pub fn matches(self, l: &Labels) -> bool {
        self.violations(l) == 0
    }

    /// Weighted count of defining clauses the profile violates
    /// (0 = strict match). Used by [`classify_nearest`] to mimic the
    /// paper's handling of exceptions ("the project remained in the pattern
    /// to which it was originally assigned" when it *seems more related*
    /// despite a violation).
    ///
    /// Weights reflect how strongly a clause shapes the line: the two
    /// timing endpoints (birth, top-band) weigh 3 each, the change rate
    /// (active growth months, the sole QS/RC discriminator) weighs 2, and
    /// the interval class — largely implied by the endpoints — weighs 1.
    /// With these weights the nearest pattern of every exception profile
    /// reported in §5.2 agrees with the authors' manual assignment.
    pub fn violations(self, l: &Labels) -> u32 {
        use IntervalClass as I;
        use TimepointClass as T;
        const W_POINT: u32 = 3;
        const W_AGM: u32 = 2;
        const W_INTERVAL: u32 = 1;
        let birth = l.birth_point;
        let top = l.topband_point;
        let iv = l.interval_birth_to_top;
        let agm = l.agm_bucket(); // 0 → 0, 1 → 1..=3, 2 → >3
        let b = |ok: bool, w: u32| if ok { 0 } else { w };
        match self {
            // Def 4.1: birth at V0 ∧ top-band at V0.
            Pattern::Flatliner => b(birth == T::V0, W_POINT) + b(top == T::V0, W_POINT),
            // Def 4.2: birth V0-or-early ∧ top-band early.
            Pattern::RadicalSign => {
                b(matches!(birth, T::V0 | T::Early), W_POINT) + b(top == T::Early, W_POINT)
            }
            // Def 4.3: birth middle ∧ top middle ∧ interval zero-or-soon.
            Pattern::Sigmoid => {
                b(birth == T::Middle, W_POINT)
                    + b(top == T::Middle, W_POINT)
                    + b(matches!(iv, I::Zero | I::Soon), W_INTERVAL)
            }
            // Def 4.4: birth late ∧ top late ∧ interval zero-or-soon.
            Pattern::LateRiser => {
                b(birth == T::Late, W_POINT)
                    + b(top == T::Late, W_POINT)
                    + b(matches!(iv, I::Zero | I::Soon), W_INTERVAL)
            }
            // Def 4.5: ≤3 active growth months ∧ (early→middle | middle→late).
            Pattern::QuantumSteps => {
                let variant = (matches!(birth, T::V0 | T::Early) && top == T::Middle)
                    || (birth == T::Middle && top == T::Late);
                b(agm <= 1, W_AGM) + b(variant, W_POINT)
            }
            // Def 4.6: >3 active growth months ∧ (early→{middle,late} | middle→late).
            Pattern::RegularlyCurated => {
                let variant = (matches!(birth, T::V0 | T::Early)
                    && matches!(top, T::Middle | T::Late))
                    || (birth == T::Middle && top == T::Late);
                b(agm == 2, W_AGM) + b(variant, W_POINT)
            }
            // Def 4.7: birth V0-or-early ∧ top late ∧ interval very long ∧ ≤3 AGM.
            Pattern::Siesta => {
                b(matches!(birth, T::V0 | T::Early), W_POINT)
                    + b(top == T::Late, W_POINT)
                    + b(iv == I::VeryLong, W_INTERVAL)
                    + b(agm <= 1, W_AGM)
            }
            // Def 4.8: birth middle ∧ top middle ∧ interval fair ∧ >3 AGM.
            Pattern::SmokingFunnel => {
                b(birth == T::Middle, W_POINT)
                    + b(top == T::Middle, W_POINT)
                    + b(iv == I::Fair, W_INTERVAL)
                    + b(agm == 2, W_AGM)
            }
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies a quantized profile by the strict §4 definitions.
///
/// Returns `None` when no definition matches (an *exception* profile —
/// see [`classify_nearest`]). The definitions are pairwise disjoint, so at
/// most one pattern can match; this is asserted in debug builds.
pub fn classify(l: &Labels) -> Option<Pattern> {
    let mut hit = None;
    for p in Pattern::ALL {
        if p.matches(l) {
            debug_assert!(
                hit.is_none(),
                "pattern definitions must be disjoint; {l:?} matches both {hit:?} and {p:?}"
            );
            hit = Some(p);
            if !cfg!(debug_assertions) {
                break;
            }
        }
    }
    hit
}

/// Finds the pattern whose definition the profile violates least, with the
/// number of violated clauses. A result of `(p, 0)` is a strict match.
/// Ties break in [`Pattern::ALL`] order (deterministic).
pub fn classify_nearest(l: &Labels) -> (Pattern, u32) {
    Pattern::ALL
        .iter()
        .map(|&p| (p, p.violations(l)))
        .min_by_key(|&(p, v)| (v, p.ordinal()))
        .expect("Pattern::ALL is non-empty, so a minimum always exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{ActiveGrowthClass, ActivePupClass, BirthVolumeClass, TailClass};

    #[test]
    fn from_name_roundtrips_and_normalizes() {
        for p in Pattern::ALL {
            assert_eq!(Pattern::from_name(p.name()), Some(p));
        }
        assert_eq!(Pattern::from_name("radical-sign"), Some(Pattern::RadicalSign));
        assert_eq!(Pattern::from_name("SMOKING_FUNNEL"), Some(Pattern::SmokingFunnel));
        assert_eq!(Pattern::from_name("flatliner"), Some(Pattern::Flatliner));
        assert_eq!(Pattern::from_name("no such pattern"), None);
    }

    fn labels(birth: TimepointClass, top: TimepointClass, iv: IntervalClass, agm: usize) -> Labels {
        Labels {
            birth_volume: BirthVolumeClass::Fair,
            birth_point: birth,
            topband_point: top,
            interval_birth_to_top: iv,
            interval_top_to_end: TailClass::Fair,
            active_growth: if agm == 0 {
                ActiveGrowthClass::Zero
            } else {
                ActiveGrowthClass::Few
            },
            active_pup: ActivePupClass::Zero,
            active_growth_months: agm,
            has_single_vault: matches!(iv, IntervalClass::Zero | IntervalClass::Soon),
        }
    }

    use IntervalClass as I;
    use TimepointClass as T;

    #[test]
    fn flatliner_definition() {
        assert_eq!(
            classify(&labels(T::V0, T::V0, I::Zero, 0)),
            Some(Pattern::Flatliner)
        );
    }

    #[test]
    fn radical_sign_definition() {
        assert_eq!(
            classify(&labels(T::V0, T::Early, I::Soon, 0)),
            Some(Pattern::RadicalSign)
        );
        assert_eq!(
            classify(&labels(T::Early, T::Early, I::Zero, 1)),
            Some(Pattern::RadicalSign)
        );
    }

    #[test]
    fn sigmoid_definition() {
        assert_eq!(
            classify(&labels(T::Middle, T::Middle, I::Zero, 0)),
            Some(Pattern::Sigmoid)
        );
        assert_eq!(
            classify(&labels(T::Middle, T::Middle, I::Soon, 1)),
            Some(Pattern::Sigmoid)
        );
    }

    #[test]
    fn late_riser_definition() {
        assert_eq!(
            classify(&labels(T::Late, T::Late, I::Zero, 0)),
            Some(Pattern::LateRiser)
        );
    }

    #[test]
    fn quantum_steps_both_variants() {
        assert_eq!(
            classify(&labels(T::Early, T::Middle, I::Fair, 2)),
            Some(Pattern::QuantumSteps)
        );
        assert_eq!(
            classify(&labels(T::Middle, T::Late, I::Long, 3)),
            Some(Pattern::QuantumSteps)
        );
        assert_eq!(
            classify(&labels(T::V0, T::Middle, I::Long, 0)),
            Some(Pattern::QuantumSteps)
        );
    }

    #[test]
    fn regularly_curated_both_variants() {
        assert_eq!(
            classify(&labels(T::V0, T::Middle, I::Long, 7)),
            Some(Pattern::RegularlyCurated)
        );
        assert_eq!(
            classify(&labels(T::Early, T::Late, I::Long, 5)),
            Some(Pattern::RegularlyCurated)
        );
        assert_eq!(
            classify(&labels(T::Middle, T::Late, I::Fair, 4)),
            Some(Pattern::RegularlyCurated)
        );
    }

    #[test]
    fn siesta_definition() {
        assert_eq!(
            classify(&labels(T::V0, T::Late, I::VeryLong, 1)),
            Some(Pattern::Siesta)
        );
        assert_eq!(
            classify(&labels(T::Early, T::Late, I::VeryLong, 3)),
            Some(Pattern::Siesta)
        );
    }

    #[test]
    fn smoking_funnel_definition() {
        assert_eq!(
            classify(&labels(T::Middle, T::Middle, I::Fair, 6)),
            Some(Pattern::SmokingFunnel)
        );
    }

    #[test]
    fn definitions_are_pairwise_disjoint_over_full_domain() {
        // Exhaustive sweep of the defining feature space.
        for &birth in &TimepointClass::ALL {
            for &top in &TimepointClass::ALL {
                for &iv in &IntervalClass::ALL {
                    for agm in [0usize, 1, 2, 3, 4, 10] {
                        let l = labels(birth, top, iv, agm);
                        let matching: Vec<Pattern> = Pattern::ALL
                            .iter()
                            .copied()
                            .filter(|p| p.matches(&l))
                            .collect();
                        assert!(
                            matching.len() <= 1,
                            "overlap at {birth:?}/{top:?}/{iv:?}/agm={agm}: {matching:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn uncovered_profiles_exist_and_nearest_resolves_them() {
        // Early birth, late top, interval only Long (not VeryLong), AGM ≤ 3:
        // the paper reports exactly this as a Siesta exception.
        let l = labels(T::Early, T::Late, I::Long, 2);
        assert_eq!(classify(&l), None);
        let (p, v) = classify_nearest(&l);
        assert_eq!(p, Pattern::Siesta);
        assert_eq!(v, 1);
    }

    #[test]
    fn nearest_on_strict_match_is_zero_violations() {
        let l = labels(T::V0, T::V0, I::Zero, 0);
        assert_eq!(classify_nearest(&l), (Pattern::Flatliner, 0));
    }

    #[test]
    fn families_partition_the_patterns() {
        let counts: Vec<usize> = Family::ALL
            .iter()
            .map(|f| Pattern::ALL.iter().filter(|p| p.family() == *f).count())
            .collect();
        assert_eq!(counts, vec![4, 2, 2]);
    }

    #[test]
    fn names_and_ordinals_are_stable() {
        assert_eq!(Pattern::Flatliner.ordinal(), 0);
        assert_eq!(Pattern::SmokingFunnel.ordinal(), 7);
        assert_eq!(Pattern::RadicalSign.to_string(), "Radical Sign");
        assert_eq!(
            Family::ScaredToFallAsleepAgain.to_string(),
            "Scared to Fall Asleep Again"
        );
    }
}
