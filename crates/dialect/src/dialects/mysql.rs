//! MySQL: backticked identifiers, single-statement `MODIFY COLUMN`
//! redefinitions, `DROP PRIMARY KEY` / `DROP FOREIGN KEY` forms.

use super::{
    column_sql, create_table_sql, foreign_key_clause, join_quoted, quote_backtick, refuse, AutoInc,
    Dialect,
};
use crate::ops::DiffOp;
use crate::plan::UnsupportedDiffOp;

/// The MySQL dialect.
///
/// Identifiers are always backticked, a column change is one `MODIFY
/// COLUMN` carrying the full target definition, keys use the keyword forms
/// (`DROP PRIMARY KEY`, `DROP FOREIGN KEY <name>`), and auto-increment is
/// the `AUTO_INCREMENT` column keyword. This is also the corpus ingestion
/// dialect (see [`ingest_dialect`](super::ingest_dialect)).
pub struct Mysql;

const AUTO_INC: AutoInc = AutoInc::Keyword("AUTO_INCREMENT");

impl Dialect for Mysql {
    fn name(&self) -> &'static str {
        "mysql"
    }

    fn keyword(&self) -> &'static str {
        "mysql"
    }

    fn hint(&self) -> &'static str {
        "mysql cannot drop unnamed foreign-key or unique constraints in place; \
         allow table rebuilds (omit --no-rebuild) to express these"
    }

    fn quote_ident(&self, ident: &str) -> String {
        quote_backtick(ident)
    }

    fn render_op(&self, op: &DiffOp) -> Result<Vec<String>, UnsupportedDiffOp> {
        let q = |s: &str| self.quote_ident(s);
        let err = |reason: &str| refuse(self.name(), op, reason);
        match op {
            DiffOp::CreateTable(t) => create_table_sql(self, &AUTO_INC, t)
                .map(|s| vec![s])
                .map_err(|r| err(&r)),
            DiffOp::DropTable(n) => Ok(vec![format!("DROP TABLE {};", q(n.as_str()))]),
            DiffOp::AddColumn { table, attr } => column_sql(self, &AUTO_INC, attr)
                .map(|c| vec![format!("ALTER TABLE {} ADD COLUMN {};", q(table.as_str()), c)])
                .map_err(|r| err(&r)),
            DiffOp::DropColumn { table, column } => Ok(vec![format!(
                "ALTER TABLE {} DROP COLUMN {};",
                q(table.as_str()),
                q(column.as_str())
            )]),
            DiffOp::AlterColumn { table, to, .. } => column_sql(self, &AUTO_INC, to)
                .map(|c| {
                    vec![format!(
                        "ALTER TABLE {} MODIFY COLUMN {};",
                        q(table.as_str()),
                        c
                    )]
                })
                .map_err(|r| err(&r)),
            DiffOp::SetPrimaryKey { table, from, to } => {
                let mut stmts = Vec::new();
                if !from.is_empty() {
                    stmts.push(format!("ALTER TABLE {} DROP PRIMARY KEY;", q(table.as_str())));
                }
                if !to.is_empty() {
                    stmts.push(format!(
                        "ALTER TABLE {} ADD PRIMARY KEY ({});",
                        q(table.as_str()),
                        join_quoted(to, &q)
                    ));
                }
                Ok(stmts)
            }
            DiffOp::AddForeignKey { table, fk } => Ok(vec![format!(
                "ALTER TABLE {} ADD {};",
                q(table.as_str()),
                foreign_key_clause(self, fk)
            )]),
            DiffOp::DropForeignKey { table, fk } => match &fk.name {
                Some(n) => Ok(vec![format!(
                    "ALTER TABLE {} DROP FOREIGN KEY {};",
                    q(table.as_str()),
                    q(n.as_str())
                )]),
                None => Err(err("the constraint was declared without a name")),
            },
            DiffOp::AddUnique { table, columns } => Ok(vec![format!(
                "ALTER TABLE {} ADD UNIQUE ({});",
                q(table.as_str()),
                join_quoted(columns, &q)
            )]),
            DiffOp::DropUnique { .. } => {
                Err(err("unique constraints in the logical schema are unnamed"))
            }
            DiffOp::CreateView(v) => Ok(vec![format!(
                "CREATE VIEW {} AS {};",
                q(v.name.as_str()),
                v.definition
            )]),
            DiffOp::DropView(n) => Ok(vec![format!("DROP VIEW {};", q(n.as_str()))]),
        }
    }
}
