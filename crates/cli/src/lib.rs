#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-cli
//!
//! The `schemachron` command-line tool: analyze real schema-history
//! directories, generate/export the calibrated corpus, regenerate the
//! paper's experiments, and draw evolution charts.
//!
//! ```text
//! schemachron analyze <dir> [--snapshot] [--chart] [--svg <file>]
//! schemachron study <root-dir> [--snapshot]
//! schemachron diff <old.sql> <new.sql>
//! schemachron corpus generate --out <dir> [--seed N] [--jobs N]
//! schemachron corpus summary [--seed N] [--jobs N]
//! schemachron corpus csv --out <file> [--seed N] [--jobs N]
//! schemachron corpus verify
//! schemachron lint [--seed N] [--jobs N] [--format json] [--deny warnings] [--dir <dir>]
//! schemachron experiments [<id> | all] [--seed N] [--jobs N]
//! schemachron asof <project> --at YYYY-MM [--diff YYYY-MM] [--provenance SUBJ]
//! schemachron safety <project> [--seed N] [--jobs N] [--format json]
//! schemachron chart <dir> [--snapshot]
//! schemachron chaos [--seed N] [--fault-seed N] [--rate R] [--site S]...
//! schemachron help
//! ```
//!
//! The library form ([`run`]) takes the argument vector and an output sink,
//! which keeps the whole tool unit-testable.

mod chaos;
mod stream_cli;

use std::io::Write;
use std::path::{Path, PathBuf};

use schemachron_bench::context::ExpContext;
use schemachron_bench::experiments as exp;
use schemachron_chart::ascii::{render_annotated, AsciiChart};
use schemachron_chart::svg::SvgChart;
use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_core::{classify, classify_nearest};
use schemachron_corpus::io::{load_project_dir, write_corpus_dir, write_metrics_csv};
use schemachron_corpus::Corpus;
use schemachron_history::IngestMode;

/// Exit code for general failures (bad arguments, missing files, ...).
pub const EXIT_FAILURE: u8 = 1;
/// Exit code for `serve` failing to bind its address — distinct so
/// supervisors can tell "port problem" from "bad invocation".
pub const EXIT_BIND: u8 = 2;
/// Exit code when a migration plan cannot be produced: the dialect refused
/// an op (under `--no-rebuild`) or the plan did not replay faithfully.
pub const EXIT_PLAN: u8 = 2;
/// Exit code when `plan --deny-lossy` refuses a plan the safety analyzer
/// classifies as lossy — distinct from [`EXIT_PLAN`] so callers can tell
/// "the dialect cannot express this" from "the plan would destroy data".
pub const EXIT_LOSSY: u8 = 3;

/// CLI failure: message for the user plus the process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code ([`EXIT_FAILURE`] unless a variant applies).
    pub code: u8,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_FAILURE,
        }
    }

    fn with_code(message: impl Into<String>, code: u8) -> Self {
        CliError {
            message: message.into(),
            code,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<schemachron_corpus::LoadError> for CliError {
    fn from(e: schemachron_corpus::LoadError) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<schemachron_corpus::SpecError> for CliError {
    fn from(e: schemachron_corpus::SpecError) -> Self {
        CliError::new(format!(
            "invalid card spec: {e}\n\
             hint: adjust the card's duration/birth/top plan until the \
             schedule is feasible (see `corpus verify`)"
        ))
    }
}

type CliResult = Result<(), CliError>;

/// Runs the CLI with `args` (excluding the program name), writing output to
/// `out`. Returns `Err` with a message on failure.
pub fn run(args: &[String], out: &mut dyn Write) -> CliResult {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => {
            let _ = writeln!(out, "{}", usage());
            Ok(())
        }
        Some("analyze") => analyze(&args[1..], out),
        Some("study") => study(&args[1..], out),
        Some("diff") => diff_cmd(&args[1..], out),
        Some("lint") => lint(&args[1..], out),
        Some("corpus") => corpus(&args[1..], out),
        Some("experiments") => experiments(&args[1..], out),
        Some("asof") => asof(&args[1..], out),
        Some("plan") => plan_cmd(&args[1..], out),
        Some("safety") => safety_cmd(&args[1..], out),
        Some("serve") => serve(&args[1..], out),
        Some("append") => stream_cli::run_append(&args[1..], out),
        Some("watch") => stream_cli::run_watch(&args[1..], out),
        Some("chart") => chart(&args[1..], out),
        Some("chaos") => chaos::run_chaos(&args[1..], out),
        Some(other) => Err(CliError::new(format!(
            "unknown command `{other}`\n{}",
            usage()
        ))),
    }
}

/// The usage text.
pub fn usage() -> &'static str {
    "schemachron — mining time-related patterns of schema evolution\n\
     \n\
     USAGE:\n\
     \x20 schemachron analyze <dir> [--snapshot] [--chart] [--svg <file>]\n\
     \x20     Analyze a directory of dated .sql files (NNNN_YYYY-MM-DD.sql) plus\n\
     \x20     an optional source.csv; prints metrics, labels and the pattern.\n\
     \x20 schemachron study <root-dir> [--snapshot]\n\
     \x20     Run the whole study over a directory of project histories: per-\n\
     \x20     pattern populations, exception census, birth-point probabilities.\n\
     \x20 schemachron corpus generate --out <dir> [--seed N] [--jobs N]\n\
     \x20                             [--scale N]\n\
     \x20     Materialize the 151-project corpus as SQL history directories.\n\
     \x20 schemachron corpus summary [--seed N] [--jobs N] [--scale N]\n\
     \x20     Print the corpus pattern populations.\n\
     \x20 schemachron corpus csv --out <file> [--seed N] [--jobs N]\n\
     \x20                        [--scale N]\n\
     \x20     Export the measured per-project metrics as CSV.\n\
     \x20 schemachron corpus verify\n\
     \x20     Run the static spec linter over every calibrated card (field\n\
     \x20     domains, plan feasibility, exception flags, corpus invariants)\n\
     \x20     and exit non-zero with a diagnostic summary on any error.\n\
     \x20 schemachron lint [--seed N] [--jobs N] [--format json]\n\
     \x20                  [--deny warnings] [--dir <dir>]\n\
     \x20     Statically analyze the corpus without executing the pipeline:\n\
     \x20     DDL flow (L0xx), card specs (S0xx) and stage-cache coherence\n\
     \x20     (H0xx). With --dir, lint one on-disk .sql history instead.\n\
     \x20     Exits 1 on errors (with --deny warnings, also on warnings).\n\
     \x20 schemachron experiments [<id> | all] [--seed N] [--jobs N]\n\
     \x20     Regenerate the paper's tables/figures and the beyond-paper\n\
     \x20     analyses (exp_table1 ... exp_stats63, exp_ablation, exp_tables,\n\
     \x20     exp_coevolution, exp_forecast, exp_safety).\n\
     \x20 schemachron asof <project> --at YYYY-MM [--diff YYYY-MM]\n\
     \x20                  [--provenance TABLE[.COLUMN]] [--k N] [--seed N]\n\
     \x20                  [--jobs N] [--format json]\n\
     \x20     Time-travel queries over one corpus project's history: the\n\
     \x20     schema as of a month, the attribute-level diff between --at and\n\
     \x20     --diff, or the provenance (introduction/ejection lineage) of a\n\
     \x20     table or column. --k sets the checkpoint spacing in months\n\
     \x20     (default 12). JSON output is byte-identical to the serve\n\
     \x20     routes' answers for the same query.\n\
     \x20 schemachron plan <project> --from YYYY-MM --to YYYY-MM\n\
     \x20                  --dialect pg|mysql|sqlite [--no-rebuild] [--k N]\n\
     \x20                  [--seed N] [--jobs N] [--format json]\n\
     \x20                  [--deny-lossy] [--explain-safety]\n\
     \x20     Plan the forward migration between two months of a corpus\n\
     \x20     project's history: the DDL script that evolves schema(from)\n\
     \x20     into schema(to), rendered in the chosen dialect and verified\n\
     \x20     by replaying it through that dialect's parser. Ops a dialect\n\
     \x20     cannot express become whole-table rebuilds unless\n\
     \x20     --no-rebuild is given, in which case the typed refusal is\n\
     \x20     reported and the exit code is 2. Plans that destroy data\n\
     \x20     (drops, rebuilds) always disclose it via the `lossy` field;\n\
     \x20     --deny-lossy refuses such plans with exit code 3, and\n\
     \x20     --explain-safety appends the safety classification of the\n\
     \x20     plan's worst op. JSON output is byte-identical to the serve\n\
     \x20     plan route's answer for the same query.\n\
     \x20 schemachron safety <project> [--seed N] [--jobs N] [--format json]\n\
     \x20     Static data-loss audit of one corpus project's whole history:\n\
     \x20     every migration op classified on the lossless < recoverable <\n\
     \x20     lossy lattice, with the synthesized (machine-checked) inverse\n\
     \x20     for every invertible op and the column-lineage summary. JSON\n\
     \x20     output is byte-identical to GET /project/{id}/safety.\n\
     \x20 schemachron serve [--addr HOST:PORT] [--seed N] [--jobs N]\n\
     \x20                   [--deadline-ms MS] [--stream-dir DIR]\n\
     \x20     Serve corpora, patterns and experiments over HTTP/JSON (default\n\
     \x20     address 127.0.0.1:8080; GET / lists the routes). Every request\n\
     \x20     runs behind a deadline and a per-route circuit breaker; /health\n\
     \x20     reports breaker states. POST /project/{id}/commit appends live\n\
     \x20     commits (WAL-durable before the ack) and GET /changes streams\n\
     \x20     the resulting pattern transitions; --stream-dir persists the\n\
     \x20     WALs across restarts. Honors SCHEMACHRON_FAULTS. Ctrl-C stops\n\
     \x20     gracefully.\n\
     \x20 schemachron append <project> --seq N --date YYYY-MM-DD\n\
     \x20                    (--sql DDL | --file F) --wal-dir DIR\n\
     \x20                    [--format json]\n\
     \x20     Append one commit to a project's crash-safe WAL and print the\n\
     \x20     acknowledgement (with --format json, byte-identical to the\n\
     \x20     POST /project/{id}/commit answer). Idempotent via --seq:\n\
     \x20     duplicates are safe no-ops, gaps are refused with the expected\n\
     \x20     sequence.\n\
     \x20 schemachron watch --dir <src> --wal-dir DIR [--project NAME]\n\
     \x20                   [--interval-ms MS] [--once]\n\
     \x20     Poll a directory of dated .sql files (NNNN_YYYY-MM-DD.sql) and\n\
     \x20     re-ingest new files into the streaming store, with debouncing\n\
     \x20     and bounded retries. --once runs a single scan and exits.\n\
     \x20 schemachron chaos [--seed N] [--fault-seed N] [--rate R] [--site S]...\n\
     \x20                   [--slow-ms MS] [--jobs N]\n\
     \x20     Deterministic fault drill: run ingest, materialization, goldens,\n\
     \x20     the serve guard and the streaming WAL under seed-keyed injected\n\
     \x20     faults (sites: io::write, pipeline::stage, par_map::worker,\n\
     \x20     serve::request, serve::conn, asof::checkpoint,\n\
     \x20     stream::wal_append, stream::wal_fsync, stream::feed_emit) and\n\
     \x20     assert recovery. The report is byte-identical at any --jobs\n\
     \x20     level; exits non-zero on invariant violations.\n\
     \x20 schemachron chart <dir> [--snapshot]\n\
     \x20     Draw the cumulative schema/source chart of a project directory.\n\
     \x20 schemachron diff <old.sql> <new.sql>\n\
     \x20     Parse two schema dumps and report the attribute-level changes.\n\
     \n\
     \x20 --jobs N controls the corpus-ingestion worker count — and, for\n\
     \x20 `serve`, the HTTP worker pool (default: the SCHEMACHRON_JOBS\n\
     \x20 environment variable, else available parallelism).\n\
     \x20 --scale N expands the corpus build paths to N stratified cycles of\n\
     \x20 the 151 calibrated cards (N x 151 projects) with the paper's joint\n\
     \x20 label distribution preserved exactly."
}

fn flag(args: &[&str], name: &str) -> bool {
    args.contains(&name)
}

fn opt_value<'a>(args: &'a [&'a str], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| *a == name)
        .and_then(|i| args.get(i + 1))
        .copied()
}

fn seed_of(args: &[&str]) -> Result<u64, CliError> {
    match opt_value(args, "--seed") {
        None => Ok(schemachron_bench::DEFAULT_SEED),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::new(format!("invalid --seed value `{v}`"))),
    }
}

/// Parses `--jobs N` and installs it as the process-wide worker count for
/// corpus generation. `N` must be a positive integer.
fn apply_jobs(args: &[&str]) -> Result<(), CliError> {
    let Some(v) = opt_value(args, "--jobs") else {
        return Ok(());
    };
    match v.parse::<std::num::NonZeroUsize>() {
        Ok(n) => {
            schemachron_corpus::set_jobs(Some(n));
            Ok(())
        }
        Err(_) => Err(CliError::new(format!(
            "invalid --jobs value `{v}` (expected a positive integer)"
        ))),
    }
}

/// Finds the first positional argument (not an option, not an option's
/// value).
fn positional<'a>(argv: &'a [&'a str]) -> Option<&'a str> {
    let mut skip_next = false;
    for a in argv {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = takes_value(a);
            continue;
        }
        return Some(a);
    }
    None
}

fn takes_value(opt: &str) -> bool {
    matches!(
        opt,
        "--seed"
            | "--out"
            | "--svg"
            | "--jobs"
            | "--scale"
            | "--addr"
            | "--format"
            | "--deny"
            | "--dir"
            | "--fault-seed"
            | "--rate"
            | "--site"
            | "--slow-ms"
            | "--deadline-ms"
            | "--at"
            | "--diff"
            | "--provenance"
            | "--k"
            | "--from"
            | "--to"
            | "--dialect"
            | "--stream-dir"
            | "--wal-dir"
            | "--seq"
            | "--date"
            | "--sql"
            | "--file"
            | "--project"
            | "--interval-ms"
    )
}

/// The default `schemachron serve` listen address.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:8080";

/// Parses and validates `--addr` the same way `--jobs` is validated:
/// eagerly, with the offending value echoed back.
fn addr_of(args: &[&str]) -> Result<std::net::SocketAddr, CliError> {
    let raw = opt_value(args, "--addr").unwrap_or(DEFAULT_SERVE_ADDR);
    raw.parse().map_err(|_| {
        CliError::new(format!(
            "invalid --addr value `{raw}` (expected HOST:PORT, e.g. 127.0.0.1:8080)"
        ))
    })
}

/// `schemachron serve` — run the HTTP/JSON query service until SIGINT.
fn serve(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let addr = addr_of(&argv)?;
    let deadline = match opt_value(&argv, "--deadline-ms") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) if ms > 0 => Some(std::time::Duration::from_millis(ms)),
            _ => {
                return Err(CliError::new(format!(
                    "invalid --deadline-ms value `{v}` (expected a positive integer)"
                )))
            }
        },
    };
    // Operators opt into fault injection via the environment (never a
    // default): SCHEMACHRON_FAULTS="rate=0.05;seed=7;sites=serve::request".
    let faults_active = schemachron_fault::install_from_env().map_err(CliError::new)?;
    let mut config = schemachron_serve::ServerConfig {
        addr,
        jobs: schemachron_corpus::effective_jobs().max(2),
        seed,
        ..schemachron_serve::ServerConfig::default()
    };
    if let Some(d) = deadline {
        config.request_deadline = d;
    }
    config.stream_dir = opt_value(&argv, "--stream-dir").map(PathBuf::from);
    let jobs = config.jobs;
    let server = schemachron_serve::Server::bind(config).map_err(|e| bind_error(addr, &e))?;
    server.install_signal_handler();
    let _ = writeln!(
        out,
        "serving on http://{} (seed {seed}, {jobs} workers); GET / lists routes; Ctrl-C stops",
        server.local_addr()
    );
    if faults_active {
        let _ = writeln!(
            out,
            "fault injection ACTIVE from {} — not for production traffic",
            schemachron_fault::ENV_VAR
        );
    }
    out.flush()?;
    let served = server.run()?;
    let _ = writeln!(out, "shut down after {served} requests");
    Ok(())
}

/// Maps a bind failure to [`EXIT_BIND`] with a one-line actionable hint.
fn bind_error(addr: std::net::SocketAddr, e: &std::io::Error) -> CliError {
    use std::io::ErrorKind;
    let hint = match e.kind() {
        ErrorKind::AddrInUse => {
            "hint: the address is already in use — is another `schemachron serve` \
             running? Pick a free port with --addr"
        }
        ErrorKind::PermissionDenied => {
            "hint: permission denied — ports below 1024 need elevated privileges; \
             pick a higher port with --addr"
        }
        ErrorKind::AddrNotAvailable => {
            "hint: that address does not belong to this machine — try 127.0.0.1 or 0.0.0.0"
        }
        _ => "hint: check the --addr value",
    };
    CliError::with_code(format!("serve: cannot bind {addr}: {e}\n{hint}"), EXIT_BIND)
}

fn analyze(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let dir = positional(&argv).ok_or_else(|| CliError::new("analyze: missing <dir>"))?;
    let mode = if flag(&argv, "--snapshot") {
        IngestMode::Snapshot
    } else {
        IngestMode::Migration
    };
    let project =
        load_project_dir(Path::new(dir), mode).map_err(|e| CliError::new(format!("{dir}: {e}")))?;
    let Some(metrics) = TimeMetrics::from_project(&project) else {
        let _ = writeln!(out, "{}: no schema activity found", project.name());
        return Ok(());
    };
    let labels = Labels::from_metrics(&metrics);
    let _ = writeln!(out, "project: {}", project.name());
    let _ = writeln!(out, "{}", render_metrics(&metrics, &labels));
    match classify(&labels) {
        Some(p) => {
            let _ = writeln!(out, "pattern: {} (family: {})", p.name(), p.family());
        }
        None => {
            let (p, v) = classify_nearest(&labels);
            let _ = writeln!(
                out,
                "pattern: no strict match; nearest is {} (violation weight {v}) — an exception profile",
                p.name()
            );
        }
    }
    if flag(&argv, "--chart") {
        let art = render_annotated(
            &AsciiChart::default(),
            &project,
            metrics.birth_pct_pup,
            metrics.topband_pct_pup,
            metrics.has_single_vault,
        );
        let _ = writeln!(out, "\n{art}");
    }
    if let Some(svg_path) = opt_value(&argv, "--svg") {
        std::fs::write(svg_path, SvgChart::default().render(&project))?;
        let _ = writeln!(out, "SVG written to {svg_path}");
    }
    Ok(())
}

/// Renders the measured metrics and labels as an aligned block.
pub fn render_metrics(m: &TimeMetrics, l: &Labels) -> String {
    format!(
        "  PUP:                    {} months\n\
         \x20 schema birth:           month {} ({:.1}% of PUP) [{}]\n\
         \x20 volume at birth:        {:.1}% of total activity [{}]\n\
         \x20 top band (90%):         month {} ({:.1}% of PUP) [{}]\n\
         \x20 interval birth→top:     {:.1}% of PUP [{}]{}\n\
         \x20 interval top→end:       {:.1}% of PUP [{}]\n\
         \x20 active growth months:   {} [{} of growth, {} of PUP]\n\
         \x20 total activity:         {:.0} affected attributes ({} expansion / {} maintenance)",
        m.pup_months,
        m.birth_index,
        m.birth_pct_pup * 100.0,
        l.birth_point.label(),
        m.birth_volume_pct_total * 100.0,
        l.birth_volume.label(),
        m.topband_index,
        m.topband_pct_pup * 100.0,
        l.topband_point.label(),
        m.interval_birth_to_top_pct * 100.0,
        l.interval_birth_to_top.label(),
        if m.has_single_vault {
            " — a VAULT"
        } else {
            ""
        },
        m.interval_top_to_end_pct * 100.0,
        l.interval_top_to_end.label(),
        m.active_growth_months,
        l.active_growth.label(),
        l.active_pup.label(),
        m.total_activity,
        m.expansion_total,
        m.maintenance_total,
    )
}

/// Runs the whole study over a directory of project-history directories —
/// the shape `corpus generate` writes, and the shape a miner of real
/// repositories would produce.
fn study(args: &[String], out: &mut dyn Write) -> CliResult {
    use schemachron_core::predict::{BirthBucket, BirthPredictor};
    use schemachron_core::{Family, Pattern};

    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let root = positional(&argv).ok_or_else(|| CliError::new("study: missing <root-dir>"))?;
    let mode = if flag(&argv, "--snapshot") {
        IngestMode::Snapshot
    } else {
        IngestMode::Migration
    };

    let mut dirs: Vec<std::path::PathBuf> = std::fs::read_dir(root)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    if dirs.is_empty() {
        return Err(CliError::new(format!(
            "study: no project directories under {root}"
        )));
    }

    let mut populations: std::collections::BTreeMap<Pattern, usize> = Default::default();
    let mut exceptions: Vec<(String, Pattern)> = Vec::new();
    let mut birth_data: Vec<(usize, Pattern)> = Vec::new();
    let mut skipped = 0usize;
    for dir in &dirs {
        let project = match load_project_dir(dir, mode) {
            Ok(p) => p,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        let Some(metrics) = TimeMetrics::from_project(&project) else {
            skipped += 1;
            continue;
        };
        // The study excludes projects with a lifespan of 12 months or less.
        if metrics.pup_months <= 12 {
            skipped += 1;
            continue;
        }
        let labels = Labels::from_metrics(&metrics);
        let pattern = match classify(&labels) {
            Some(p) => p,
            None => {
                let (p, _) = classify_nearest(&labels);
                exceptions.push((project.name().to_owned(), p));
                p
            }
        };
        *populations.entry(pattern).or_insert(0) += 1;
        birth_data.push((metrics.birth_index, pattern));
    }

    let total: usize = populations.values().sum();
    let _ = writeln!(out, "study over {total} projects ({skipped} skipped):\n");
    for family in Family::ALL {
        let members: usize = Pattern::ALL
            .iter()
            .filter(|p| p.family() == family)
            .map(|p| populations.get(p).copied().unwrap_or(0))
            .sum();
        let _ = writeln!(out, "{} — {members} projects", family.name());
        for p in Pattern::ALL.iter().filter(|p| p.family() == family) {
            let _ = writeln!(
                out,
                "    {:<18} {:>4}",
                p.name(),
                populations.get(p).copied().unwrap_or(0)
            );
        }
    }
    if !exceptions.is_empty() {
        let _ = writeln!(out, "\nexception profiles (assigned to nearest pattern):");
        for (name, p) in &exceptions {
            let _ = writeln!(out, "    {name} → {}", p.name());
        }
    }
    let predictor = BirthPredictor::fit(&birth_data);
    let _ = writeln!(out, "\nP(sharp focused change | point of birth):");
    for bucket in BirthBucket::ALL {
        let _ = writeln!(
            out,
            "    {:<20} {:>3.0}%  ({} projects)",
            bucket.label(),
            predictor.rigidity_probability(bucket) * 100.0,
            predictor.bucket_total(bucket)
        );
    }
    Ok(())
}

/// Parses `--scale N` (stratified cycles of the 151 cards; default 1).
fn scale_of(args: &[&str]) -> Result<usize, CliError> {
    match opt_value(args, "--scale") {
        None => Ok(1),
        Some(v) => match v.parse::<std::num::NonZeroUsize>() {
            Ok(n) => Ok(n.get()),
            Err(_) => Err(CliError::new(format!(
                "--scale: expected a positive integer (whole 151-card cycles), got `{v}`"
            ))),
        },
    }
}

/// Builds the corpus the `corpus` subcommands operate on: the calibrated
/// 151 projects, or `scale` stratified cycles of them under `--scale`.
fn corpus_at_scale(seed: u64, scale: usize) -> Corpus {
    if scale == 1 {
        Corpus::generate(seed)
    } else {
        Corpus::generate_stratified(seed, scale)
    }
}

fn corpus(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let scale = scale_of(&argv)?;
    match argv.first() {
        Some(&"generate") => {
            let dir = opt_value(&argv, "--out")
                .ok_or_else(|| CliError::new("corpus generate: missing --out <dir>"))?;
            let c = corpus_at_scale(seed, scale);
            write_corpus_dir(&c, Path::new(dir))?;
            write_metrics_csv(&c, &PathBuf::from(dir).join("metrics.csv"))?;
            let _ = writeln!(
                out,
                "wrote {} project histories (+ metrics.csv) to {dir}",
                c.projects().len()
            );
            Ok(())
        }
        Some(&"summary") => {
            let c = corpus_at_scale(seed, scale);
            let _ = writeln!(out, "corpus seed {seed}: {} projects", c.projects().len());
            for p in schemachron_core::Pattern::ALL {
                let n = c.of_pattern(p).count();
                let exceptions = c.of_pattern(p).filter(|x| x.exception).count();
                let _ = writeln!(
                    out,
                    "  {:<18} {:>3} projects  ({} exceptions)",
                    p.name(),
                    n,
                    exceptions
                );
            }
            Ok(())
        }
        Some(&"csv") => {
            let file = opt_value(&argv, "--out")
                .ok_or_else(|| CliError::new("corpus csv: missing --out <file>"))?;
            let c = corpus_at_scale(seed, scale);
            write_metrics_csv(&c, Path::new(file))?;
            let _ = writeln!(
                out,
                "wrote metrics of {} projects to {file}",
                c.projects().len()
            );
            Ok(())
        }
        Some(&"verify") => {
            let cards = schemachron_corpus::cards::all_cards();
            let mut report = schemachron_lint::Report::new();
            for card in &cards {
                schemachron_lint::spec::lint_card(card, &mut report);
            }
            schemachron_lint::spec::lint_corpus_invariants(&cards, &mut report);
            report.sort();
            if report.failed(false) {
                return Err(CliError::new(format!(
                    "{}corpus verify failed ({})\n\
                     hint: every finding leads with its rule code — fix the \
                     named card spec or corpus aggregate",
                    report.render_human(),
                    report.summary_line()
                )));
            }
            let _ = writeln!(
                out,
                "verified {} cards: {}",
                cards.len(),
                report.summary_line()
            );
            Ok(())
        }
        _ => Err(CliError::new(
            "corpus: expected `generate`, `summary`, `csv` or `verify`",
        )),
    }
}

/// `schemachron lint` — static semantic analysis of the corpus (or one
/// on-disk history) without executing the measurement pipeline.
fn lint(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let json = match opt_value(&argv, "--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(CliError::new(format!(
                "invalid --format value `{other}` (expected `human` or `json`)"
            )))
        }
    };
    let deny_warnings = match opt_value(&argv, "--deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(CliError::new(format!(
                "invalid --deny value `{other}` (expected `warnings`)"
            )))
        }
    };
    let report = if let Some(dir) = opt_value(&argv, "--dir") {
        let mut r = schemachron_lint::Report::new();
        schemachron_lint::lint_dir(Path::new(dir), &mut r)
            .map_err(|e| CliError::new(format!("lint: cannot read `{dir}`: {e}")))?;
        r
    } else {
        let cards = schemachron_corpus::cards::all_cards();
        let opts = schemachron_lint::LintOptions {
            seed,
            ..schemachron_lint::LintOptions::default()
        };
        schemachron_lint::lint_cards(&cards, &opts)
    };
    let rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    let _ = write!(out, "{rendered}");
    if report.failed(deny_warnings) {
        return Err(CliError::new(format!("lint: {}", report.summary_line())));
    }
    Ok(())
}

/// The valid experiment ids, in paper order (re-exported from the bench
/// crate's registry — the single source also behind `schemachron serve`).
pub use schemachron_bench::experiments::EXPERIMENT_IDS;

fn experiments(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let which = positional(&argv).unwrap_or("all");
    // Validate the id before paying for the corpus build.
    if which != "all" && !EXPERIMENT_IDS.contains(&which) {
        return Err(CliError::new(format!(
            "unknown experiment `{which}`; valid ids: {} or `all`",
            EXPERIMENT_IDS.join(", ")
        )));
    }
    let ctx = ExpContext::new(seed);
    if which == "all" {
        for id in EXPERIMENT_IDS {
            let (text, _json) = exp::run_experiment(id, &ctx).expect("known id");
            let _ = writeln!(out, "{text}");
            let _ = writeln!(out, "{}", "=".repeat(78));
        }
    } else {
        let (text, _json) = exp::run_experiment(which, &ctx).expect("validated above");
        let _ = writeln!(out, "{text}");
    }
    Ok(())
}

/// `schemachron asof` — time-travel queries over one corpus project.
fn asof(args: &[String], out: &mut dyn Write) -> CliResult {
    use schemachron_asof::render;
    use schemachron_history::MonthId;

    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let json = match opt_value(&argv, "--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(CliError::new(format!(
                "invalid --format value `{other}` (expected `human` or `json`)"
            )))
        }
    };
    let k = match opt_value(&argv, "--k") {
        None => schemachron_asof::DEFAULT_K_MONTHS,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Err(CliError::new(format!(
                    "invalid --k value `{v}` (expected a positive checkpoint spacing in months)"
                )))
            }
        },
    };
    let name =
        positional(&argv).ok_or_else(|| CliError::new("asof: missing <project> name"))?;
    let corpus = Corpus::generate(seed);
    let project = corpus
        .projects()
        .iter()
        .find(|p| p.card.name == name)
        .ok_or_else(|| {
            CliError::new(format!(
                "asof: no project `{name}` in the seed-{seed} corpus\n\
                 hint: `schemachron serve` route /corpus/{seed}/projects lists the names"
            ))
        })?;
    let index = schemachron_asof::index_for(project, seed, k).ok_or_else(|| {
        CliError::new(format!(
            "asof: {name} retains no schema versions to index"
        ))
    })?;

    let month = |key: &str| -> Result<MonthId, CliError> {
        let raw = opt_value(&argv, key)
            .ok_or_else(|| CliError::new(format!("asof: missing {key} YYYY-MM")))?;
        raw.parse().map_err(|e: schemachron_history::MonthParseError| {
            CliError::new(format!(
                "asof: {e}\nhint: months are written YYYY-MM, e.g. 2009-06"
            ))
        })
    };
    let in_lifespan = |m: MonthId| -> Result<(), CliError> {
        if index.in_lifespan(m) {
            return Ok(());
        }
        Err(CliError::new(format!(
            "asof: {m} is outside {name}'s lifespan {}..{} ({} months)",
            index.start(),
            index.last_month(),
            index.months()
        )))
    };
    let emit = |out: &mut dyn Write, value: &serde_json::Value, human: String| -> CliResult {
        if json {
            // Matches the serve routes byte for byte: pretty JSON + newline.
            let body =
                serde_json::to_string_pretty(value).unwrap_or_else(|_| "{}".to_owned());
            let _ = writeln!(out, "{body}");
        } else {
            let _ = write!(out, "{human}");
        }
        Ok(())
    };

    if let Some(subject) = opt_value(&argv, "--provenance") {
        let (table, column) = match subject.split_once('.') {
            Some((t, c)) => (t, Some(c)),
            None => (subject, None),
        };
        let p = index.provenance(table, column).ok_or_else(|| {
            CliError::new(format!(
                "asof: {name} never defined `{subject}`\n\
                 hint: provenance subjects are TABLE or TABLE.COLUMN"
            ))
        })?;
        return emit(
            out,
            &render::provenance_json(&index, &p),
            render::provenance_human(&index, &p),
        );
    }
    if opt_value(&argv, "--diff").is_some() {
        let from = month("--at")?;
        let to = month("--diff")?;
        in_lifespan(from)?;
        in_lifespan(to)?;
        let d = index
            .diff_between(from, to)
            .ok_or_else(|| CliError::new("asof: diff endpoints left the lifespan"))?;
        return emit(
            out,
            &render::diff_json(&index, from, to, &d),
            render::diff_human(&index, from, to, &d),
        );
    }
    let m = month("--at")?;
    in_lifespan(m)?;
    let schema = index
        .schema_as_of(m)
        .ok_or_else(|| CliError::new("asof: month left the lifespan"))?;
    emit(
        out,
        &render::schema_json(&index, m, &schema),
        render::schema_human(&index, m, &schema),
    )
}

/// Plans the forward migration between two months of a project's history.
fn plan_cmd(args: &[String], out: &mut dyn Write) -> CliResult {
    use schemachron_asof::render;
    use schemachron_dialect::{dialect_named, report, PlanOptions, DIALECT_KEYWORDS};
    use schemachron_history::MonthId;

    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let json = match opt_value(&argv, "--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(CliError::new(format!(
                "invalid --format value `{other}` (expected `human` or `json`)"
            )))
        }
    };
    let keywords = DIALECT_KEYWORDS.join("|");
    let dialect = match opt_value(&argv, "--dialect") {
        None => {
            return Err(CliError::new(format!(
                "plan: missing --dialect {keywords}"
            )))
        }
        Some(kw) => dialect_named(kw).ok_or_else(|| {
            CliError::new(format!(
                "plan: unknown dialect `{kw}` (expected {keywords})"
            ))
        })?,
    };
    let name = positional(&argv).ok_or_else(|| CliError::new("plan: missing <project> name"))?;
    let corpus = Corpus::generate(seed);
    let project = corpus
        .projects()
        .iter()
        .find(|p| p.card.name == name)
        .ok_or_else(|| {
            CliError::new(format!(
                "plan: no project `{name}` in the seed-{seed} corpus\n\
                 hint: `schemachron serve` route /corpus/{seed}/projects lists the names"
            ))
        })?;
    let index = schemachron_asof::index_for(project, seed, schemachron_asof::DEFAULT_K_MONTHS)
        .ok_or_else(|| {
            CliError::new(format!("plan: {name} retains no schema versions to index"))
        })?;

    let month = |key: &str| -> Result<MonthId, CliError> {
        let raw = opt_value(&argv, key)
            .ok_or_else(|| CliError::new(format!("plan: missing {key} YYYY-MM")))?;
        raw.parse().map_err(|e: schemachron_history::MonthParseError| {
            CliError::new(format!(
                "plan: {e}\nhint: months are written YYYY-MM, e.g. 2009-06"
            ))
        })
    };
    let from = month("--from")?;
    let to = month("--to")?;
    for m in [from, to] {
        if !index.in_lifespan(m) {
            return Err(CliError::new(format!(
                "plan: {m} is outside {name}'s lifespan {}..{} ({} months)",
                index.start(),
                index.last_month(),
                index.months()
            )));
        }
    }
    let from_schema = index
        .schema_as_of(from)
        .ok_or_else(|| CliError::new("plan: --from month left the lifespan"))?;
    let to_schema = index
        .schema_as_of(to)
        .ok_or_else(|| CliError::new("plan: --to month left the lifespan"))?;

    let opts = PlanOptions {
        allow_rebuild: !flag(&argv, "--no-rebuild"),
    };
    let plan = schemachron_dialect::plan(&from_schema, &to_schema, dialect, &opts).map_err(|e| {
        CliError::with_code(
            format!("plan: {e}\nhint: {}", schemachron_dialect::refusal_hint(dialect.name())),
            EXIT_PLAN,
        )
    })?;

    // The safety classification covers the plan as rendered: a rebuild
    // fallback is reclassified (DROP + CREATE is always lossy), not judged
    // by the in-place ops it absorbed.
    let deny_lossy = flag(&argv, "--deny-lossy");
    let explain = flag(&argv, "--explain-safety");
    let safety = if deny_lossy || explain {
        let ops = schemachron_dialect::diff_ops(&from_schema, &to_schema);
        Some(schemachron_safety::classify_plan(&plan, &ops, &from_schema))
    } else {
        None
    };
    if deny_lossy {
        if let Some(s) = safety.as_ref().filter(|s| s.safety == schemachron_safety::Safety::Lossy) {
            let offender = s.offender.as_deref().unwrap_or("(plan)");
            let reason = s.reason.as_deref().unwrap_or("the plan destroys data");
            return Err(CliError::with_code(
                format!(
                    "plan: lossy plan denied: `{offender}` — {reason}\n\
                     hint: drop --deny-lossy to accept the data loss, or plan a \
                     narrower month span that avoids the destructive op"
                ),
                EXIT_LOSSY,
            ));
        }
    }

    let req = render::plan_request(&index, from, to);
    if json {
        // Matches the serve plan route byte for byte: pretty JSON + newline.
        // --explain-safety appends a CLI-only `safety` object after the
        // shared shape, so plans without it stay byte-identical to serve.
        let mut v = report::plan_json(&req, &plan);
        if let (Some(s), serde_json::Value::Object(map)) = (explain.then_some(()).and(safety), &mut v)
        {
            map.insert(
                "safety".to_owned(),
                serde_json::json!({
                    "class": (s.safety.tag()),
                    "offender": (s.offender.map_or(serde_json::Value::Null, serde_json::Value::String)),
                    "reason": (s.reason.map_or(serde_json::Value::Null, serde_json::Value::String)),
                }),
            );
        }
        let body = serde_json::to_string_pretty(&v).unwrap_or_else(|_| "{}".to_owned());
        let _ = writeln!(out, "{body}");
    } else {
        let _ = write!(out, "{}", report::plan_human(&req, &plan));
        if let (true, Some(s)) = (explain, safety) {
            let _ = match (s.offender, s.reason) {
                (Some(offender), Some(reason)) => writeln!(
                    out,
                    "safety: {} — worst op `{offender}`: {reason}",
                    s.safety.tag()
                ),
                _ => writeln!(out, "safety: {} — every op is invertible from schema alone", s.safety.tag()),
            };
        }
    }
    Ok(())
}

/// `schemachron safety` — static data-loss audit of one corpus project.
fn safety_cmd(args: &[String], out: &mut dyn Write) -> CliResult {
    use schemachron_safety::render;

    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let json = match opt_value(&argv, "--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(CliError::new(format!(
                "invalid --format value `{other}` (expected `human` or `json`)"
            )))
        }
    };
    let name =
        positional(&argv).ok_or_else(|| CliError::new("safety: missing <project> name"))?;
    let corpus = Corpus::generate(seed);
    let project = corpus
        .projects()
        .iter()
        .find(|p| p.card.name == name)
        .ok_or_else(|| {
            CliError::new(format!(
                "safety: no project `{name}` in the seed-{seed} corpus\n\
                 hint: `schemachron serve` route /corpus/{seed}/projects lists the names"
            ))
        })?;
    let artifact = schemachron_safety::safety_for(&project.card, seed);
    if json {
        // Matches the serve safety route byte for byte: pretty JSON + newline.
        let body = serde_json::to_string_pretty(&render::safety_json(&artifact.analysis))
            .unwrap_or_else(|_| "{}".to_owned());
        let _ = writeln!(out, "{body}");
    } else {
        let _ = write!(out, "{}", render::safety_human(&artifact.analysis));
    }
    Ok(())
}

/// Diffs two schema dumps and reports the paper's change taxonomy.
fn diff_cmd(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let files: Vec<&str> = argv
        .iter()
        .filter(|a| !a.starts_with("--"))
        .copied()
        .collect();
    let [old_path, new_path] = files.as_slice() else {
        return Err(CliError::new("diff: expected exactly two .sql files"));
    };
    let load = |path: &str| -> Result<schemachron_model::Schema, CliError> {
        let sql =
            std::fs::read_to_string(path).map_err(|e| CliError::new(format!("{path}: {e}")))?;
        let (schema, diags) = schemachron_ddl::parse_schema(&sql);
        for d in diags.iter().filter(|d| d.is_error()) {
            let _ = writeln!(std::io::stderr(), "{path}: {d}");
        }
        Ok(schema)
    };
    let old = load(old_path)?;
    let new = load(new_path)?;

    let os = old.stats();
    let ns = new.stats();
    let _ = writeln!(
        out,
        "{old_path}: {} tables, {} attributes, {} FKs",
        os.tables, os.attributes, os.foreign_keys
    );
    let _ = writeln!(
        out,
        "{new_path}: {} tables, {} attributes, {} FKs\n",
        ns.tables, ns.attributes, ns.foreign_keys
    );

    let d = schemachron_model::diff(&old, &new);
    if d.is_empty() {
        let _ = writeln!(out, "no logical-level changes");
        return Ok(());
    }
    for t in &d.tables_added {
        let _ = writeln!(out, "+ table {t}");
    }
    for t in &d.tables_dropped {
        let _ = writeln!(out, "- table {t}");
    }
    for c in &d.changes {
        let _ = writeln!(out, "  {}.{}  [{}]", c.table, c.attribute, c.kind.label());
    }
    let _ = writeln!(
        out,
        "\n{} affected attributes ({} expansion, {} maintenance)",
        d.attribute_change_count(),
        d.expansion_count(),
        d.maintenance_count()
    );
    Ok(())
}

fn chart(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let dir = positional(&argv).ok_or_else(|| CliError::new("chart: missing <dir>"))?;
    let mode = if flag(&argv, "--snapshot") {
        IngestMode::Snapshot
    } else {
        IngestMode::Migration
    };
    let project = load_project_dir(Path::new(dir), mode)?;
    let _ = writeln!(out, "{}", AsciiChart::default().render(&project));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut buf = Vec::new();
        run(&argv, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["help"]).unwrap();
        assert!(s.contains("USAGE"));
        let s2 = run_to_string(&[]).unwrap();
        assert!(s2.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_to_string(&["bogus"]).is_err());
    }

    #[test]
    fn corpus_summary_lists_patterns() {
        let s = run_to_string(&["corpus", "summary"]).unwrap();
        assert!(s.contains("Flatliner"));
        assert!(s.contains("151 projects"));
        assert!(s.contains("Smoking Funnel"));
    }

    #[test]
    fn corpus_subcommand_validation() {
        assert!(run_to_string(&["corpus"]).is_err());
        assert!(run_to_string(&["corpus", "generate"]).is_err()); // no --out
        assert!(run_to_string(&["corpus", "summary", "--seed", "abc"]).is_err());
    }

    #[test]
    fn corpus_verify_accepts_calibrated_cards() {
        let s = run_to_string(&["corpus", "verify"]).unwrap();
        assert!(s.contains("verified 151 cards"), "{s}");
    }

    #[test]
    fn lint_pristine_corpus_passes_deny_warnings() {
        let s = run_to_string(&["lint", "--deny", "warnings"]).unwrap();
        assert!(s.contains("0 errors, 0 warnings"), "{s}");
    }

    #[test]
    fn lint_json_is_byte_identical_across_jobs() {
        let a = run_to_string(&["lint", "--format", "json", "--jobs", "1"]).unwrap();
        let b = run_to_string(&["lint", "--format", "json", "--jobs", "8"]).unwrap();
        schemachron_corpus::set_jobs(None);
        assert_eq!(a, b);
        assert!(a.trim_start().starts_with('{'), "{a}");
    }

    #[test]
    fn lint_flag_validation() {
        assert!(run_to_string(&["lint", "--format", "xml"]).is_err());
        assert!(run_to_string(&["lint", "--deny", "notes"]).is_err());
        assert!(run_to_string(&["lint", "--dir", "/no/such/dir-schemachron"]).is_err());
    }

    #[test]
    fn lint_dir_mode_reports_flow_findings() {
        let dir = std::env::temp_dir().join(format!("schemachron-cli-lint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("0001_2020-01-10.sql"), "DROP TABLE t;").unwrap();
        std::fs::write(dir.join("0002_2020-02-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        let argv: Vec<String> = ["lint", "--dir", dir.to_str().unwrap()]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let mut buf = Vec::new();
        let err = run(&argv, &mut buf).expect_err("drop-before-create must fail the lint");
        std::fs::remove_dir_all(&dir).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("L003"), "{out}");
        assert!(out.contains("0001_2020-01-10.sql:1"), "{out}");
        assert!(err.message.contains("1 error"), "{}", err.message);
    }

    #[test]
    fn spec_error_converts_with_hint() {
        let card = schemachron_corpus::cards::all_cards().remove(0);
        let bad = schemachron_corpus::Card { duration: 6, ..card };
        let spec_err = bad.try_schedule().expect_err("6-month card is too short");
        let cli_err = CliError::from(spec_err);
        assert_eq!(cli_err.code, EXIT_FAILURE);
        assert!(cli_err.message.contains("duration"), "{}", cli_err.message);
        assert!(cli_err.message.contains("hint:"), "{}", cli_err.message);
    }

    #[test]
    fn jobs_flag_validation() {
        for bad in ["0", "-2", "abc", "1.5", ""] {
            let err = run_to_string(&["corpus", "summary", "--jobs", bad])
                .expect_err(&format!("--jobs {bad} should be rejected"));
            assert!(err.message.contains("--jobs"), "{}", err.message);
        }
        // A valid count is accepted and the summary still comes out right.
        let s = run_to_string(&["corpus", "summary", "--jobs", "2"]).unwrap();
        assert!(s.contains("151 projects"));
        // Restore auto-detection for other tests in this process.
        schemachron_corpus::set_jobs(None);
    }

    #[test]
    fn usage_documents_jobs_flag() {
        assert!(usage().contains("--jobs"));
        assert!(usage().contains("--addr"));
        assert!(usage().contains("serve"));
    }

    #[test]
    fn serve_addr_flag_validation() {
        for bad in ["localhost", "127.0.0.1", ":8080", "999.0.0.1:80", ""] {
            let err = run_to_string(&["serve", "--addr", bad])
                .expect_err(&format!("--addr {bad} should be rejected"));
            assert!(err.message.contains("--addr"), "{}", err.message);
            assert_eq!(err.code, EXIT_FAILURE, "{}", err.message);
        }
    }

    #[test]
    fn serve_bind_failure_is_exit_bind_with_hint() {
        // Occupy a port, then ask the CLI to serve on it.
        let blocker = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = blocker.local_addr().unwrap().to_string();
        let err = run_to_string(&["serve", "--addr", &addr])
            .expect_err("bind on an occupied port must fail");
        assert_eq!(err.code, EXIT_BIND, "{}", err.message);
        assert!(err.message.contains("cannot bind"), "{}", err.message);
        assert!(err.message.contains("already"), "{}", err.message);
    }

    #[test]
    fn experiments_single_id() {
        let s = run_to_string(&["experiments", "exp_table2"]).unwrap();
        assert!(s.contains("Table 2"));
        assert!(run_to_string(&["experiments", "exp_nope"]).is_err());
    }

    #[test]
    fn positional_skips_option_values() {
        assert_eq!(
            positional(&["--seed", "7", "exp_table1"]),
            Some("exp_table1")
        );
        assert_eq!(positional(&["--chart", "dir"]), Some("dir"));
        assert_eq!(positional(&["--seed", "7"]), None);
    }

    #[test]
    fn analyze_handmade_project_roundtrip() {
        let tmp = std::env::temp_dir().join(format!("schemachron-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let dir = tmp.join("tiny");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("0001_2020-01-10.sql"),
            "CREATE TABLE t (a INT, b INT);",
        )
        .unwrap();
        std::fs::write(
            dir.join("0002_2021-06-10.sql"),
            "ALTER TABLE t ADD COLUMN c INT;",
        )
        .unwrap();
        std::fs::write(
            dir.join("source.csv"),
            "date,lines_changed\n2020-01-05,10\n2021-12-20,5\n",
        )
        .unwrap();
        let s = run_to_string(&["analyze", dir.to_str().unwrap(), "--chart"]).unwrap();
        assert!(s.contains("PUP:"), "{s}");
        assert!(s.contains("pattern:"), "{s}");
        assert!(s.contains("time (%PUP)"), "{s}");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn study_runs_over_generated_corpus_subset() {
        let tmp = std::env::temp_dir().join(format!("schemachron-study-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).unwrap();
        // Three handmade projects with distinct shapes.
        let mk = |name: &str, files: &[(&str, &str)]| {
            let d = tmp.join(name);
            std::fs::create_dir_all(&d).unwrap();
            for (f, sql) in files {
                std::fs::write(d.join(f), sql).unwrap();
            }
            std::fs::write(
                d.join("source.csv"),
                "date,lines_changed\n2019-01-05,10\n2021-12-20,5\n",
            )
            .unwrap();
        };
        mk(
            "frozen",
            &[("0001_2019-01-10.sql", "CREATE TABLE a (x INT, y INT);")],
        );
        mk(
            "late",
            &[(
                "0001_2021-10-10.sql",
                "CREATE TABLE b (x INT, y INT, z INT);",
            )],
        );
        mk(
            "tooshort",
            &[("0001_2021-12-01.sql", "CREATE TABLE c (q INT);")],
        );
        // Shrink tooshort's lifespan below the 12-month study threshold.
        std::fs::write(
            tmp.join("tooshort").join("source.csv"),
            "date,lines_changed\n2021-11-05,10\n2021-12-20,5\n",
        )
        .unwrap();
        let s = run_to_string(&["study", tmp.to_str().unwrap()]).unwrap();
        assert!(s.contains("study over 2 projects"), "{s}");
        assert!(s.contains("Flatliner"), "{s}");
        assert!(s.contains("P(sharp focused change"), "{s}");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn study_missing_root_errors() {
        assert!(run_to_string(&["study"]).is_err());
        assert!(run_to_string(&["study", "/nonexistent/nowhere"]).is_err());
    }

    /// The seed-42 corpus project the asof tests query, plus the bounds of
    /// its lifespan as `YYYY-MM` strings.
    fn asof_subject() -> (String, String, String, String) {
        let corpus = Corpus::generate(schemachron_bench::DEFAULT_SEED);
        let p = &corpus.projects()[0];
        let index = schemachron_asof::AsOfIndex::build(&p.history, 12).unwrap();
        let table = p
            .history
            .schema_history()
            .unwrap()
            .versions()
            .last()
            .unwrap()
            .schema
            .tables()
            .next()
            .unwrap()
            .name
            .as_str()
            .to_owned();
        (
            p.card.name.clone(),
            index.start().to_string(),
            index.last_month().to_string(),
            table,
        )
    }

    #[test]
    fn asof_answers_schema_diff_and_provenance_queries() {
        let (name, start, last, table) = asof_subject();

        let s = run_to_string(&["asof", &name, "--at", &last]).unwrap();
        assert!(s.contains(&format!("{name} as of {last}:")), "{s}");

        let j = run_to_string(&["asof", &name, "--at", &last, "--format", "json"]).unwrap();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["project"].as_str(), Some(name.as_str()));
        assert_eq!(v["asof"].as_str(), Some(last.as_str()));
        assert!(v["table_count"].as_u64().unwrap() > 0, "{j}");

        let d = run_to_string(&["asof", &name, "--at", &start, "--diff", &last]).unwrap();
        assert!(d.contains(&format!("diff {start} -> {last}")), "{d}");

        let p = run_to_string(&["asof", &name, "--provenance", &table]).unwrap();
        assert!(p.contains(&format!("provenance of {table}")), "{p}");
        assert!(p.contains("introduced"), "{p}");
    }

    #[test]
    fn asof_json_matches_the_serve_route_byte_for_byte() {
        let (name, _, last, table) = asof_subject();
        let state = schemachron_serve::AppState::new(schemachron_bench::DEFAULT_SEED);
        let via_serve = |path: &str, query: &[(&str, &str)]| -> String {
            let mut req = schemachron_serve::http::Request::get(path);
            req.query = query
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect();
            let resp = state.handle(&req);
            assert_eq!(resp.status, 200, "{path}");
            String::from_utf8(resp.body).unwrap()
        };

        let cli = run_to_string(&["asof", &name, "--at", &last, "--format", "json"]).unwrap();
        let srv = via_serve(&format!("/project/{name}/schema"), &[("asof", &last)]);
        assert_eq!(cli, srv, "schema answers must be byte-identical");

        let cli =
            run_to_string(&["asof", &name, "--provenance", &table, "--format", "json"]).unwrap();
        let srv = via_serve(&format!("/project/{name}/provenance/{table}"), &[]);
        assert_eq!(cli, srv, "provenance answers must be byte-identical");
    }

    #[test]
    fn safety_reports_the_lattice_and_matches_the_serve_route() {
        let (name, _, _, _) = asof_subject();

        let human = run_to_string(&["safety", &name]).unwrap();
        assert!(human.contains(&format!("{name} safety:")), "{human}");
        assert!(human.contains("worst:"), "{human}");

        let j = run_to_string(&["safety", &name, "--format", "json"]).unwrap();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["project"].as_str(), Some(name.as_str()));
        assert!(v["ops"].as_u64().is_some(), "{j}");
        assert!(v["summary"]["worst"].as_str().is_some(), "{j}");
        assert!(v["transitions"].as_array().is_some(), "{j}");

        // Byte-identical to `GET /project/{id}/safety`: one render layer.
        let state = schemachron_serve::AppState::new(schemachron_bench::DEFAULT_SEED);
        let req = schemachron_serve::http::Request::get(&format!("/project/{name}/safety"));
        let resp = state.handle(&req);
        assert_eq!(resp.status, 200);
        assert_eq!(
            j,
            String::from_utf8(resp.body).unwrap(),
            "safety answers must be byte-identical"
        );

        assert!(run_to_string(&["safety"]).is_err());
        let err = run_to_string(&["safety", "no-such-project"]).expect_err("ghost project");
        assert!(err.message.contains("no project"), "{}", err.message);
    }

    #[test]
    fn asof_argument_validation() {
        let (name, _, last, _) = asof_subject();
        assert!(run_to_string(&["asof"]).is_err());
        assert!(run_to_string(&["asof", "no-such-project", "--at", &last]).is_err());
        assert!(run_to_string(&["asof", &name, "--at", &last, "--format", "xml"]).is_err());
        assert!(run_to_string(&["asof", &name, "--at", &last, "--k", "0"]).is_err());

        let err = run_to_string(&["asof", &name]).expect_err("--at is required");
        assert!(err.message.contains("--at"), "{}", err.message);

        let err = run_to_string(&["asof", &name, "--at", "2009-13"]).expect_err("bad month");
        assert!(err.message.contains("YYYY-MM"), "{}", err.message);

        let err = run_to_string(&["asof", &name, "--at", "1901-01"])
            .expect_err("out of lifespan");
        assert!(err.message.contains("lifespan"), "{}", err.message);
    }

    #[test]
    fn diff_two_dump_files() {
        let tmp = std::env::temp_dir().join(format!("schemachron-diff-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).unwrap();
        let v1 = tmp.join("v1.sql");
        let v2 = tmp.join("v2.sql");
        std::fs::write(&v1, "CREATE TABLE t (a INT, b INT);").unwrap();
        std::fs::write(&v2, "CREATE TABLE t (a BIGINT, c INT);").unwrap();
        let s = run_to_string(&["diff", v1.to_str().unwrap(), v2.to_str().unwrap()]).unwrap();
        assert!(s.contains("t.a  [type-changed]"), "{s}");
        assert!(s.contains("t.b  [ejected]"), "{s}");
        assert!(s.contains("t.c  [injected]"), "{s}");
        assert!(
            s.contains("3 affected attributes (1 expansion, 2 maintenance)"),
            "{s}"
        );
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn diff_arg_validation() {
        assert!(run_to_string(&["diff"]).is_err());
        assert!(run_to_string(&["diff", "/nope.sql", "/nope2.sql"]).is_err());
    }

    #[test]
    fn analyze_missing_dir_errors() {
        assert!(run_to_string(&["analyze", "/nonexistent/nowhere"]).is_err());
        assert!(run_to_string(&["analyze"]).is_err());
    }
}
