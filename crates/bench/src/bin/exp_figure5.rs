//! Regenerates Figure 5 (decision-tree classification).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::figure5(&ctx);
    emit(
        "exp_figure5",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
