//! The SQL lexer: text → tokens, dialect-tolerant.
//!
//! The lexer is deliberately permissive: it never fails. Bytes it cannot
//! classify become single-character [`TokenKind::Symbol`] tokens, and the
//! parser decides what to do with them.

/// The kind of a lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// A bare (unquoted) word: keyword or identifier. Keywords are
    /// recognized case-insensitively by the parser, not the lexer.
    Word(String),
    /// A quoted identifier (`"x"`, `` `x` `` or `[x]`), quotes removed and
    /// escapes resolved.
    QuotedIdent(String),
    /// A string literal (`'...'` or `$tag$...$tag$`), quotes removed.
    StringLit(String),
    /// A numeric literal, verbatim (`42`, `3.14`, `1e-9`, `0xFF`).
    Number(String),
    /// A punctuation or operator character/cluster: `(`, `)`, `,`, `;`,
    /// `.`, `=`, `::`, ...
    Symbol(String),
}

impl TokenKind {
    /// The token's text for display/capture purposes.
    pub fn text(&self) -> &str {
        match self {
            TokenKind::Word(s)
            | TokenKind::QuotedIdent(s)
            | TokenKind::StringLit(s)
            | TokenKind::Number(s)
            | TokenKind::Symbol(s) => s,
        }
    }
}

/// A token plus its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line where the token starts.
    pub line: u32,
}

impl Token {
    /// True when the token is the bare word `kw` (case-insensitive).
    pub fn is_word(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// True when the token is the symbol `sym`.
    pub fn is_symbol(&self, sym: &str) -> bool {
        matches!(&self.kind, TokenKind::Symbol(s) if s == sym)
    }
}

/// Lexes a whole script. Never fails; comments are dropped.
///
/// ```
/// use schemachron_ddl::lexer::{lex, TokenKind};
/// let toks = lex("CREATE TABLE `t` (x INT); -- done");
/// assert!(matches!(&toks[0].kind, TokenKind::Word(w) if w == "CREATE"));
/// assert!(matches!(&toks[2].kind, TokenKind::QuotedIdent(q) if q == "t"));
/// ```
pub fn lex(input: &str) -> Vec<Token> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            src: input.as_bytes(),
            pos: 0,
            line: 1,
            // DDL averages roughly one token per five bytes; pre-sizing
            // avoids repeated regrowth on dump-sized scripts.
            out: Vec::with_capacity(input.len() / 5 + 8),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'-' if self.peek2() == Some(b'-') => self.skip_line_comment(),
                b'#' => self.skip_line_comment(),
                b'/' if self.peek2() == Some(b'*') => self.skip_block_comment(),
                b'\'' => {
                    let s = self.lex_quoted(b'\'', true);
                    self.push(TokenKind::StringLit(s), line);
                }
                b'"' => {
                    let s = self.lex_quoted(b'"', false);
                    self.push(TokenKind::QuotedIdent(s), line);
                }
                b'`' => {
                    let s = self.lex_quoted(b'`', false);
                    self.push(TokenKind::QuotedIdent(s), line);
                }
                b'[' => {
                    let s = self.lex_bracket_ident();
                    self.push(s, line);
                }
                b'$' => {
                    let t = self.lex_dollar();
                    self.push(t, line);
                }
                b'0'..=b'9' => {
                    let s = self.lex_number();
                    self.push(TokenKind::Number(s), line);
                }
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    let s = self.lex_number();
                    self.push(TokenKind::Number(s), line);
                }
                c if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                    let s = self.lex_word();
                    self.push(TokenKind::Word(s), line);
                }
                b':' if self.peek2() == Some(b':') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Symbol("::".into()), line);
                }
                _ => {
                    let c = self.bump().expect("peeked byte present");
                    self.push(TokenKind::Symbol((c as char).to_string()), line);
                }
            }
        }
        self.out
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        while let Some(b) = self.bump() {
            if b == b'*' && self.peek() == Some(b'/') {
                self.bump();
                return;
            }
        }
        // Unterminated comment: consume to EOF, tolerated.
    }

    /// Lexes a quoted region. `quote` doubling always escapes; backslash
    /// escapes apply only inside string literals (`allow_backslash`).
    fn lex_quoted(&mut self, quote: u8, allow_backslash: bool) -> String {
        self.bump(); // opening quote
        let mut s = Vec::new();
        while let Some(b) = self.bump() {
            if b == quote {
                if self.peek() == Some(quote) {
                    self.bump();
                    s.push(quote);
                    continue;
                }
                break;
            }
            if b == b'\\' && allow_backslash {
                if let Some(esc) = self.bump() {
                    s.push(match esc {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'r' => b'\r',
                        b'0' => 0,
                        other => other,
                    });
                }
                continue;
            }
            s.push(b);
        }
        String::from_utf8_lossy(&s).into_owned()
    }

    /// `[ident]` — SQL Server style. A lone `[` with no closing `]` before
    /// the end of line degrades to a symbol.
    fn lex_bracket_ident(&mut self) -> TokenKind {
        let start = self.pos;
        let start_line = self.line;
        self.bump(); // '['
        let mut s = Vec::new();
        while let Some(b) = self.peek() {
            if b == b']' {
                if s.is_empty() {
                    // `[]` is an array-type suffix, not an identifier.
                    break;
                }
                self.bump();
                return TokenKind::QuotedIdent(String::from_utf8_lossy(&s).into_owned());
            }
            if b == b'\n' {
                break;
            }
            s.push(b);
            self.bump();
        }
        // Not a bracketed identifier after all; restore and emit `[`.
        self.pos = start + 1;
        self.line = start_line;
        TokenKind::Symbol("[".into())
    }

    /// PostgreSQL dollar quoting: `$$...$$` or `$tag$...$tag$`. A `$` that
    /// does not open a dollar quote is a symbol.
    fn lex_dollar(&mut self) -> TokenKind {
        let start = self.pos;
        let start_line = self.line;
        self.bump(); // '$'
        let mut tag = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'$' {
                self.bump();
                // We have an opening delimiter `$tag$`; scan for the closer.
                let closer = format!("${}$", String::from_utf8_lossy(&tag));
                let rest = &self.src[self.pos..];
                if let Some(idx) = find_subslice(rest, closer.as_bytes()) {
                    let body = String::from_utf8_lossy(&rest[..idx]).into_owned();
                    for _ in 0..idx + closer.len() {
                        self.bump();
                    }
                    return TokenKind::StringLit(body);
                }
                break; // unterminated: degrade to symbol
            }
            if b.is_ascii_alphanumeric() || b == b'_' {
                tag.push(b);
                self.bump();
            } else {
                break;
            }
        }
        self.pos = start + 1;
        self.line = start_line;
        TokenKind::Symbol("$".into())
    }

    fn lex_number(&mut self) -> String {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.bump();
            }
        } else {
            while self.peek().is_some_and(|b| b.is_ascii_digit() || b == b'.') {
                self.bump();
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                let mark = self.pos;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.bump();
                    }
                } else {
                    self.pos = mark; // 'e' belonged to a following word
                }
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b >= 0x80)
        {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_symbols() {
        let k = kinds("CREATE TABLE t (x INT DEFAULT 3.5);");
        assert_eq!(k[0], TokenKind::Word("CREATE".into()));
        assert_eq!(k[3], TokenKind::Symbol("(".into()));
        assert_eq!(k[7], TokenKind::Number("3.5".into()));
        assert_eq!(*k.last().unwrap(), TokenKind::Symbol(";".into()));
    }

    #[test]
    fn comments_are_dropped() {
        assert!(kinds("-- line\n# hash\n/* block\nmultiline */").is_empty());
        let k = kinds("a /* mid */ b");
        assert_eq!(k.len(), 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\n\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn quoted_identifiers_all_styles() {
        let k = kinds("`tick` \"dquote\" [bracket]");
        assert_eq!(
            k,
            vec![
                TokenKind::QuotedIdent("tick".into()),
                TokenKind::QuotedIdent("dquote".into()),
                TokenKind::QuotedIdent("bracket".into()),
            ]
        );
    }

    #[test]
    fn quote_doubling_escapes() {
        let k = kinds("'it''s' \"a\"\"b\"");
        assert_eq!(k[0], TokenKind::StringLit("it's".into()));
        assert_eq!(k[1], TokenKind::QuotedIdent("a\"b".into()));
    }

    #[test]
    fn backslash_escapes_in_strings_only() {
        let k = kinds(r"'a\nb'");
        assert_eq!(k[0], TokenKind::StringLit("a\nb".into()));
    }

    #[test]
    fn dollar_quoted_strings() {
        let k = kinds("$$plain$$ $fn$body; with ; semis$fn$");
        assert_eq!(k[0], TokenKind::StringLit("plain".into()));
        assert_eq!(k[1], TokenKind::StringLit("body; with ; semis".into()));
    }

    #[test]
    fn lone_dollar_is_symbol() {
        let k = kinds("$ 5");
        assert_eq!(k[0], TokenKind::Symbol("$".into()));
    }

    #[test]
    fn unterminated_bracket_degrades_to_symbol() {
        let k = kinds("[ x");
        assert_eq!(k[0], TokenKind::Symbol("[".into()));
        assert_eq!(k[1], TokenKind::Word("x".into()));
    }

    #[test]
    fn hex_and_scientific_numbers() {
        let k = kinds("0xFF 1e-9 2E5 7e zz");
        assert_eq!(k[0], TokenKind::Number("0xFF".into()));
        assert_eq!(k[1], TokenKind::Number("1e-9".into()));
        assert_eq!(k[2], TokenKind::Number("2E5".into()));
        // `7e` followed by nothing numeric: the `e` is left for the next token.
        assert_eq!(k[3], TokenKind::Number("7".into()));
        assert_eq!(k[4], TokenKind::Word("e".into()));
    }

    #[test]
    fn double_colon_is_one_symbol() {
        let k = kinds("x::text");
        assert_eq!(k[1], TokenKind::Symbol("::".into()));
    }

    #[test]
    fn unterminated_string_is_tolerated() {
        let k = kinds("'never closed");
        assert_eq!(k[0], TokenKind::StringLit("never closed".into()));
    }

    #[test]
    fn utf8_identifiers_survive() {
        let k = kinds("naïve_column");
        assert_eq!(k[0], TokenKind::Word("naïve_column".into()));
    }

    #[test]
    fn helper_predicates() {
        let toks = lex("Create ;");
        assert!(toks[0].is_word("CREATE"));
        assert!(toks[0].is_word("create"));
        assert!(!toks[0].is_word("table"));
        assert!(toks[1].is_symbol(";"));
    }
}
