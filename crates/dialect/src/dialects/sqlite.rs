//! SQLite: the deliberately narrow dialect. Tables are created and
//! dropped, columns are added and dropped — everything else is a typed
//! refusal the planner turns into a table rebuild.

use super::{column_sql, create_table_sql, refuse, AutoInc, Dialect};
use crate::ops::DiffOp;
use crate::plan::UnsupportedDiffOp;

/// The SQLite dialect.
///
/// SQLite has no `ALTER COLUMN`, cannot change a table's keys or
/// constraints after creation, and cannot add a `NOT NULL` column without a
/// default. All of those come back as [`UnsupportedDiffOp`]; with rebuilds
/// enabled the planner expresses them as `DROP TABLE` + `CREATE TABLE`,
/// which is exactly the officially documented SQLite workaround.
pub struct Sqlite;

const AUTO_INC: AutoInc = AutoInc::Refuse(
    "sqlite auto-increment is implied by INTEGER PRIMARY KEY, not declarable per column",
);

impl Dialect for Sqlite {
    fn name(&self) -> &'static str {
        "sqlite"
    }

    fn keyword(&self) -> &'static str {
        "sqlite"
    }

    fn hint(&self) -> &'static str {
        "sqlite cannot alter columns, keys or constraints in place; \
         allow table rebuilds (omit --no-rebuild), or plan for mysql/pg instead"
    }

    fn render_op(&self, op: &DiffOp) -> Result<Vec<String>, UnsupportedDiffOp> {
        let q = |s: &str| self.quote_ident(s);
        let err = |reason: &str| refuse(self.name(), op, reason);
        match op {
            DiffOp::CreateTable(t) => create_table_sql(self, &AUTO_INC, t)
                .map(|s| vec![s])
                .map_err(|r| err(&r)),
            DiffOp::DropTable(n) => Ok(vec![format!("DROP TABLE {};", q(n.as_str()))]),
            DiffOp::AddColumn { table, attr } => {
                if attr.not_null && attr.default.is_none() {
                    return Err(err(
                        "sqlite cannot add a NOT NULL column without a default value",
                    ));
                }
                column_sql(self, &AUTO_INC, attr)
                    .map(|c| vec![format!("ALTER TABLE {} ADD COLUMN {};", q(table.as_str()), c)])
                    .map_err(|r| err(&r))
            }
            DiffOp::DropColumn { table, column } => Ok(vec![format!(
                "ALTER TABLE {} DROP COLUMN {};",
                q(table.as_str()),
                q(column.as_str())
            )]),
            DiffOp::AlterColumn { .. } => Err(err("sqlite has no ALTER COLUMN")),
            DiffOp::SetPrimaryKey { .. } => {
                Err(err("sqlite cannot change a table's primary key in place"))
            }
            DiffOp::AddForeignKey { .. } | DiffOp::DropForeignKey { .. } => {
                Err(err("sqlite cannot alter foreign keys on an existing table"))
            }
            DiffOp::AddUnique { .. } | DiffOp::DropUnique { .. } => Err(err(
                "sqlite cannot alter unique constraints on an existing table",
            )),
            DiffOp::CreateView(v) => Ok(vec![format!(
                "CREATE VIEW {} AS {};",
                q(v.name.as_str()),
                v.definition
            )]),
            DiffOp::DropView(n) => Ok(vec![format!("DROP VIEW {};", q(n.as_str()))]),
        }
    }
}
