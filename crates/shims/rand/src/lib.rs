#![forbid(unsafe_code)]

//! In-tree stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so instead of the crates.io
//! `rand` this workspace vendors a tiny, dependency-free PRNG exposing the
//! exact API subset schemachron uses: [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_bool`] and [`RngExt::random_range`] on
//! [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and (critically for the corpus) **stable across
//! platforms and releases**: the corpus generator's output for a given seed
//! is part of the repo's reproducibility contract, so this crate must never
//! silently change its stream.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.random_range(0..100usize), b.random_range(0..100usize));
//! ```

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample from `range`. Supports `a..b` and `a..=b` over the
    /// common integer types and `f64`.
    ///
    /// `T` is a type parameter (not an associated type of the range) so the
    /// sampled type can be inferred from the call site, as with real rand.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut |_| self.next_u64())
    }
}

impl<T: RngCore> RngExt for T {}

/// `u64 -> [0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range a generator can sample a uniform `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample, pulling words from `next`.
    fn sample(self, next: &mut dyn FnMut(()) -> u64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((next(()) % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return next(()) as $t;
                }
                lo.wrapping_add((next(()) % (span + 1)) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, next: &mut dyn FnMut(()) -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(next(()))
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, next: &mut dyn FnMut(()) -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * unit_f64(next(()))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(5..10usize);
            assert!((5..10).contains(&x));
            let y = r.random_range(3..=8u32);
            assert!((3..=8).contains(&y));
            let f = r.random_range(20.0..800.0);
            assert!((20.0..800.0).contains(&f));
            let g = r.random_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&g));
            let s = r.random_range(-4..=4i32);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn bool_probability_is_roughly_honored() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn stream_is_frozen() {
        // The corpus depends on this exact stream; a change here is a
        // breaking change to every generated artifact.
        let mut r = StdRng::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| r.random_range(0..u64::MAX)).collect();
        assert_eq!(
            first,
            vec![
                15021520661933788920,
                5662861034562852558,
                7045290409485826958,
                6657036016733702069
            ]
        );
    }
}
