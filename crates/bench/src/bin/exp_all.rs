//! Regenerates every table and figure of the paper in one run.

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments as exp, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    macro_rules! run {
        ($id:literal, $f:ident) => {{
            let r = exp::$f(&ctx);
            emit(
                $id,
                &r.render(),
                &serde_json::to_value(&r).expect("serializable"),
            );
            println!("{}", "=".repeat(78));
        }};
    }
    run!("exp_table1", table1);
    run!("exp_table2", table2);
    run!("exp_figure1", figure1);
    run!("exp_figure2", figure2);
    run!("exp_figure3", figure3);
    run!("exp_figure4", figure4);
    run!("exp_figure5", figure5);
    run!("exp_figure6", figure6);
    run!("exp_figure7", figure7);
    run!("exp_stats34", stats34);
    run!("exp_stats52", stats52);
    run!("exp_stats61", stats61);
    run!("exp_stats62", stats62);
    run!("exp_stats63", stats63);
    run!("exp_ablation", ablation);
    run!("exp_tables", tables_exp);
    run!("exp_coevolution", co_evolution_exp);
    run!("exp_forecast", forecast);
    run!("exp_safety", safety_exp);
}
