//! Appliable per-version deltas — the storage unit of the as-of index.
//!
//! The measurement diff ([`SchemaDiff`]) is deliberately lossy: it counts
//! *affected attributes* (the paper's unit) and carries no data types or
//! view definitions, so it cannot reconstruct a schema. A [`VersionDelta`]
//! pairs that measurement diff (kept for provenance queries) with a minimal
//! **appliable** edit: the full new value of every table/view the version
//! touched, plus the names it dropped. Folding deltas over the empty schema
//! reproduces each stored version exactly, at a fraction of the memory of
//! retaining every monthly snapshot.

use schemachron_history::{Date, MonthId, SchemaVersion};
use schemachron_model::{Name, Schema, SchemaDiff, Table, View};

/// One version transition in appliable form.
#[derive(Clone, Debug, PartialEq)]
pub struct VersionDelta {
    /// The month the version was committed in.
    pub month: MonthId,
    /// The exact commit date (day precision orders same-month versions).
    pub date: Date,
    /// The measurement diff from the predecessor version — reused verbatim
    /// from `schemachron-model` for provenance and activity queries.
    pub diff: SchemaDiff,
    /// Full new value of every table the version added or modified.
    tables_upserted: Vec<Table>,
    /// Tables present in the predecessor but not in this version.
    tables_dropped: Vec<Name>,
    /// Full new value of every view the version added or modified.
    views_upserted: Vec<View>,
    /// Views present in the predecessor but not in this version.
    views_dropped: Vec<Name>,
}

impl VersionDelta {
    /// Builds the delta taking `old` to `version.schema`.
    pub fn between(old: &Schema, version: &SchemaVersion) -> Self {
        let new = &version.schema;
        let tables_upserted = new
            .tables()
            .filter(|t| old.table_of(&t.name) != Some(*t))
            .cloned()
            .collect();
        let tables_dropped = old
            .tables()
            .filter(|t| new.table_of(&t.name).is_none())
            .map(|t| t.name.clone())
            .collect();
        let views_upserted = new
            .views()
            .filter(|v| old.view(v.name.as_str()) != Some(*v))
            .cloned()
            .collect();
        let views_dropped = old
            .views()
            .filter(|v| new.view(v.name.as_str()).is_none())
            .map(|v| v.name.clone())
            .collect();
        VersionDelta {
            month: version.date.month_id(),
            date: version.date,
            diff: version.diff.clone(),
            tables_upserted,
            tables_dropped,
            views_upserted,
            views_dropped,
        }
    }

    /// Applies the delta in place, turning the predecessor schema into this
    /// version's schema.
    pub fn apply(&self, schema: &mut Schema) {
        for name in &self.tables_dropped {
            schema.remove_table(name.as_str());
        }
        for table in &self.tables_upserted {
            schema.insert_table(table.clone());
        }
        for name in &self.views_dropped {
            schema.remove_view(name.as_str());
        }
        for view in &self.views_upserted {
            schema.insert_view(view.clone());
        }
    }

    /// Number of tables this delta writes or drops (a size proxy for cost
    /// accounting in the bench report).
    pub fn touched_tables(&self) -> usize {
        self.tables_upserted.len() + self.tables_dropped.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::{IngestMode, SchemaHistory};

    #[test]
    fn deltas_replay_to_each_stored_version() {
        let h = SchemaHistory::from_entries(
            IngestMode::Snapshot,
            vec![
                (Date::new(2020, 1, 5), "CREATE TABLE t (a INT);".into()),
                (
                    Date::new(2020, 3, 2),
                    "CREATE TABLE t (a INT, b INT); CREATE TABLE u (x INT);".into(),
                ),
                (Date::new(2020, 7, 9), "CREATE TABLE u (x INT, y INT);".into()),
            ],
        );
        let mut schema = Schema::default();
        let mut prev = Schema::default();
        for version in h.versions() {
            let delta = VersionDelta::between(&prev, version);
            delta.apply(&mut schema);
            assert_eq!(schema, version.schema);
            prev = version.schema.clone();
        }
    }

    #[test]
    fn untouched_tables_are_not_restated() {
        let h = SchemaHistory::from_entries(
            IngestMode::Snapshot,
            vec![
                (
                    Date::new(2020, 1, 5),
                    "CREATE TABLE t (a INT); CREATE TABLE u (x INT);".into(),
                ),
                (
                    Date::new(2020, 3, 2),
                    "CREATE TABLE t (a INT); CREATE TABLE u (x INT, y INT);".into(),
                ),
            ],
        );
        let delta = VersionDelta::between(&h.versions()[0].schema, &h.versions()[1]);
        // Only `u` changed; `t` must not be re-shipped in the delta.
        assert_eq!(delta.touched_tables(), 1);
    }
}
