//! §5 validation machinery: cohesion, disjointedness, completeness.

use std::collections::BTreeMap;

use schemachron_stats::mean_distance_to_centroid;

use crate::patterns::Pattern;
use crate::quantize::{IntervalClass, Labels, TimepointClass};

/// Number of points the paper quantizes each cumulative line into (§5.2).
pub const LINE_POINTS: usize = 20;

/// A cell of the active domain space of Fig. 6: the Cartesian product of
/// the defining class-based metrics (birth point × top-band point ×
/// birth→top interval × active-growth-months bucket).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainCell {
    /// Birth point class.
    pub birth: TimepointClass,
    /// Top-band point class.
    pub top: TimepointClass,
    /// Birth→top interval class.
    pub interval: IntervalClass,
    /// Active-growth-months bucket (0, 1–3, >3).
    pub agm_bucket: u8,
}

impl DomainCell {
    /// The cell a quantized profile lives in.
    pub fn of(l: &Labels) -> DomainCell {
        DomainCell {
            birth: l.birth_point,
            top: l.topband_point,
            interval: l.interval_birth_to_top,
            agm_bucket: l.agm_bucket(),
        }
    }

    /// Whether this combination of classes is **attainable** at all — §5.5
    /// argues several value combinations are impossible (e.g. a late-born
    /// schema is obligatorily restricted to a late top-band and a short
    /// tail). Implemented by interval arithmetic over the class ranges:
    /// there must exist `birth ≤ top` within the class ranges with
    /// `top − birth` inside the interval class's range.
    pub fn attainable(&self) -> bool {
        let (b_lo, b_hi) = timepoint_range(self.birth);
        let (t_lo, t_hi) = timepoint_range(self.top);
        let (i_lo, i_hi) = interval_range(self.interval);
        // Feasibility of: b ∈ [b_lo,b_hi], t ∈ [t_lo,t_hi], t−b ∈ [i_lo,i_hi], t ≥ b.
        let max_diff = t_hi - b_lo;
        let min_diff = (t_lo - b_hi).max(0.0);
        if max_diff < i_lo || min_diff > i_hi {
            return false;
        }
        if t_hi < b_lo {
            return false;
        }
        // An active-growth-months count needs room between birth and top:
        // zero interval cannot host interior active months.
        if self.agm_bucket > 0 && self.interval == IntervalClass::Zero {
            return false;
        }
        true
    }

    /// Enumerates every cell of the full Cartesian space (4 × 4 × 5 × 3).
    pub fn all() -> Vec<DomainCell> {
        let mut v = Vec::new();
        for &birth in &TimepointClass::ALL {
            for &top in &TimepointClass::ALL {
                for &interval in &IntervalClass::ALL {
                    for agm_bucket in 0u8..3 {
                        v.push(DomainCell {
                            birth,
                            top,
                            interval,
                            agm_bucket,
                        });
                    }
                }
            }
        }
        v
    }
}

fn timepoint_range(c: TimepointClass) -> (f64, f64) {
    match c {
        TimepointClass::V0 => (0.0, 0.0),
        TimepointClass::Early => (0.0, 0.25),
        TimepointClass::Middle => (0.25, 0.75),
        TimepointClass::Late => (0.75, 1.0),
    }
}

fn interval_range(c: IntervalClass) -> (f64, f64) {
    match c {
        IntervalClass::Zero => (0.0, 0.0),
        IntervalClass::Soon => (0.0, 0.10),
        IntervalClass::Fair => (0.10, 0.35),
        IntervalClass::Long => (0.35, 0.75),
        IntervalClass::VeryLong => (0.75, 1.0),
    }
}

/// The census of one populated domain cell.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CellCensus {
    /// Projects per pattern living in this cell.
    pub per_pattern: BTreeMap<Pattern, usize>,
}

impl CellCensus {
    /// Total projects in the cell.
    pub fn total(&self) -> usize {
        self.per_pattern.values().sum()
    }

    /// Whether more than one pattern populates the cell (a Fig. 6 overlap).
    pub fn is_overlap(&self) -> bool {
        self.per_pattern.len() > 1
    }
}

/// The Fig. 6 active-domain map: which cells are populated, by whom.
pub fn domain_coverage(items: &[(Pattern, Labels)]) -> BTreeMap<DomainCell, CellCensus> {
    let mut map: BTreeMap<DomainCell, CellCensus> = BTreeMap::new();
    for (p, l) in items {
        let cell = DomainCell::of(l);
        *map.entry(cell)
            .or_default()
            .per_pattern
            .entry(*p)
            .or_insert(0) += 1;
    }
    map
}

/// Summary of a disjointedness check over an annotated corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct DisjointednessReport {
    /// Number of populated cells.
    pub populated_cells: usize,
    /// Populated cells hosting more than one pattern.
    pub overlap_cells: usize,
    /// Projects living in overlap cells.
    pub overlap_projects: usize,
}

/// Checks essential disjointedness (§5.3) over an annotated corpus.
pub fn disjointedness(items: &[(Pattern, Labels)]) -> DisjointednessReport {
    let map = domain_coverage(items);
    let overlap_cells: Vec<&CellCensus> = map.values().filter(|c| c.is_overlap()).collect();
    DisjointednessReport {
        populated_cells: map.len(),
        overlap_cells: overlap_cells.len(),
        overlap_projects: overlap_cells.iter().map(|c| c.total()).sum(),
    }
}

/// Summary of the §5.5 completeness check.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletenessReport {
    /// Cells of the full Cartesian space.
    pub total_cells: usize,
    /// Cells that are attainable at all.
    pub attainable_cells: usize,
    /// Attainable cells populated by the corpus.
    pub covered_cells: usize,
}

impl CompletenessReport {
    /// Fraction of attainable cells covered by the corpus.
    pub fn coverage(&self) -> f64 {
        if self.attainable_cells == 0 {
            0.0
        } else {
            self.covered_cells as f64 / self.attainable_cells as f64
        }
    }
}

/// Computes the completeness report for an annotated corpus.
pub fn completeness(items: &[(Pattern, Labels)]) -> CompletenessReport {
    let all = DomainCell::all();
    let attainable: Vec<&DomainCell> = all.iter().filter(|c| c.attainable()).collect();
    let covered = domain_coverage(items);
    let covered_cells = attainable
        .iter()
        .filter(|c| covered.contains_key(**c))
        .count();
    CompletenessReport {
        total_cells: all.len(),
        attainable_cells: attainable.len(),
        covered_cells,
    }
}

/// Per-pattern cohesion (§5.2): the Mean Distance to Centroid of the
/// members' quantized cumulative lines. Patterns with no members are
/// omitted; the paper reports MDC values in `[0.06, 1.25]` for vectors of
/// 20 measurements.
pub fn cohesion(lines_by_pattern: &BTreeMap<Pattern, Vec<Vec<f64>>>) -> BTreeMap<Pattern, f64> {
    lines_by_pattern
        .iter()
        .filter(|(_, lines)| !lines.is_empty())
        .map(|(p, lines)| (*p, mean_distance_to_centroid(lines)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{ActiveGrowthClass, ActivePupClass, BirthVolumeClass, TailClass};

    fn labels(birth: TimepointClass, top: TimepointClass, iv: IntervalClass, agm: usize) -> Labels {
        Labels {
            birth_volume: BirthVolumeClass::Fair,
            birth_point: birth,
            topband_point: top,
            interval_birth_to_top: iv,
            interval_top_to_end: TailClass::Fair,
            active_growth: ActiveGrowthClass::Zero,
            active_pup: ActivePupClass::Zero,
            active_growth_months: agm,
            has_single_vault: false,
        }
    }

    #[test]
    fn unattainable_late_birth_early_top() {
        let c = DomainCell {
            birth: TimepointClass::Late,
            top: TimepointClass::Early,
            interval: IntervalClass::Zero,
            agm_bucket: 0,
        };
        assert!(!c.attainable());
    }

    #[test]
    fn unattainable_v0_birth_with_late_top_but_soon_interval() {
        let c = DomainCell {
            birth: TimepointClass::V0,
            top: TimepointClass::Late,
            interval: IntervalClass::Soon,
            agm_bucket: 0,
        };
        assert!(!c.attainable(), "0 → >0.75 cannot be a ≤0.1 interval");
    }

    #[test]
    fn attainable_basic_cells() {
        assert!(DomainCell {
            birth: TimepointClass::V0,
            top: TimepointClass::V0,
            interval: IntervalClass::Zero,
            agm_bucket: 0,
        }
        .attainable());
        assert!(DomainCell {
            birth: TimepointClass::Early,
            top: TimepointClass::Late,
            interval: IntervalClass::VeryLong,
            agm_bucket: 1,
        }
        .attainable());
    }

    #[test]
    fn zero_interval_cannot_host_active_months() {
        let c = DomainCell {
            birth: TimepointClass::Middle,
            top: TimepointClass::Middle,
            interval: IntervalClass::Zero,
            agm_bucket: 1,
        };
        assert!(!c.attainable());
    }

    #[test]
    fn full_space_has_240_cells_and_a_strict_subset_attainable() {
        let all = DomainCell::all();
        assert_eq!(all.len(), 4 * 4 * 5 * 3);
        let attainable = all.iter().filter(|c| c.attainable()).count();
        assert!(attainable > 20 && attainable < all.len(), "{attainable}");
    }

    #[test]
    fn domain_coverage_counts_and_overlaps() {
        let items = vec![
            (
                Pattern::Flatliner,
                labels(
                    TimepointClass::V0,
                    TimepointClass::V0,
                    IntervalClass::Zero,
                    0,
                ),
            ),
            (
                Pattern::Flatliner,
                labels(
                    TimepointClass::V0,
                    TimepointClass::V0,
                    IntervalClass::Zero,
                    0,
                ),
            ),
            (
                Pattern::RadicalSign,
                labels(
                    TimepointClass::V0,
                    TimepointClass::Early,
                    IntervalClass::Soon,
                    0,
                ),
            ),
        ];
        let cov = domain_coverage(&items);
        assert_eq!(cov.len(), 2);
        let rep = disjointedness(&items);
        assert_eq!(rep.populated_cells, 2);
        assert_eq!(rep.overlap_cells, 0);
        assert_eq!(rep.overlap_projects, 0);
    }

    #[test]
    fn overlap_detection() {
        let l = labels(
            TimepointClass::V0,
            TimepointClass::V0,
            IntervalClass::Zero,
            0,
        );
        let items = vec![(Pattern::Flatliner, l), (Pattern::RadicalSign, l)];
        let rep = disjointedness(&items);
        assert_eq!(rep.overlap_cells, 1);
        assert_eq!(rep.overlap_projects, 2);
    }

    #[test]
    fn completeness_counts_covered_attainable_cells() {
        let items = vec![(
            Pattern::Flatliner,
            labels(
                TimepointClass::V0,
                TimepointClass::V0,
                IntervalClass::Zero,
                0,
            ),
        )];
        let rep = completeness(&items);
        assert_eq!(rep.covered_cells, 1);
        assert!(rep.coverage() > 0.0 && rep.coverage() < 1.0);
    }

    #[test]
    fn cohesion_reports_mdc_per_pattern() {
        let mut m: BTreeMap<Pattern, Vec<Vec<f64>>> = BTreeMap::new();
        m.insert(Pattern::Flatliner, vec![vec![1.0; 20], vec![1.0; 20]]);
        m.insert(Pattern::Siesta, vec![]);
        let c = cohesion(&m);
        assert_eq!(c.get(&Pattern::Flatliner), Some(&0.0));
        assert!(!c.contains_key(&Pattern::Siesta));
    }
}
