//! A per-route circuit breaker: a sliding window of recent request
//! outcomes that sheds load while a route keeps failing.
//!
//! States follow the classic three-phase machine:
//!
//! - **closed** — requests proceed; outcomes feed the window. When at
//!   least [`MIN_SAMPLES`] outcomes are in the window and half or more
//!   failed, the breaker opens.
//! - **open** — every request is shed (the caller answers from its
//!   degraded cache or with `503`) until the cooldown elapses.
//! - **half-open** — exactly one probe request proceeds; its outcome
//!   decides between closing (success) and re-opening (failure). Further
//!   requests are shed while the probe is in flight.
//!
//! The breaker has no clock of its own: callers pass `Instant::now()` and
//! the cooldown in, which keeps the state machine deterministic under test.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Sliding-window size: only the most recent outcomes vote.
pub const WINDOW: usize = 16;

/// Minimum outcomes in the window before the failure rate can open the
/// breaker — a single failing first request must not blackhole a route.
pub const MIN_SAMPLES: usize = 8;

/// The admission decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Run the request and report its outcome via [`Breaker::record`].
    Proceed,
    /// Do not run the request; answer degraded.
    Shed,
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed,
    Open { opened: Instant },
    /// One probe is in flight; its [`Breaker::record`] resolves the state.
    HalfOpen,
}

/// One route's breaker: the current state plus the outcome window
/// (`true` = success) consulted while closed.
#[derive(Debug)]
pub struct Breaker {
    state: State,
    window: VecDeque<bool>,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            state: State::Closed,
            window: VecDeque::with_capacity(WINDOW),
        }
    }
}

impl Breaker {
    /// Admission check for one request at time `now`. An open breaker past
    /// its cooldown transitions to half-open and admits the caller as the
    /// probe.
    pub fn check(&mut self, now: Instant, cooldown: Duration) -> Gate {
        match self.state {
            State::Closed => Gate::Proceed,
            State::Open { opened } => {
                if now.duration_since(opened) >= cooldown {
                    self.state = State::HalfOpen;
                    Gate::Proceed
                } else {
                    Gate::Shed
                }
            }
            State::HalfOpen => Gate::Shed,
        }
    }

    /// Reports the outcome of an admitted request. In half-open state this
    /// is the probe verdict: success closes the breaker, failure re-opens
    /// it for another cooldown.
    pub fn record(&mut self, ok: bool, now: Instant) {
        match self.state {
            State::HalfOpen => {
                if ok {
                    self.state = State::Closed;
                    self.window.clear();
                } else {
                    self.state = State::Open { opened: now };
                }
            }
            // A straggler finishing after the breaker already opened (e.g.
            // a request admitted just before the opening one) has no vote.
            State::Open { .. } => {}
            State::Closed => {
                self.window.push_back(ok);
                while self.window.len() > WINDOW {
                    self.window.pop_front();
                }
                let failures = self.window.iter().filter(|&&s| !s).count();
                if self.window.len() >= MIN_SAMPLES && failures * 2 >= self.window.len() {
                    self.state = State::Open { opened: now };
                    self.window.clear();
                }
            }
        }
    }

    /// The state as reported on `/health`. An open breaker past its
    /// cooldown reports `half-open` (the next request will probe) without
    /// mutating anything.
    pub fn state_name(&self, now: Instant, cooldown: Duration) -> &'static str {
        match self.state {
            State::Closed => "closed",
            State::Open { opened } => {
                if now.duration_since(opened) >= cooldown {
                    "half-open"
                } else {
                    "open"
                }
            }
            State::HalfOpen => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COOLDOWN: Duration = Duration::from_millis(100);

    fn failed_open_breaker(now: Instant) -> Breaker {
        let mut b = Breaker::default();
        for _ in 0..MIN_SAMPLES {
            assert_eq!(b.check(now, COOLDOWN), Gate::Proceed);
            b.record(false, now);
        }
        b
    }

    #[test]
    fn stays_closed_on_successes_and_sparse_failures() {
        let now = Instant::now();
        let mut b = Breaker::default();
        for i in 0..50 {
            assert_eq!(b.check(now, COOLDOWN), Gate::Proceed, "request {i}");
            // One failure in four: well under the 50% threshold.
            b.record(i % 4 != 0, now);
        }
        assert_eq!(b.state_name(now, COOLDOWN), "closed");
    }

    #[test]
    fn opens_at_half_failures_but_not_before_min_samples() {
        let now = Instant::now();
        let mut b = Breaker::default();
        for _ in 0..MIN_SAMPLES - 1 {
            b.record(false, now);
        }
        assert_eq!(
            b.state_name(now, COOLDOWN),
            "closed",
            "below the sample floor"
        );
        b.record(false, now);
        assert_eq!(b.state_name(now, COOLDOWN), "open");
        assert_eq!(b.check(now, COOLDOWN), Gate::Shed);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let start = Instant::now();
        let mut b = failed_open_breaker(start);
        let later = start + COOLDOWN;
        assert_eq!(b.state_name(later, COOLDOWN), "half-open");
        assert_eq!(b.check(later, COOLDOWN), Gate::Proceed, "the probe");
        assert_eq!(b.check(later, COOLDOWN), Gate::Shed, "probe in flight");
        b.record(true, later);
        assert_eq!(b.state_name(later, COOLDOWN), "closed");
        assert_eq!(b.check(later, COOLDOWN), Gate::Proceed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let start = Instant::now();
        let mut b = failed_open_breaker(start);
        let later = start + COOLDOWN;
        assert_eq!(b.check(later, COOLDOWN), Gate::Proceed);
        b.record(false, later);
        assert_eq!(b.state_name(later, COOLDOWN), "open");
        assert_eq!(b.check(later, COOLDOWN), Gate::Shed);
        // And the cycle repeats after another cooldown.
        let again = later + COOLDOWN;
        assert_eq!(b.check(again, COOLDOWN), Gate::Proceed);
        b.record(true, again);
        assert_eq!(b.state_name(again, COOLDOWN), "closed");
    }

    #[test]
    fn stragglers_do_not_vote_while_open() {
        let now = Instant::now();
        let mut b = failed_open_breaker(now);
        b.record(true, now);
        assert_eq!(b.state_name(now, COOLDOWN), "open");
    }
}
