//! Maps logical `DiffOp`s back to the source line of the DDL statement
//! that caused them, so diagnostics carry `script:line` spans.

use schemachron_ddl::ast::{AlterAction, Statement, TableConstraint};
use schemachron_ddl::{parse_statements_spanned, SpannedStatement};
use schemachron_dialect::DiffOp;

/// A parsed script indexed for op → line lookups.
pub struct ScriptIndex {
    statements: Vec<SpannedStatement>,
}

impl ScriptIndex {
    /// Parses `sql` once; parse errors are ignored here (the flow lint
    /// reports them as L008).
    pub fn new(sql: &str) -> Self {
        let (statements, _diags) = parse_statements_spanned(sql);
        ScriptIndex { statements }
    }

    /// The 1-based line of the first statement that can account for `op`,
    /// or `None` when the op has no syntactic anchor in this script (e.g.
    /// a diff computed between snapshot dumps).
    pub fn line_of(&self, op: &DiffOp) -> Option<u32> {
        self.statements
            .iter()
            .find(|s| statement_matches(&s.statement, op))
            .map(|s| s.line)
    }
}

#[allow(clippy::too_many_lines)]
fn statement_matches(stmt: &Statement, op: &DiffOp) -> bool {
    match op {
        DiffOp::CreateTable(t) => {
            matches!(stmt, Statement::CreateTable(ct) if ct.name == t.name)
        }
        DiffOp::DropTable(name) => match stmt {
            Statement::DropTable { names, .. } => names.contains(name),
            // A rename consumes the old name too.
            Statement::RenameTable { renames } => renames.iter().any(|(old, _)| old == name),
            Statement::AlterTable { name: t, actions } => {
                t == name
                    && actions
                        .iter()
                        .any(|a| matches!(a, AlterAction::RenameTable(_)))
            }
            _ => false,
        },
        DiffOp::AddColumn { table, attr } => match stmt {
            Statement::AlterTable { name, actions } if name == table => {
                actions.iter().any(|a| match a {
                    AlterAction::AddColumn { def, .. } => def.name == attr.name,
                    AlterAction::ChangeColumn { def, .. } => def.name == attr.name,
                    AlterAction::RenameColumn { new, .. } => *new == attr.name,
                    _ => false,
                })
            }
            // Birth with the table is covered by the CreateTable op; a
            // rebuilt table's columns anchor on its CREATE.
            Statement::CreateTable(ct) => {
                ct.name == *table && ct.columns.iter().any(|c| c.name == attr.name)
            }
            _ => false,
        },
        DiffOp::DropColumn { table, column } => match stmt {
            Statement::AlterTable { name, actions } if name == table => {
                actions.iter().any(|a| match a {
                    AlterAction::DropColumn(c) => c == column,
                    AlterAction::ChangeColumn { old, .. } => old == column,
                    AlterAction::RenameColumn { old, .. } => old == column,
                    _ => false,
                })
            }
            _ => false,
        },
        DiffOp::AlterColumn { table, to, .. } => match stmt {
            Statement::AlterTable { name, actions } if name == table => {
                actions.iter().any(|a| match a {
                    AlterAction::ModifyColumn(def) | AlterAction::ChangeColumn { def, .. } => {
                        def.name == to.name
                    }
                    AlterAction::AlterColumnType { name, .. }
                    | AlterAction::AlterColumnDefault { name, .. }
                    | AlterAction::AlterColumnNull { name, .. } => *name == to.name,
                    _ => false,
                })
            }
            _ => false,
        },
        DiffOp::SetPrimaryKey { table, .. } => match stmt {
            Statement::AlterTable { name, actions } if name == table => {
                actions.iter().any(|a| {
                    matches!(
                        a,
                        AlterAction::AddConstraint(TableConstraint::PrimaryKey(_))
                            | AlterAction::DropPrimaryKey
                    )
                })
            }
            _ => false,
        },
        DiffOp::AddForeignKey { table, fk } | DiffOp::DropForeignKey { table, fk } => match stmt {
            Statement::AlterTable { name, actions } if name == table => {
                actions.iter().any(|a| match a {
                    AlterAction::AddConstraint(TableConstraint::ForeignKey {
                        ref_table,
                        columns,
                        ..
                    }) => *ref_table == fk.ref_table && *columns == fk.columns,
                    AlterAction::DropForeignKey(_) | AlterAction::DropConstraint(_) => {
                        matches!(op, DiffOp::DropForeignKey { .. })
                    }
                    _ => false,
                })
            }
            _ => false,
        },
        DiffOp::AddUnique { table, columns } | DiffOp::DropUnique { table, columns } => {
            match stmt {
                Statement::AlterTable { name, actions } if name == table => {
                    actions.iter().any(|a| match a {
                        AlterAction::AddConstraint(TableConstraint::Unique(cols)) => {
                            cols == columns
                        }
                        AlterAction::DropConstraint(_) => {
                            matches!(op, DiffOp::DropUnique { .. })
                        }
                        _ => false,
                    })
                }
                _ => false,
            }
        }
        DiffOp::CreateView(v) => {
            matches!(stmt, Statement::CreateView { name, .. } if *name == v.name)
        }
        DiffOp::DropView(view) => {
            matches!(stmt, Statement::DropView { names } if names.contains(view))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_model::{Attribute, DataType, Name};

    #[test]
    fn lines_anchor_on_the_causing_statement() {
        let sql = "CREATE TABLE t (a INT);\n\
                   ALTER TABLE t ADD COLUMN b INT;\n\
                   ALTER TABLE t DROP COLUMN a;\n\
                   DROP TABLE t;";
        let idx = ScriptIndex::new(sql);
        let add = DiffOp::AddColumn {
            table: Name::new("t"),
            attr: Attribute::new("b", DataType::named("int")),
        };
        assert_eq!(idx.line_of(&add), Some(2));
        let drop_col = DiffOp::DropColumn {
            table: Name::new("t"),
            column: Name::new("a"),
        };
        assert_eq!(idx.line_of(&drop_col), Some(3));
        assert_eq!(idx.line_of(&DiffOp::DropTable(Name::new("t"))), Some(4));
        assert_eq!(idx.line_of(&DiffOp::DropTable(Name::new("ghost"))), None);
    }
}
