//! A bounded worker pool for connection handling.
//!
//! The same philosophy as `schemachron_corpus::parallel` — plain `std`
//! threads, no dependencies, work claimed from one shared source — adapted
//! from batch fan-out to a long-lived service: a `sync_channel` of accepted
//! connections feeds workers that share the receiver behind a mutex. The
//! channel bound is the backpressure valve (the accept loop answers `503`
//! when [`WorkerPool::try_dispatch`] reports a full queue), and shutdown is
//! a poison pill per worker, so every connection already queued is served
//! before the pool drains.

use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The connection handler run by each worker.
pub type Handler = Arc<dyn Fn(TcpStream) + Send + Sync>;

enum Job {
    Conn(TcpStream),
    Poison,
}

/// A fixed-size pool of connection workers over a bounded queue.
pub struct WorkerPool {
    tx: SyncSender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `jobs` workers (min 1) behind a queue of `queue_depth`
    /// pending connections.
    pub fn new(jobs: usize, queue_depth: usize, handler: Handler) -> WorkerPool {
        let jobs = jobs.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_depth.max(1));
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        let workers = (0..jobs)
            .filter_map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while waiting for a job, never
                        // while handling one.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(Job::Conn(stream)) => handler(stream),
                            Ok(Job::Poison) | Err(_) => break,
                        }
                    })
                    // A failed spawn (resource exhaustion) shrinks the pool
                    // instead of killing the server; with zero workers the
                    // bounded queue fills and the accept loop sheds 503s.
                    .ok()
            })
            .collect();
        WorkerPool { tx, workers }
    }

    /// Queues a connection for handling. Gives the stream back when the
    /// queue is full (backpressure) or the pool is shut down, so the caller
    /// can answer `503` itself.
    pub fn try_dispatch(&self, stream: TcpStream) -> Result<(), TcpStream> {
        self.tx.try_send(Job::Conn(stream)).map_err(|e| match e {
            TrySendError::Full(Job::Conn(s)) | TrySendError::Disconnected(Job::Conn(s)) => s,
            _ => unreachable!("only connections are dispatched"),
        })
    }

    /// Drains the pool: every queued connection is still handled, then each
    /// worker swallows one poison pill and exits. Blocks until all workers
    /// have joined.
    pub fn shutdown(self) {
        for _ in &self.workers {
            // The queue may be full of real work; block until the pill fits.
            let _ = self.tx.send(Job::Poison);
        }
        drop(self.tx);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn handles_dispatched_connections_then_drains() {
        static HANDLED: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(
            2,
            8,
            Arc::new(|_s| {
                HANDLED.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let mut keep = Vec::new();
        for _ in 0..5 {
            let (a, b) = loopback_pair();
            keep.push(a);
            pool.try_dispatch(b).expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(HANDLED.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn full_queue_returns_the_stream() {
        // One worker parked on a gate + queue depth 1: once the worker has
        // claimed a job and a second sits queued, a third must bounce.
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(
                1,
                1,
                Arc::new(move |_s| {
                    let _wait = gate.lock().unwrap();
                }),
            )
        };
        let mut keep = Vec::new();
        let mut queued = 0;
        // Dispatch until the queue refuses: worker holds one, queue one.
        while queued < 2 {
            let (a, b) = loopback_pair();
            keep.push(a);
            if pool.try_dispatch(b).is_ok() {
                queued += 1;
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (_a, b) = loopback_pair();
        assert!(
            pool.try_dispatch(b).is_err(),
            "third connection should bounce off the bounded queue"
        );
        drop(held);
        pool.shutdown();
    }
}
