//! Checkpoint artifacts in the pipeline's content-hash stage cache.
//!
//! A built [`AsOfIndex`] (snapshot checkpoints + delta log) is published as
//! **one** artifact per `(project, K)` in the process-wide lock-striped
//! `PipelineCache`, under its own stage namespace [`CHECKPOINT_STAGE`]. The
//! key chains from the project's *history-stage* key (chain link 5 of the
//! ingestion pipeline), so the PR-3 invalidation discipline extends for
//! free: editing a card re-fingerprints its history artifact, which
//! re-fingerprints every as-of index built on it. The lint `H005` audit
//! restates this derivation independently and flags any resident index
//! whose key it cannot reproduce.
//!
//! Builds are quarantined exactly like pipeline stages: a build that
//! panics (e.g. via the `asof::checkpoint` fault site) never publishes a
//! cache entry — the panic propagates after bumping the namespace's
//! quarantine counter, and the next caller sees a plain retryable miss.

use std::ops::Deref;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use schemachron_corpus::pipeline::{
    derive_key, history_stage_key, insert_stage_artifact, record_stage_quarantine, stage_artifact,
    StageKey,
};
use schemachron_corpus::CorpusProject;
use schemachron_fault as fault;
use schemachron_hash::{fnv1a, FNV_OFFSET};

use crate::index::AsOfIndex;

/// The as-of subsystem's stage-cache namespace.
pub const CHECKPOINT_STAGE: &str = "asof-checkpoint";

/// Logic version of the index layout, mixed into every checkpoint key. Bump
/// it when [`AsOfIndex`]'s construction changes so stale cached indexes can
/// never be served.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A cached as-of index plus the provenance of its own cache key, so the
/// lint auditor can re-derive the key from first principles. Shared via
/// [`Arc`] (the index's lookup memo makes it deliberately clone-averse).
#[derive(Debug)]
pub struct AsOfArtifact {
    /// The history-stage key of the project the index was built from.
    pub history_key: StageKey,
    /// The (clamped) checkpoint spacing the index was built with.
    pub k_months: usize,
    /// The index itself.
    pub index: AsOfIndex,
}

impl Deref for AsOfArtifact {
    type Target = AsOfIndex;

    fn deref(&self) -> &AsOfIndex {
        &self.index
    }
}

/// Derives the cache key of a project's as-of index: the stage-chaining
/// hash of this namespace's identity over the K-salted history key.
/// Deterministic and content-addressed — any change to the card, the seed,
/// an upstream stage version or K lands on a different key.
pub fn checkpoint_key(history_key: StageKey, k_months: usize) -> StageKey {
    let salted = fnv1a(FNV_OFFSET, &(k_months as u64).to_le_bytes());
    let salted = fnv1a(salted, &history_key.to_le_bytes());
    derive_key(CHECKPOINT_STAGE, CHECKPOINT_VERSION, salted)
}

/// The as-of index for a corpus project at checkpoint spacing `k_months`
/// (clamped to at least 1), served from the stage cache when already built.
/// Returns `None` when the project's history retains no schema versions.
///
/// # Panics
/// Propagates a panicking build (including injected `asof::checkpoint`
/// faults) after recording a quarantine — never after publishing an entry.
pub fn index_for(
    project: &CorpusProject,
    seed: u64,
    k_months: usize,
) -> Option<Arc<AsOfArtifact>> {
    let k_months = k_months.max(1);
    let history_key = history_stage_key(&project.card, seed);
    let key = checkpoint_key(history_key, k_months);
    if let Some(hit) = stage_artifact::<AsOfArtifact>(CHECKPOINT_STAGE, key) {
        return Some(hit);
    }
    let started = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| {
        fault::checkpoint_point(&format!("{CHECKPOINT_STAGE}:{key:016x}"));
        AsOfIndex::build(&project.history, k_months)
    }));
    match built {
        Ok(Some(index)) => {
            let artifact = Arc::new(AsOfArtifact {
                history_key,
                k_months,
                index,
            });
            insert_stage_artifact(CHECKPOINT_STAGE, key, artifact.clone(), started.elapsed());
            Some(artifact)
        }
        Ok(None) => None,
        Err(payload) => {
            // Quarantine: the key was never published, so the next caller
            // gets a clean retryable miss instead of a poisoned artifact.
            record_stage_quarantine(CHECKPOINT_STAGE);
            resume_unwind(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_corpus::cards::all_cards;
    use schemachron_corpus::{Card, Corpus};

    #[test]
    fn checkpoint_keys_chain_from_history_and_k() {
        let k = checkpoint_key(7, 12);
        assert_ne!(k, checkpoint_key(8, 12), "history key must matter");
        assert_ne!(k, checkpoint_key(7, 6), "K must matter");
        assert_eq!(k, checkpoint_key(7, 12), "keys are deterministic");
    }

    #[test]
    fn warm_lookup_returns_the_cached_allocation() {
        // A private seed so this test never races others on the same keys.
        let seed = 90_142;
        let cards: Vec<Card> = all_cards().into_iter().take(2).collect();
        let corpus = Corpus::from_cards(cards, seed, 1);
        let project = &corpus.projects()[0];
        let cold = index_for(project, seed, 12).unwrap();
        let warm = index_for(project, seed, 12).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "second lookup must be a cache hit");
        let other_k = index_for(project, seed, 6).unwrap();
        assert!(!Arc::ptr_eq(&cold, &other_k), "K is part of the identity");
        assert_eq!(cold.project(), project.history.name());
        assert_eq!(cold.k_months, 12);
        assert_eq!(cold.history_key, history_stage_key(&project.card, seed));
    }
}
