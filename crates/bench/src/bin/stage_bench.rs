//! Incremental-rebuild benchmark for the staged ingestion pipeline.
//!
//! Measures three corpus builds over the 151 calibrated cards:
//!
//! 1. **full** — cold stage cache, every stage of every project recomputes;
//! 2. **warm** — identical cards again, everything served from the cache;
//! 3. **incremental** — one card mutated, so exactly one project re-runs its
//!    stage chain while the other 150 stay cached.
//!
//! Writes `BENCH_stages.json` at the workspace root (next to
//! `BENCH_pipeline.json`) with the timings, the full/incremental speedup and
//! the per-stage hit/miss/busy counters of the full and incremental windows.
//! Exits nonzero when the single-project-invalidated rebuild is not faster
//! than the full rebuild — the property the stage cache exists to provide.

use std::time::Instant;

use schemachron_corpus::cards::all_cards;
use schemachron_corpus::pipeline::{self, StageStats};
use schemachron_corpus::{Card, Corpus};

/// Timing repetitions; the minimum is reported to damp scheduler noise.
const REPS: usize = 3;

fn stats_json(stats: &[StageStats]) -> serde_json::Value {
    serde_json::Value::Array(
        stats
            .iter()
            .map(|s| {
                serde_json::json!({
                    "stage": (s.stage),
                    "hits": (s.hits),
                    "misses": (s.misses),
                    "busy_ms": (s.busy_ns as f64 / 1e6),
                })
            })
            .collect(),
    )
}

/// Times one `from_cards` build, returning milliseconds.
fn time_build(cards: Vec<Card>, seed: u64, jobs: usize) -> f64 {
    let start = Instant::now();
    let corpus = Corpus::from_cards(cards, seed, jobs);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(corpus.projects().len(), 151);
    ms
}

fn main() {
    let seed = schemachron_bench::DEFAULT_SEED;
    let jobs = schemachron_corpus::effective_jobs();
    let cards = all_cards();

    // Full rebuild: cold cache every repetition.
    let mut full_ms = f64::INFINITY;
    let mut full_stages = Vec::new();
    for _ in 0..REPS {
        pipeline::clear_stage_cache();
        pipeline::reset_stage_stats();
        let ms = time_build(cards.clone(), seed, jobs);
        if ms < full_ms {
            full_ms = ms;
            full_stages = pipeline::stage_stats();
        }
    }

    // Warm rebuild: same cards, everything cached.
    let mut warm_ms = f64::INFINITY;
    for _ in 0..REPS {
        warm_ms = warm_ms.min(time_build(cards.clone(), seed, jobs));
    }

    // Incremental rebuild: one card renamed per repetition (a fresh name
    // each time, so the mutant is never pre-cached), 150 projects cached.
    let mut incremental_ms = f64::INFINITY;
    let mut incremental_stages = Vec::new();
    for rep in 0..REPS {
        let mut mutated = cards.clone();
        mutated[0].name = format!("{}-stagebench-{rep}", mutated[0].name);
        pipeline::reset_stage_stats();
        let ms = time_build(mutated, seed, jobs);
        if ms < incremental_ms {
            incremental_ms = ms;
            incremental_stages = pipeline::stage_stats();
        }
    }

    let speedup = full_ms / incremental_ms;
    println!(
        "bench: stages  full {full_ms:>9.3}ms  warm {warm_ms:>9.3}ms  \
         incremental(1 card) {incremental_ms:>9.3}ms  speedup {speedup:.1}x"
    );

    let report = serde_json::json!({
        "bench": "stages/incremental_rebuild",
        "seed": seed,
        "jobs": jobs,
        "projects": (cards.len()),
        "reps": REPS,
        "full_ms": full_ms,
        "warm_ms": warm_ms,
        "incremental_ms": incremental_ms,
        "speedup": speedup,
        "full_stages": (stats_json(&full_stages)),
        "incremental_stages": (stats_json(&incremental_stages)),
    });
    // CARGO_MANIFEST_DIR = crates/bench, so ../.. is the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stages.json");
    match std::fs::write(out, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => println!("bench: wrote {out}"),
        Err(e) => eprintln!("bench: could not write {out}: {e}"),
    }

    if incremental_ms >= full_ms {
        eprintln!(
            "bench: FAIL — invalidating one project must rebuild faster than \
             the full corpus ({incremental_ms:.3}ms vs {full_ms:.3}ms)"
        );
        std::process::exit(1);
    }
}
