//! `schemachron chaos` end-to-end through the library entry point: flag
//! validation, the healthy-path verdict, and the headline determinism
//! guarantee — the report is byte-identical at any `--jobs` level.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Chaos drives process-global state (fault plan, stage cache, worker
/// count); serialize the tests in this binary.
static GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

fn run_chaos(args: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    let mut buf = Vec::new();
    let result = schemachron_cli::run(&argv, &mut buf);
    let out = String::from_utf8(buf).expect("utf8 output");
    schemachron_corpus::set_jobs(None);
    match result {
        Ok(()) => Ok(out),
        Err(e) => Err(format!("{}\n{out}", e.message)),
    }
}

#[test]
fn chaos_flag_validation() {
    let _g = exclusive();
    for bad in [
        &["chaos", "--rate", "1.5"][..],
        &["chaos", "--rate", "abc"],
        &["chaos", "--fault-seed", "xyz"],
        &["chaos", "--site", "bogus::site"],
        &["chaos", "--slow-ms", "-4"],
    ] {
        let err = run_chaos(bad).expect_err(&format!("{bad:?} must be rejected"));
        assert!(err.contains("invalid") || err.contains("unknown"), "{err}");
    }
}

#[test]
fn chaos_rate_zero_is_a_clean_pass_with_no_injections() {
    let _g = exclusive();
    // A generous --slow-ms widens the serve deadline (derived from it), so
    // a loaded test machine cannot produce a spurious timeout.
    let out =
        run_chaos(&["chaos", "--rate", "0.0", "--slow-ms", "600"]).expect("rate 0 drill must pass");
    assert!(
        out.contains("recovered: built 151/151 projects"),
        "{out}"
    );
    assert!(out.contains("attempt 1: complete"), "{out}");
    assert!(
        out.contains("complete project directories: 151/151"),
        "{out}"
    );
    assert!(
        out.contains("recovered corpus ≡ fault-free corpus (151/151 projects identical)"),
        "{out}"
    );
    assert!(out.contains("total injected: 0"), "{out}");
    assert!(out.contains("verdict: OK"), "{out}");
    // No request may time out or shed when nothing is injected.
    assert!(!out.contains("504") && !out.contains("503"), "{out}");
}

#[test]
fn chaos_report_is_byte_identical_across_jobs() {
    let _g = exclusive();
    // --slow-ms 300 keeps injected stalls decisively past the derived
    // deadline while giving healthy requests ample headroom.
    let args = ["--fault-seed", "3", "--rate", "0.3", "--slow-ms", "300"];
    let jobs1 = run_chaos(&[&["chaos", "--jobs", "1"][..], &args].concat())
        .expect("jobs 1 drill must pass");
    let jobs8 = run_chaos(&[&["chaos", "--jobs", "8"][..], &args].concat())
        .expect("jobs 8 drill must pass");
    assert_eq!(jobs1, jobs8, "the chaos report must not depend on --jobs");
    assert!(jobs1.contains("verdict: OK"), "{jobs1}");
    // The drill actually injected at this rate — the determinism is not
    // vacuous.
    assert!(!jobs1.contains("total injected: 0"), "{jobs1}");
}

#[test]
fn usage_documents_chaos_and_deadline() {
    let _g = exclusive();
    let usage = schemachron_cli::usage();
    assert!(usage.contains("chaos"), "{usage}");
    assert!(usage.contains("--fault-seed"), "{usage}");
    assert!(usage.contains("--deadline-ms"), "{usage}");
}
