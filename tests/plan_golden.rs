//! Migration-plan goldens through the real CLI entry point: the five
//! checked-in `goldens/plan/*.json` scripts must be reproduced byte for
//! byte by `schemachron plan ... --format json`, and a plan sqlite cannot
//! express with rebuilds disabled must be refused with the exact typed
//! error and the plan exit code (2).

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// allow-in-tests escape hatch does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

fn repo_path(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

fn run_plan(args: &[&str]) -> (Result<(), schemachron_cli::CliError>, String) {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    let mut buf: Vec<u8> = Vec::new();
    let result = schemachron_cli::run(&argv, &mut buf);
    (result, String::from_utf8(buf).expect("plan output is UTF-8"))
}

#[test]
fn plan_goldens_match_byte_for_byte_at_jobs_1_and_8() {
    let cases = [
        ("curated-132", "2015-12", "2017-06", "pg"),
        ("curated-132", "2015-12", "2017-06", "mysql"),
        ("curated-132", "2015-12", "2017-06", "sqlite"),
        ("funnel-148", "2017-03", "2017-11", "pg"),
        ("radical-049", "2017-10", "2020-10", "sqlite"),
    ];
    for (project, from, to, dialect) in cases {
        let golden = std::fs::read_to_string(repo_path(&format!(
            "goldens/plan/{project}_{from}_{to}_{dialect}.json"
        )))
        .expect("checked-in golden");
        for jobs in ["1", "8"] {
            let (result, out) = run_plan(&[
                "plan", project, "--from", from, "--to", to, "--dialect", dialect,
                "--format", "json", "--jobs", jobs,
            ]);
            result.unwrap_or_else(|e| {
                panic!("{project} {from}->{to} {dialect} --jobs {jobs}: {}", e.message)
            });
            assert_eq!(
                out, golden,
                "{project} {from}->{to} {dialect} --jobs {jobs}: drifted from the golden"
            );
        }
    }
}

#[test]
fn sqlite_without_rebuilds_refuses_with_the_exact_typed_error() {
    let (result, out) = run_plan(&[
        "plan", "curated-132", "--from", "2015-12", "--to", "2017-06",
        "--dialect", "sqlite", "--no-rebuild",
    ]);
    assert!(out.is_empty(), "a refused plan writes nothing to stdout");
    let err = result.expect_err("sqlite cannot express this span in place");
    assert_eq!(err.code, schemachron_cli::EXIT_PLAN);
    let mut lines = err.message.lines();
    assert_eq!(
        lines.next(),
        Some(
            "plan: unsupported op `alter_column customers_1.updated_at_4 \
             (bigint -> timestamp)` for dialect sqlite: sqlite has no ALTER COLUMN"
        )
    );
    assert_eq!(
        lines.next(),
        Some(
            "hint: sqlite cannot alter columns, keys or constraints in place; \
             allow table rebuilds (omit --no-rebuild), or plan for mysql/pg instead"
        )
    );
}
