//! Quickstart: parse two schema versions, measure the change between them,
//! then watch a whole project history classify itself.
//!
//! Run with: `cargo run --example quickstart`

use schemachron::core::metrics::TimeMetrics;
use schemachron::core::quantize::Labels;
use schemachron::core::{classify, classify_nearest};
use schemachron::ddl::parse_schema;
use schemachron::history::{Date, ProjectHistoryBuilder};
use schemachron::model::diff;

fn main() {
    // ---- 1. Parse and diff two versions of a schema ---------------------
    let v1 = r#"
        CREATE TABLE users (
            id INT NOT NULL AUTO_INCREMENT,
            name VARCHAR(64),
            PRIMARY KEY (id)
        );
    "#;
    let v2 = r#"
        CREATE TABLE users (
            id INT NOT NULL AUTO_INCREMENT,
            name VARCHAR(128),              -- type changed
            email VARCHAR(255),             -- injected
            PRIMARY KEY (id)
        );
        CREATE TABLE orders (               -- new table
            id INT PRIMARY KEY,
            user_id INT REFERENCES users (id),
            total DECIMAL(10, 2)
        );
    "#;
    let (old, _diags) = parse_schema(v1);
    let (new, _diags) = parse_schema(v2);
    let d = diff(&old, &new);
    println!("version 1 → version 2:");
    for c in &d.changes {
        println!("  {}.{}  [{}]", c.table, c.attribute, c.kind.label());
    }
    println!(
        "  = {} affected attributes ({} expansion, {} maintenance)\n",
        d.attribute_change_count(),
        d.expansion_count(),
        d.maintenance_count()
    );

    // ---- 2. Build a project history and classify its pattern ------------
    let mut b = ProjectHistoryBuilder::new("quickstart-demo");
    b.snapshot(Date::new(2020, 1, 10), v1);
    b.snapshot(Date::new(2020, 2, 20), v2);
    // Source code keeps evolving long after the schema froze:
    for month in 1..=36 {
        let d = Date::new(2020 + (month - 1) / 12, ((month - 1) % 12 + 1) as u8, 25);
        b.source_commit(d, 150.0);
    }
    let project = b.build();

    let metrics = TimeMetrics::from_project(&project).expect("schema exists");
    let labels = Labels::from_metrics(&metrics);
    println!(
        "project lifetime: {} months; schema born month {} carrying {:.0}% of all change",
        metrics.pup_months,
        metrics.birth_index,
        metrics.birth_volume_pct_total * 100.0
    );
    match classify(&labels) {
        Some(p) => println!("time-related pattern: {} (family: {})", p, p.family()),
        None => {
            let (p, _) = classify_nearest(&labels);
            println!("exception profile; nearest pattern: {p}");
        }
    }
}
