#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron
//!
//! Umbrella crate for the `schemachron` workspace: a full reproduction of
//! the EDBT 2025 study *"Time-Related Patterns Of Schema Evolution"*.
//!
//! This crate re-exports every sub-crate under a stable module name, so a
//! downstream user can depend on `schemachron` alone:
//!
//! ```
//! use schemachron::model::{Schema, Table, Attribute, DataType};
//! use schemachron::core::patterns::Pattern;
//!
//! let mut schema = Schema::new();
//! let mut t = Table::new("users");
//! t.push_attribute(Attribute::new("id", DataType::named("int")));
//! schema.insert_table(t);
//! assert_eq!(schema.table_count(), 1);
//! assert_eq!(Pattern::ALL.len(), 8);
//! ```
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.

/// Logical schema model, diff engine and change taxonomy.
pub use schemachron_model as model;

/// Tolerant multi-dialect SQL DDL lexer, parser and schema builder.
pub use schemachron_ddl as ddl;

/// Version histories, month-granule heartbeats, cumulative activity.
pub use schemachron_history as history;

/// Statistics substrate (Spearman, Shapiro-Wilk, histograms, CART, centroids).
pub use schemachron_stats as stats;

/// The paper's contribution: time metrics, quantization, the 8 patterns,
/// classification, validation and birth-point prediction.
pub use schemachron_core as core;

/// The calibrated synthetic corpus of 151 schema histories.
pub use schemachron_corpus as corpus;

/// ASCII and SVG renderers for cumulative evolution lines.
pub use schemachron_chart as chart;

/// Implicit-schema extraction from document stores (NoSQL adapter) — the
/// paper's first future-work direction, demonstrating pattern universality.
pub use schemachron_nosql as nosql;

/// Embedded HTTP/JSON query service over corpora, patterns and experiment
/// artifacts (`schemachron serve`).
pub use schemachron_serve as serve;
