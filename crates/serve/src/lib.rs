#![deny(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-serve
//!
//! An embedded, dependency-free HTTP/1.1 JSON service over the corpus,
//! pattern classification and experiment artifacts — the long-lived query
//! form of the batch pipeline, exposed by the CLI as `schemachron serve`.
//!
//! ## Routes
//!
//! | route | payload |
//! |-------|---------|
//! | `GET /health` | liveness, uptime, per-route request counters |
//! | `GET /corpus/{seed}/projects[?pattern=p]` | per-project summaries of the seed's corpus |
//! | `GET /project/{id}/history[?seed=s]` | monthly schema/source heartbeats |
//! | `GET /project/{id}/pattern[?seed=s]` | classification + the Table-1 label tuple |
//! | `GET /project/{id}/diagnostics[?seed=s]` | the static analyzer's findings (`schemachron lint` JSON shape) |
//! | `GET /experiments/{id}` | a paper table/figure as JSON (matches `goldens/experiments/`) |
//! | `GET /chart/{id}.svg[?seed=s&w=&h=]` | the cumulative evolution chart as SVG |
//! | `POST /project/{id}/commit` | append one commit to the project's WAL (idempotent via `seq`) |
//! | `GET /changes[?since=c&max=n&wait_ms=t&format=sse]` | the cursored change feed, long-poll or SSE |
//!
//! ## Architecture
//!
//! [`Server`] owns a `std::net::TcpListener` and a bounded [`pool`] of
//! worker threads; the accept loop hands each connection to the pool and
//! answers `503` itself when the queue is full (backpressure instead of
//! unbounded buffering). All routes read from the process-wide, seed-keyed
//! `Arc<Corpus>` cache and the memoized `ExpContext` models, so a server
//! under concurrent load builds each corpus exactly once
//! (`Corpus::build_count()` is the observable proof). Shutdown is graceful:
//! a [`ShutdownHandle`] (wired to SIGINT/SIGTERM by the CLI) stops the
//! accept loop, poison pills drain the workers, and in-flight requests
//! complete before the process exits.
//!
//! ## Resilience
//!
//! Every non-`/health` request runs behind a guard
//! ([`AppState::handle_guarded`]): a per-request wall-clock deadline
//! (`504` past it) and a per-route circuit [`breaker`] that sheds load
//! to a degraded cached answer (or `503`) while a route keeps failing,
//! then probes half-open after a cooldown. `/health` reports breaker
//! states and `schemachron-fault` injection counters.
//!
//! ## Streaming
//!
//! `POST /project/{id}/commit` appends one commit to the project's
//! crash-safe WAL (`schemachron-stream`, fsync *before* the ack),
//! re-runs exactly one classification chain, and announces the pattern
//! transition on the bounded `GET /changes` feed — JSON long-poll or
//! Server-Sent Events with `Last-Event-ID` resume. Appends are
//! idempotent via client sequence numbers. Dispatch resolves the route
//! before checking the method, so a wrong-method request answers `405`
//! with that route's `Allow` header while unknown paths stay `404`.

pub mod breaker;
pub mod http;
pub mod pool;
pub mod router;
pub mod server;

pub use router::{route_key, AppState, GuardConfig};
pub use server::{Server, ServerConfig, ShutdownHandle};
