//! §6.2 — predicting the evolution pattern from the point of schema birth.
//!
//! Fig. 7 of the paper tabulates, for the 151-project corpus, the
//! probability of each pattern given the *absolute* month of schema birth,
//! bucketed as M0, M1–M6, M7–M12 and "not born till M12".

use serde::{Deserialize, Serialize};

use crate::patterns::{Family, Pattern};

/// The birth-month buckets of Fig. 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BirthBucket {
    /// Schema born in the project's first month.
    M0,
    /// Born in months 1–6.
    M1toM6,
    /// Born in months 7–12.
    M7toM12,
    /// Not born until after the first year.
    AfterM12,
}

impl BirthBucket {
    /// All buckets, in Fig. 7 column order.
    pub const ALL: [BirthBucket; 4] = [
        BirthBucket::M0,
        BirthBucket::M1toM6,
        BirthBucket::M7toM12,
        BirthBucket::AfterM12,
    ];

    /// Buckets an absolute birth month (months since project start).
    pub fn of(birth_month: usize) -> Self {
        match birth_month {
            0 => BirthBucket::M0,
            1..=6 => BirthBucket::M1toM6,
            7..=12 => BirthBucket::M7toM12,
            _ => BirthBucket::AfterM12,
        }
    }

    /// Display label as in Fig. 7.
    pub fn label(self) -> &'static str {
        match self {
            BirthBucket::M0 => "Born M0",
            BirthBucket::M1toM6 => "Born [M1..M6]",
            BirthBucket::M7toM12 => "Born [M7..M12]",
            BirthBucket::AfterM12 => "Not born till M12",
        }
    }

    fn index(self) -> usize {
        match self {
            BirthBucket::M0 => 0,
            BirthBucket::M1toM6 => 1,
            BirthBucket::M7toM12 => 2,
            BirthBucket::AfterM12 => 3,
        }
    }
}

/// The fitted birth-point predictor: a counts table
/// (pattern × birth bucket), queried for conditional probabilities.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BirthPredictor {
    counts: [[usize; 4]; 8], // [pattern ordinal][bucket index]
}

impl BirthPredictor {
    /// Fits the predictor from `(absolute birth month, pattern)` pairs.
    pub fn fit(data: &[(usize, Pattern)]) -> Self {
        let mut p = BirthPredictor::default();
        for &(birth, pattern) in data {
            p.counts[pattern.ordinal()][BirthBucket::of(birth).index()] += 1;
        }
        p
    }

    /// The raw count for a (pattern, bucket) pair.
    pub fn count(&self, pattern: Pattern, bucket: BirthBucket) -> usize {
        self.counts[pattern.ordinal()][bucket.index()]
    }

    /// Total projects in a bucket.
    pub fn bucket_total(&self, bucket: BirthBucket) -> usize {
        self.counts.iter().map(|row| row[bucket.index()]).sum()
    }

    /// Total projects overall.
    pub fn total(&self) -> usize {
        BirthBucket::ALL.iter().map(|&b| self.bucket_total(b)).sum()
    }

    /// P(pattern | bucket), in [`Pattern::ALL`] order. All zeros when the
    /// bucket is empty.
    pub fn probabilities(&self, bucket: BirthBucket) -> [f64; 8] {
        let total = self.bucket_total(bucket);
        let mut out = [0.0; 8];
        if total == 0 {
            return out;
        }
        for (i, row) in self.counts.iter().enumerate() {
            out[i] = row[bucket.index()] as f64 / total as f64;
        }
        out
    }

    /// Marginal P(pattern), in [`Pattern::ALL`] order.
    pub fn overall_probabilities(&self) -> [f64; 8] {
        let total = self.total();
        let mut out = [0.0; 8];
        if total == 0 {
            return out;
        }
        for (i, row) in self.counts.iter().enumerate() {
            out[i] = row.iter().sum::<usize>() as f64 / total as f64;
        }
        out
    }

    /// P(family | bucket): the probability mass of one pattern family.
    pub fn family_probability(&self, family: Family, bucket: BirthBucket) -> f64 {
        Pattern::ALL
            .iter()
            .filter(|p| p.family() == family)
            .map(|p| self.probabilities(bucket)[p.ordinal()])
            .sum()
    }

    /// §6.2's headline "rigidity" probability: the chance of a sharp,
    /// focused evolution (the *Be Quick or Be Dead* family) given the birth
    /// bucket. The paper reports 75% for M0 and 64% for birth after M12.
    pub fn rigidity_probability(&self, bucket: BirthBucket) -> f64 {
        self.family_probability(Family::BeQuickOrBeDead, bucket)
    }

    /// P(bucket): where schemata are born (the paper's side observation:
    /// 34% at M0, 60% within the first 6 months, 68% within the first
    /// year).
    pub fn bucket_probability(&self, bucket: BirthBucket) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.bucket_total(bucket) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_edges() {
        assert_eq!(BirthBucket::of(0), BirthBucket::M0);
        assert_eq!(BirthBucket::of(1), BirthBucket::M1toM6);
        assert_eq!(BirthBucket::of(6), BirthBucket::M1toM6);
        assert_eq!(BirthBucket::of(7), BirthBucket::M7toM12);
        assert_eq!(BirthBucket::of(12), BirthBucket::M7toM12);
        assert_eq!(BirthBucket::of(13), BirthBucket::AfterM12);
    }

    #[test]
    fn fit_and_probabilities() {
        let data = vec![
            (0, Pattern::Flatliner),
            (0, Pattern::Flatliner),
            (0, Pattern::RadicalSign),
            (3, Pattern::RadicalSign),
            (20, Pattern::LateRiser),
        ];
        let p = BirthPredictor::fit(&data);
        assert_eq!(p.total(), 5);
        assert_eq!(p.bucket_total(BirthBucket::M0), 3);
        let probs = p.probabilities(BirthBucket::M0);
        assert!((probs[Pattern::Flatliner.ordinal()] - 2.0 / 3.0).abs() < 1e-12);
        assert!((probs[Pattern::RadicalSign.ordinal()] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.probabilities(BirthBucket::M7toM12), [0.0; 8]);
    }

    #[test]
    fn rigidity_is_family_mass() {
        let data = vec![
            (0, Pattern::Flatliner),
            (0, Pattern::RadicalSign),
            (0, Pattern::Siesta),
            (0, Pattern::QuantumSteps),
        ];
        let p = BirthPredictor::fit(&data);
        assert!((p.rigidity_probability(BirthBucket::M0) - 0.5).abs() < 1e-12);
        assert!(
            (p.family_probability(Family::ScaredToFallAsleepAgain, BirthBucket::M0) - 0.25).abs()
                < 1e-12
        );
    }

    #[test]
    fn overall_and_bucket_marginals() {
        let data = vec![
            (0, Pattern::Flatliner),
            (5, Pattern::RadicalSign),
            (30, Pattern::Sigmoid),
            (30, Pattern::LateRiser),
        ];
        let p = BirthPredictor::fit(&data);
        assert!((p.bucket_probability(BirthBucket::M0) - 0.25).abs() < 1e-12);
        assert!((p.bucket_probability(BirthBucket::AfterM12) - 0.5).abs() < 1e-12);
        let overall = p.overall_probabilities();
        assert!((overall.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_predictor_is_safe() {
        let p = BirthPredictor::fit(&[]);
        assert_eq!(p.total(), 0);
        assert_eq!(p.overall_probabilities(), [0.0; 8]);
        assert_eq!(p.bucket_probability(BirthBucket::M0), 0.0);
    }
}

// ---------------------------------------------------------------------
// Early-horizon observation features (the paper's future-work direction:
// "the provision of solid foundations for the prediction of future
// behavior on the basis of a meaningful model", §7).

/// Names of the features produced by [`horizon_features`].
pub const HORIZON_FEATURE_NAMES: [&str; 5] = [
    "BirthObserved",
    "BirthBucket",
    "VolumeSoFar",
    "ActiveMonthsSoFar",
    "MonthsSinceLastActivity",
];

/// Encodes what an observer knows about a project's schema after watching
/// only its first `horizon` months — **absolute** months, because at
/// observation time the project's eventual lifespan (and hence %PUP) is
/// unknown.
///
/// Features (all small ordinals, usable by `schemachron-stats`' trees):
/// birth observed (0/1); birth bucket (M0 / M1–6 / M7–12 / not yet);
/// log-bucketized activity volume so far; active-month count so far;
/// months since the last activity.
pub fn horizon_features(schema_activity: &[f64], horizon: usize) -> [u8; 5] {
    let window = &schema_activity[..horizon.min(schema_activity.len())];
    let birth = window.iter().position(|&v| v > 0.0);
    let birth_observed = u8::from(birth.is_some());
    let birth_bucket = match birth {
        Some(0) => 0u8,
        Some(1..=6) => 1,
        Some(7..=12) => 2,
        Some(_) => 3,
        None => 3,
    };
    let volume: f64 = window.iter().sum();
    let volume_bucket = match volume as u64 {
        0 => 0u8,
        1..=9 => 1,
        10..=49 => 2,
        50..=199 => 3,
        _ => 4,
    };
    let active = window.iter().filter(|&&v| v > 0.0).count();
    let active_bucket = match active {
        0 => 0u8,
        1 => 1,
        2..=3 => 2,
        _ => 3,
    };
    let since_last = window
        .iter()
        .rposition(|&v| v > 0.0)
        .map(|i| window.len() - 1 - i);
    let since_bucket = match since_last {
        None => 3u8, // never active
        Some(0..=2) => 0,
        Some(3..=6) => 1,
        Some(_) => 2,
    };
    [
        birth_observed,
        birth_bucket,
        volume_bucket,
        active_bucket,
        since_bucket,
    ]
}

#[cfg(test)]
mod horizon_tests {
    use super::*;

    #[test]
    fn empty_window_is_all_unknown() {
        let f = horizon_features(&[0.0; 24], 12);
        assert_eq!(f, [0, 3, 0, 0, 3]);
    }

    #[test]
    fn early_birth_with_activity() {
        let mut a = vec![0.0; 24];
        a[0] = 30.0;
        a[4] = 5.0;
        let f = horizon_features(&a, 12);
        assert_eq!(f[0], 1); // birth observed
        assert_eq!(f[1], 0); // born M0
        assert_eq!(f[2], 2); // 35 units → 10..=49
        assert_eq!(f[3], 2); // 2 active months
        assert_eq!(f[4], 2); // last activity 7 months before the window end
    }

    #[test]
    fn horizon_clamps_to_history_length() {
        let a = vec![1.0; 5];
        let f = horizon_features(&a, 100);
        assert_eq!(f[3], 3); // 5 active months
    }

    #[test]
    fn unborn_after_first_year() {
        let mut a = vec![0.0; 30];
        a[20] = 10.0;
        // At horizon 12 the schema is not yet born.
        assert_eq!(horizon_features(&a, 12)[0], 0);
        // At horizon 24 it is, in the ">M12" bucket.
        let f = horizon_features(&a, 24);
        assert_eq!(f[0], 1);
        assert_eq!(f[1], 3);
    }
}
