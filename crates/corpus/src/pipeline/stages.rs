//! The eight concrete stages and the cached chain that walks them.
//!
//! Each stage replicates exactly one slice of the historical monolithic
//! ingestion (`materialize` → `ProjectHistoryBuilder` → metrics → labels →
//! classification), so a full chain walk is byte-identical to the old
//! single-pass build — the tests in `tests/stage_cache.rs` and the
//! experiment goldens pin this down.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use schemachron_fault as fault;

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_core::{classify, classify_nearest};
use schemachron_ddl::SchemaBuilder;
use schemachron_dialect::{ingest_dialect, PLAN_LOGIC_VERSION};
use schemachron_hash::{fnv1a, FNV_OFFSET};
use schemachron_history::{ProjectHistory, SchemaHistory, SchemaVersion};
use schemachron_model::{diff, Schema};

use crate::corpus::CorpusProject;
use crate::materialize::materialize;
use crate::spec::Card;

use super::artifact::{
    card_fingerprint, CardSpec, DiffSeq, DiffStep, LabelTuple, LogicalSchema, MetricVector,
    ParsedCommit, ParsedDdl, PatternClass, RawScripts,
};
use super::stage::{cache, derive_key, Stage, StageKey, StageTrace};

/// The stage names in pipeline order — the canonical ordering for counter
/// snapshots, `/health` and `BENCH_stages.json`.
pub const STAGE_ORDER: [&str; 8] = [
    MaterializeStage::NAME,
    ParseStage::NAME,
    SchemaStage::NAME,
    DiffStage::NAME,
    HistoryStage::NAME,
    MetricsStage::NAME,
    LabelsStage::NAME,
    ClassifyStage::NAME,
];

/// Stage 1: card + seed → dated DDL scripts and source events.
pub struct MaterializeStage;

impl MaterializeStage {
    /// Stage name.
    pub const NAME: &'static str = "materialize";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<CardSpec, RawScripts> for MaterializeStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &CardSpec) -> RawScripts {
        RawScripts {
            project: materialize(&input.card, input.seed),
        }
    }
}

/// Stage 2: scripts → parsed statements per commit, via the ingestion
/// dialect's parser (see [`ingest_dialect`]).
pub struct ParseStage;

impl ParseStage {
    /// Stage name.
    pub const NAME: &'static str = "parse";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<RawScripts, ParsedDdl> for ParseStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &RawScripts) -> ParsedDdl {
        // Stable sort by date, mirroring `ProjectHistoryBuilder::build`
        // (same-date commits keep insertion order).
        let mut dated: Vec<&(schemachron_history::Date, String)> =
            input.project.ddl_commits.iter().collect();
        dated.sort_by_key(|(d, _)| *d);
        let dialect = ingest_dialect();
        let commits = dated
            .into_iter()
            .map(|(date, sql)| {
                let (statements, diagnostics) = dialect.parse(sql);
                ParsedCommit {
                    date: *date,
                    statements,
                    diagnostics,
                }
            })
            .collect();
        ParsedDdl { commits }
    }
}

/// Stage 3: parsed statements → the logical schema after every commit.
pub struct SchemaStage;

impl SchemaStage {
    /// Stage name.
    pub const NAME: &'static str = "schema";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<ParsedDdl, LogicalSchema> for SchemaStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &ParsedDdl) -> LogicalSchema {
        let mut snapshots = Vec::with_capacity(input.commits.len());
        let mut diagnostics = Vec::new();
        let mut prev = Schema::default();
        for c in &input.commits {
            // Migration-mode ingestion: apply on top of the previous
            // version, exactly like `SchemaHistory::push`. The parse
            // diagnostics come first, then any builder diagnostics — the
            // order `apply_script` has always produced.
            let mut b = SchemaBuilder::with_schema(prev.clone());
            diagnostics.extend(c.diagnostics.iter().cloned());
            b.apply_statements(&c.statements);
            let (schema, mut b_diags) = b.finish();
            diagnostics.append(&mut b_diags);
            prev = schema.clone();
            snapshots.push((c.date, Arc::new(schema)));
        }
        LogicalSchema {
            snapshots,
            diagnostics,
        }
    }
}

/// Stage 4: schema snapshots → version-over-version diffs.
pub struct DiffStage;

impl DiffStage {
    /// Stage name.
    pub const NAME: &'static str = "diff";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<LogicalSchema, DiffSeq> for DiffStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &LogicalSchema) -> DiffSeq {
        let empty = Schema::default();
        let mut prev: &Schema = &empty;
        let mut steps = Vec::with_capacity(input.snapshots.len());
        for (date, schema) in &input.snapshots {
            steps.push(DiffStep {
                date: *date,
                schema: Arc::clone(schema),
                diff: diff(prev, schema),
            });
            prev = schema;
        }
        DiffSeq {
            steps,
            diagnostics: input.diagnostics.clone(),
        }
    }
}

/// Input of [`HistoryStage`]: the diff sequence plus the raw scripts (for
/// the project name and the source-activity events).
pub struct HistoryInput {
    /// The diff sequence.
    pub diffs: Arc<DiffSeq>,
    /// The materialized project (name + source commits).
    pub raw: Arc<RawScripts>,
}

/// Stage 5: diffs + source events → the PUP-aligned project history.
pub struct HistoryStage;

impl HistoryStage {
    /// Stage name.
    pub const NAME: &'static str = "history";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<HistoryInput, ProjectHistory> for HistoryStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &HistoryInput) -> ProjectHistory {
        let versions = input
            .diffs
            .steps
            .iter()
            .map(|s| SchemaVersion {
                date: s.date,
                schema: (*s.schema).clone(),
                diff: s.diff.clone(),
            })
            .collect();
        let history = SchemaHistory::from_versions(versions, input.diffs.diagnostics.clone());
        ProjectHistory::from_schema_history(
            input.raw.project.name.clone(),
            history,
            &input.raw.project.source_commits,
        )
    }
}

/// Stage 6: project history → §3.2 time metrics.
pub struct MetricsStage;

impl MetricsStage {
    /// Stage name.
    pub const NAME: &'static str = "metrics";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<ProjectHistory, MetricVector> for MetricsStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &ProjectHistory) -> MetricVector {
        let metrics = TimeMetrics::from_project(input).unwrap_or_else(|| {
            panic!(
                "{}: corpus projects always have schema activity",
                input.name()
            )
        });
        MetricVector { metrics }
    }
}

/// Stage 7: metrics → quantized §3.3 labels.
pub struct LabelsStage;

impl LabelsStage {
    /// Stage name.
    pub const NAME: &'static str = "labels";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<MetricVector, LabelTuple> for LabelsStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &MetricVector) -> LabelTuple {
        LabelTuple {
            labels: Labels::from_metrics(&input.metrics),
        }
    }
}

/// Stage 8: labels → strict and nearest pattern classification.
pub struct ClassifyStage;

impl ClassifyStage {
    /// Stage name.
    pub const NAME: &'static str = "classify";
    /// Stage logic version.
    pub const VERSION: u32 = 1;
}

impl Stage<LabelTuple, PatternClass> for ClassifyStage {
    fn name(&self) -> &'static str {
        Self::NAME
    }
    fn version(&self) -> u32 {
        Self::VERSION
    }
    fn run(&self, input: &LabelTuple) -> PatternClass {
        let (nearest, violations) = classify_nearest(&input.labels);
        PatternClass {
            strict: classify(&input.labels),
            nearest,
            violations,
        }
    }
}

/// The per-stage output keys of one project chain, in [`STAGE_ORDER`].
/// Derivable without running anything: pure hash chaining from the card
/// fingerprint.
pub fn chain_keys(card: &Card, seed: u64) -> [StageKey; 8] {
    let root = card_fingerprint(card, seed);
    let mut keys = [0; 8];
    keys[0] = derive_key(MaterializeStage::NAME, MaterializeStage::VERSION, root);
    keys[1] = derive_key(ParseStage::NAME, ParseStage::VERSION, parse_salt(keys[0]));
    keys[2] = derive_key(SchemaStage::NAME, SchemaStage::VERSION, keys[1]);
    keys[3] = derive_key(DiffStage::NAME, DiffStage::VERSION, keys[2]);
    keys[4] = derive_key(HistoryStage::NAME, HistoryStage::VERSION, keys[3]);
    keys[5] = derive_key(MetricsStage::NAME, MetricsStage::VERSION, keys[4]);
    keys[6] = derive_key(LabelsStage::NAME, LabelsStage::VERSION, keys[5]);
    keys[7] = derive_key(ClassifyStage::NAME, ClassifyStage::VERSION, keys[6]);
    keys
}

/// Folds the ingestion dialect's name and the planner logic version into
/// the parse stage's upstream key, so cached parse artifacts invalidate if
/// either ever changes. The lint cache auditor (`H002`/`H003`) restates
/// this fold independently from its own constants.
pub fn parse_salt(in_key: StageKey) -> StageKey {
    let h = fnv1a(FNV_OFFSET, ingest_dialect().name().as_bytes());
    let h = fnv1a(h, &u64::from(PLAN_LOGIC_VERSION).to_le_bytes());
    fnv1a(h, &in_key.to_le_bytes())
}

/// A lazy, memoizing walk of one project's stage chain.
///
/// Artifacts are fetched downstream-first: asking for the history consults
/// the history cache entry and only walks upstream on a miss, so a fully
/// cached project never touches (or counts against) its early stages.
struct Chain<'a> {
    card: &'a Card,
    seed: u64,
    keys: [StageKey; 8],
    trace: StageTrace,
    raw: Option<Arc<RawScripts>>,
    parsed: Option<Arc<ParsedDdl>>,
    schema: Option<Arc<LogicalSchema>>,
    diffs: Option<Arc<DiffSeq>>,
    history: Option<Arc<ProjectHistory>>,
    metrics: Option<Arc<MetricVector>>,
    labels: Option<Arc<LabelTuple>>,
}

/// Runs one stage computation under the `pipeline::stage` fault-injection
/// point with quarantine-on-panic: a run that panics (a stage bug, or an
/// injected fault) records a quarantine for the stage and re-raises
/// **without publishing anything** under the stage's key — the next
/// consumer of that key sees a plain retryable miss, never a poisoned or
/// half-built artifact.
fn run_quarantined<Out>(
    stage_name: &'static str,
    key: StageKey,
    run: impl FnOnce() -> Out,
) -> Out {
    match catch_unwind(AssertUnwindSafe(|| {
        fault::stage_point(&format!("{stage_name}:{key:016x}"));
        run()
    })) {
        Ok(out) => out,
        Err(payload) => {
            cache().record_quarantine(stage_name);
            resume_unwind(payload);
        }
    }
}

/// One memoized, cache-consulting stage step: returns the memo if present,
/// else the cached artifact (recording a hit), else computes `$input` and
/// runs the stage (recording a miss and the compute wall time). The run is
/// quarantined: a panicking stage publishes nothing (see
/// [`run_quarantined`]).
macro_rules! step {
    ($self:ident, $field:ident, $stage:ident, $out:ty, $idx:expr, $input:expr) => {{
        if let Some(v) = &$self.$field {
            return Arc::clone(v);
        }
        let key = $self.keys[$idx];
        if let Some(v) = cache().get::<$out>($stage::NAME, key) {
            $self.trace.record($stage::NAME, true);
            $self.$field = Some(Arc::clone(&v));
            return v;
        }
        let input = $input;
        let started = Instant::now();
        let out = Arc::new(run_quarantined($stage::NAME, key, || $stage.run(&input)));
        let busy = started.elapsed();
        cache().insert(
            $stage::NAME,
            key,
            Arc::clone(&out) as Arc<dyn Any + Send + Sync>,
            busy,
        );
        $self.trace.record($stage::NAME, false);
        $self.$field = Some(Arc::clone(&out));
        out
    }};
}

impl<'a> Chain<'a> {
    fn new(card: &'a Card, seed: u64) -> Self {
        Chain {
            card,
            seed,
            keys: chain_keys(card, seed),
            trace: StageTrace::default(),
            raw: None,
            parsed: None,
            schema: None,
            diffs: None,
            history: None,
            metrics: None,
            labels: None,
        }
    }

    fn raw(&mut self) -> Arc<RawScripts> {
        step!(self, raw, MaterializeStage, RawScripts, 0, {
            CardSpec {
                card: self.card.clone(),
                seed: self.seed,
            }
        })
    }

    fn parsed(&mut self) -> Arc<ParsedDdl> {
        step!(self, parsed, ParseStage, ParsedDdl, 1, self.raw())
    }

    fn schema(&mut self) -> Arc<LogicalSchema> {
        step!(self, schema, SchemaStage, LogicalSchema, 2, self.parsed())
    }

    fn diffs(&mut self) -> Arc<DiffSeq> {
        step!(self, diffs, DiffStage, DiffSeq, 3, self.schema())
    }

    fn history(&mut self) -> Arc<ProjectHistory> {
        step!(self, history, HistoryStage, ProjectHistory, 4, {
            HistoryInput {
                diffs: self.diffs(),
                raw: self.raw(),
            }
        })
    }

    fn metrics(&mut self) -> Arc<MetricVector> {
        step!(self, metrics, MetricsStage, MetricVector, 5, self.history())
    }

    fn labels(&mut self) -> Arc<LabelTuple> {
        step!(self, labels, LabelsStage, LabelTuple, 6, self.metrics())
    }

    fn classify(&mut self) -> Arc<PatternClass> {
        // No memo field: the classification is the chain's terminal
        // artifact, fetched exactly once per walk.
        let key = self.keys[7];
        if let Some(v) = cache().get::<PatternClass>(ClassifyStage::NAME, key) {
            self.trace.record(ClassifyStage::NAME, true);
            return v;
        }
        let input = self.labels();
        let started = Instant::now();
        let out = Arc::new(run_quarantined(ClassifyStage::NAME, key, || {
            ClassifyStage.run(&input)
        }));
        let busy = started.elapsed();
        cache().insert(
            ClassifyStage::NAME,
            key,
            Arc::clone(&out) as Arc<dyn Any + Send + Sync>,
            busy,
        );
        self.trace.record(ClassifyStage::NAME, false);
        out
    }
}

/// Builds one corpus project through the staged pipeline, returning the
/// per-call [`StageTrace`] alongside it.
///
/// The walk fetches the terminal artifacts (classification, labels,
/// metrics, history) and recomputes upstream only on cache misses; for a
/// fully cached project the trace shows hits only.
pub fn build_project_traced(card: &Card, seed: u64) -> (CorpusProject, StageTrace) {
    let mut chain = Chain::new(card, seed);
    let _class = chain.classify();
    let history = chain.history();
    let metrics = chain.metrics();
    let labels = chain.labels();
    let project = CorpusProject {
        assigned: card.pattern,
        exception: card.exception,
        card: card.clone(),
        history,
        metrics: metrics.metrics.clone(),
        labels: labels.labels,
    };
    (project, chain.trace)
}

/// [`build_project_traced`] without the trace — the corpus builder's
/// per-project entry point.
pub fn build_project(card: &Card, seed: u64) -> CorpusProject {
    build_project_traced(card, seed).0
}

/// Classifies one project through the cached chain, returning the terminal
/// [`PatternClass`] artifact.
pub fn classify_project(card: &Card, seed: u64) -> PatternClass {
    let mut chain = Chain::new(card, seed);
    *chain.classify()
}
