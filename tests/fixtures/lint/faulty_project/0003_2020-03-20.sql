CREATE TABLE broken (;
