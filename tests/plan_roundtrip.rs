//! Round-trip property: parse → diff → plan → parse ≡ identity.
//!
//! For every project in the seed-42 corpus and every adjacent month pair
//! of its lifespan, the migration plan from the earlier schema to the
//! later one — rendered in each of the three dialects and replayed
//! through that dialect's own parser — must reproduce the later schema
//! byte-identically (up to the dialect's canonical type spellings, which
//! for the ingestion dialect is the identity, making the comparison raw
//! byte equality). The sweep runs on the corpus worker pool at both
//! `--jobs` 1 and 8 and the full plan transcripts must match.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use schemachron_asof::AsOfIndex;
use schemachron_bench::DEFAULT_SEED;
use schemachron_corpus::{par_map, Corpus, CorpusProject};
use schemachron_ddl::SchemaBuilder;
use schemachron_dialect::{all_dialects, plan, Dialect, PlanOptions};
use schemachron_model::{render_schema_sql, Schema};

/// A schema re-spelled in a dialect's canonical types: the identity the
/// round trip is asserted under. Mysql's normalization is the identity
/// function; Postgres folds `datetime`/`mediumint` spellings it does not
/// speak into `timestamp`/`int`.
fn canonical_sql(dialect: &dyn Dialect, schema: &Schema) -> String {
    let mut canonical = schema.clone();
    let respell: Vec<(String, String, _)> = schema
        .tables()
        .flat_map(|t| {
            t.attributes().iter().map(|a| {
                (
                    t.name.as_str().to_owned(),
                    a.name.as_str().to_owned(),
                    dialect.normalize_type(&a.data_type),
                )
            })
        })
        .collect();
    for (table, attr, ty) in respell {
        if let Some(a) = canonical
            .table_mut(&table)
            .and_then(|t| t.attribute_mut(&attr))
        {
            a.data_type = ty;
        }
    }
    render_schema_sql(&canonical)
}

/// Round-trips every adjacent month pair of one project through one
/// dialect and returns the concatenated plan scripts (the per-project
/// transcript the `--jobs` comparison diffs).
fn roundtrip_project(p: &CorpusProject) -> String {
    let name = p.card.name.as_str();
    let index = AsOfIndex::build(&p.history, 12)
        .unwrap_or_else(|| panic!("{name}: every corpus project has schema versions"));
    let mut transcript = String::new();
    let mut m = index.start();
    while m < index.last_month() {
        let from = index.schema_as_of(m).unwrap();
        let to = index.schema_as_of(m.plus(1)).unwrap();
        let unchanged = Arc::ptr_eq(&from, &to);
        for dialect in all_dialects() {
            let planned = plan(&from, &to, dialect, &PlanOptions::default())
                .unwrap_or_else(|e| panic!("{name} {m} {}: {e}", dialect.name()));
            if unchanged {
                // Quiet months must plan empty scripts — the planner may
                // never invent work.
                assert!(
                    planned.statements.is_empty(),
                    "{name} {m} {}: plan for identical schemas is non-empty",
                    dialect.name()
                );
                continue;
            }
            let script = planned.script();
            transcript.push_str(&format!("-- {name} {m} {}\n{script}\n", dialect.name()));
            // parse → diff → plan → parse: replay the rendered script
            // through the dialect's own parser from the earlier schema.
            let (stmts, diags) = dialect.parse(&script);
            assert!(
                diags.is_empty(),
                "{name} {m} {}: planned script does not reparse cleanly: {diags:?}",
                dialect.name()
            );
            let mut builder = SchemaBuilder::with_schema((*from).clone());
            builder.apply_statements(&stmts);
            let (replayed, _) = builder.finish();
            assert_eq!(
                canonical_sql(dialect, &replayed),
                canonical_sql(dialect, &to),
                "{name} {m} -> {} ({}): replayed schema diverges from the target",
                m.plus(1),
                dialect.name()
            );
        }
        m = m.plus(1);
    }
    transcript
}

#[test]
fn every_adjacent_month_plan_replays_to_the_next_schema_in_all_dialects() {
    let corpus = Corpus::generate(DEFAULT_SEED);
    assert_eq!(corpus.projects().len(), 151);
    let projects = corpus.projects().to_vec();
    let parallel = par_map(projects.clone(), 8, |p| roundtrip_project(&p));
    // Some project must actually exercise the planner.
    assert!(
        parallel.iter().any(|t| !t.is_empty()),
        "no project produced a non-empty plan transcript"
    );
    // The worker count must never change a single planned byte. The
    // serial leg re-runs a slice (the property itself is already proven
    // above; this pins determinism without doubling the suite's runtime).
    let slice: Vec<CorpusProject> = projects.into_iter().take(24).collect();
    let serial = par_map(slice, 1, |p| roundtrip_project(&p));
    assert_eq!(serial.as_slice(), &parallel[..serial.len()]);
}
