//! The change-detection engine: compares two schema versions and emits the
//! paper's attribute-level change taxonomy.

use serde::{Deserialize, Serialize};

use crate::{Name, Schema};

/// The kind of change an affected attribute underwent between two versions.
///
/// This is exactly the taxonomy of §3.2 of the paper. The first two kinds are
/// **expansion**, the rest are **maintenance** (§6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeKind {
    /// The attribute appears in a table that is new in this version.
    AttributeBornWithTable,
    /// The attribute was added to a table that already existed.
    AttributeInjected,
    /// The attribute disappeared because its whole table was dropped.
    AttributeDeletedWithTable,
    /// The attribute was removed from a table that survives.
    AttributeEjected,
    /// The attribute's declared data type changed.
    DataTypeChanged,
    /// The attribute's participation in a primary or foreign key changed.
    KeyParticipationChanged,
}

impl ChangeKind {
    /// Whether this kind counts as schema *expansion* (§6.3).
    pub fn is_expansion(self) -> bool {
        matches!(
            self,
            ChangeKind::AttributeBornWithTable | ChangeKind::AttributeInjected
        )
    }

    /// Whether this kind counts as schema *maintenance* (§6.3).
    pub fn is_maintenance(self) -> bool {
        !self.is_expansion()
    }

    /// All kinds, in taxonomy order.
    pub fn all() -> [ChangeKind; 6] {
        [
            ChangeKind::AttributeBornWithTable,
            ChangeKind::AttributeInjected,
            ChangeKind::AttributeDeletedWithTable,
            ChangeKind::AttributeEjected,
            ChangeKind::DataTypeChanged,
            ChangeKind::KeyParticipationChanged,
        ]
    }

    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ChangeKind::AttributeBornWithTable => "born-with-table",
            ChangeKind::AttributeInjected => "injected",
            ChangeKind::AttributeDeletedWithTable => "deleted-with-table",
            ChangeKind::AttributeEjected => "ejected",
            ChangeKind::DataTypeChanged => "type-changed",
            ChangeKind::KeyParticipationChanged => "key-changed",
        }
    }
}

/// One affected attribute in a version transition.
///
/// An attribute is reported **at most once** per transition, with the most
/// significant applicable kind (existence changes take precedence over type
/// changes, which take precedence over key-participation changes) — the
/// paper's unit is the *number of affected attributes*, not the number of
/// micro-edits.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeChange {
    /// The table holding the attribute (the *new* table name where relevant).
    pub table: Name,
    /// The affected attribute.
    pub attribute: Name,
    /// What happened to it.
    pub kind: ChangeKind,
}

/// The result of diffing two schema versions.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaDiff {
    /// Tables present only in the new version.
    pub tables_added: Vec<Name>,
    /// Tables present only in the old version.
    pub tables_dropped: Vec<Name>,
    /// One entry per affected attribute.
    pub changes: Vec<AttributeChange>,
}

impl SchemaDiff {
    /// The paper's activity measure: the number of affected attributes.
    pub fn attribute_change_count(&self) -> usize {
        self.changes.len()
    }

    /// Number of expansion changes (attribute born with table or injected).
    pub fn expansion_count(&self) -> usize {
        self.changes
            .iter()
            .filter(|c| c.kind.is_expansion())
            .count()
    }

    /// Number of maintenance changes (deletions, type and key updates).
    pub fn maintenance_count(&self) -> usize {
        self.changes
            .iter()
            .filter(|c| c.kind.is_maintenance())
            .count()
    }

    /// Count of changes of one specific kind.
    pub fn count_of(&self, kind: ChangeKind) -> usize {
        self.changes.iter().filter(|c| c.kind == kind).count()
    }

    /// True when nothing changed at the logical level.
    pub fn is_empty(&self) -> bool {
        self.tables_added.is_empty() && self.tables_dropped.is_empty() && self.changes.is_empty()
    }
}

/// Compares two schema versions and reports the logical-level changes.
///
/// Tables are matched by (case-insensitive) name; a renamed table therefore
/// appears as a drop plus an addition, which is how history miners without
/// rename heuristics (including the study's toolchain) measure it. Within a
/// surviving table, attributes are likewise matched by name.
///
/// ```
/// use schemachron_model::{Schema, Table, Attribute, DataType, diff, ChangeKind};
///
/// let mut old = Schema::new();
/// let mut t = Table::new("orders");
/// t.push_attribute(Attribute::new("id", DataType::named("int")));
/// old.insert_table(t);
///
/// let new = Schema::new(); // table dropped
/// let d = diff(&old, &new);
/// assert_eq!(d.tables_dropped.len(), 1);
/// assert_eq!(d.count_of(ChangeKind::AttributeDeletedWithTable), 1);
/// ```
pub fn diff(old: &Schema, new: &Schema) -> SchemaDiff {
    use std::collections::HashMap;

    let mut out = SchemaDiff::default();

    // Dropped tables: every attribute deleted with the table.
    for t in old.tables() {
        if new.table_of(&t.name).is_none() {
            out.tables_dropped.push(t.name.clone());
            for a in t.attributes() {
                out.changes.push(AttributeChange {
                    table: t.name.clone(),
                    attribute: a.name.clone(),
                    kind: ChangeKind::AttributeDeletedWithTable,
                });
            }
        }
    }

    for t_new in new.tables() {
        match old.table_of(&t_new.name) {
            None => {
                // New table: every attribute born with it.
                out.tables_added.push(t_new.name.clone());
                for a in t_new.attributes() {
                    out.changes.push(AttributeChange {
                        table: t_new.name.clone(),
                        attribute: a.name.clone(),
                        kind: ChangeKind::AttributeBornWithTable,
                    });
                }
            }
            Some(t_old) => {
                // Surviving table: match attributes by name. Index each
                // side once so matching is linear rather than quadratic.
                let new_attrs: HashMap<&Name, &crate::Attribute> =
                    t_new.attributes().iter().map(|a| (&a.name, a)).collect();
                let old_attrs: HashMap<&Name, &crate::Attribute> =
                    t_old.attributes().iter().map(|a| (&a.name, a)).collect();
                for a_old in t_old.attributes() {
                    if !new_attrs.contains_key(&a_old.name) {
                        out.changes.push(AttributeChange {
                            table: t_new.name.clone(),
                            attribute: a_old.name.clone(),
                            kind: ChangeKind::AttributeEjected,
                        });
                    }
                }
                for a_new in t_new.attributes() {
                    let Some(a_old) = old_attrs.get(&a_new.name) else {
                        out.changes.push(AttributeChange {
                            table: t_new.name.clone(),
                            attribute: a_new.name.clone(),
                            kind: ChangeKind::AttributeInjected,
                        });
                        continue;
                    };
                    if a_old.data_type != a_new.data_type {
                        out.changes.push(AttributeChange {
                            table: t_new.name.clone(),
                            attribute: a_new.name.clone(),
                            kind: ChangeKind::DataTypeChanged,
                        });
                        continue;
                    }
                    let key_changed = t_old.in_primary_key(&a_new.name)
                        != t_new.in_primary_key(&a_new.name)
                        || t_old.fk_memberships(&a_new.name) != t_new.fk_memberships(&a_new.name);
                    if key_changed {
                        out.changes.push(AttributeChange {
                            table: t_new.name.clone(),
                            attribute: a_new.name.clone(),
                            kind: ChangeKind::KeyParticipationChanged,
                        });
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType, ForeignKey, Table};

    fn table(name: &str, cols: &[(&str, &str)]) -> Table {
        let mut t = Table::new(name);
        for (c, ty) in cols {
            t.push_attribute(Attribute::new(*c, DataType::named(*ty)));
        }
        t
    }

    fn schema_of(tables: Vec<Table>) -> Schema {
        let mut s = Schema::new();
        for t in tables {
            s.insert_table(t);
        }
        s
    }

    #[test]
    fn identical_schemas_produce_empty_diff() {
        let s = schema_of(vec![table("a", &[("x", "int"), ("y", "text")])]);
        let d = diff(&s, &s.clone());
        assert!(d.is_empty());
        assert_eq!(d.attribute_change_count(), 0);
    }

    #[test]
    fn new_table_counts_every_attribute_as_born() {
        let old = Schema::new();
        let new = schema_of(vec![table(
            "t",
            &[("a", "int"), ("b", "int"), ("c", "int")],
        )]);
        let d = diff(&old, &new);
        assert_eq!(d.tables_added, vec![Name::from("t")]);
        assert_eq!(d.count_of(ChangeKind::AttributeBornWithTable), 3);
        assert_eq!(d.expansion_count(), 3);
        assert_eq!(d.maintenance_count(), 0);
    }

    #[test]
    fn dropped_table_counts_every_attribute_as_deleted() {
        let old = schema_of(vec![table("t", &[("a", "int"), ("b", "int")])]);
        let new = Schema::new();
        let d = diff(&old, &new);
        assert_eq!(d.tables_dropped, vec![Name::from("t")]);
        assert_eq!(d.count_of(ChangeKind::AttributeDeletedWithTable), 2);
        assert_eq!(d.maintenance_count(), 2);
    }

    #[test]
    fn injected_and_ejected_in_surviving_table() {
        let old = schema_of(vec![table("t", &[("keep", "int"), ("gone", "int")])]);
        let new = schema_of(vec![table("t", &[("keep", "int"), ("fresh", "int")])]);
        let d = diff(&old, &new);
        assert_eq!(d.count_of(ChangeKind::AttributeInjected), 1);
        assert_eq!(d.count_of(ChangeKind::AttributeEjected), 1);
        assert!(d.tables_added.is_empty());
        assert!(d.tables_dropped.is_empty());
    }

    #[test]
    fn data_type_change_detected_and_shadows_key_change() {
        let old = schema_of(vec![table("t", &[("x", "int")])]);
        let mut new = schema_of(vec![table("t", &[("x", "bigint")])]);
        // Also add x to the PK; the type change takes precedence.
        new.table_mut("t").unwrap().primary_key = vec![Name::from("x")];
        let d = diff(&old, &new);
        assert_eq!(d.attribute_change_count(), 1);
        assert_eq!(d.changes[0].kind, ChangeKind::DataTypeChanged);
    }

    #[test]
    fn primary_key_participation_change_detected() {
        let old = schema_of(vec![table("t", &[("x", "int")])]);
        let mut new = old.clone();
        new.table_mut("t").unwrap().primary_key = vec![Name::from("x")];
        let d = diff(&old, &new);
        assert_eq!(d.attribute_change_count(), 1);
        assert_eq!(d.changes[0].kind, ChangeKind::KeyParticipationChanged);
        assert_eq!(d.maintenance_count(), 1);
    }

    #[test]
    fn foreign_key_participation_change_detected() {
        let old = schema_of(vec![
            table("t", &[("ref_id", "int")]),
            table("parent", &[("id", "int")]),
        ]);
        let mut new = old.clone();
        new.table_mut("t").unwrap().foreign_keys.push(ForeignKey {
            name: None,
            columns: vec![Name::from("ref_id")],
            ref_table: Name::from("parent"),
            ref_columns: vec![Name::from("id")],
        });
        let d = diff(&old, &new);
        assert_eq!(d.attribute_change_count(), 1);
        assert_eq!(d.changes[0].kind, ChangeKind::KeyParticipationChanged);
    }

    #[test]
    fn table_rename_reported_as_drop_plus_add() {
        let old = schema_of(vec![table("alpha", &[("x", "int")])]);
        let new = schema_of(vec![table("beta", &[("x", "int")])]);
        let d = diff(&old, &new);
        assert_eq!(d.tables_dropped, vec![Name::from("alpha")]);
        assert_eq!(d.tables_added, vec![Name::from("beta")]);
        assert_eq!(d.attribute_change_count(), 2);
    }

    #[test]
    fn case_insensitive_matching_suppresses_spurious_changes() {
        let old = schema_of(vec![table("Users", &[("Id", "int")])]);
        let new = schema_of(vec![table("users", &[("id", "INT")])]);
        let d = diff(&old, &new);
        assert!(d.is_empty(), "case-only differences are not changes: {d:?}");
    }

    #[test]
    fn expansion_plus_maintenance_equals_total() {
        let old = schema_of(vec![
            table("a", &[("x", "int")]),
            table("b", &[("y", "int")]),
        ]);
        let mut new = schema_of(vec![table("a", &[("x", "bigint"), ("z", "int")])]);
        new.insert_table(table("c", &[("w", "int")]));
        let d = diff(&old, &new);
        assert_eq!(
            d.expansion_count() + d.maintenance_count(),
            d.attribute_change_count()
        );
        // b dropped (1 deleted), c added (1 born), z injected, x type-changed.
        assert_eq!(d.attribute_change_count(), 4);
    }

    #[test]
    fn change_kind_labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            ChangeKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
