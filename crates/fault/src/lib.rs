#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-fault
//!
//! Deterministic, seed-keyed fault injection for the whole workspace.
//!
//! A [`FaultPlan`] names a seed, a per-decision probability and (optionally)
//! a subset of injection [`site`]s and [`FaultKind`]s. Once installed with
//! [`install`], the instrumented code paths — corpus I/O, pipeline stages,
//! `par_map` workers, the serve request path — consult [`roll`] at each
//! injection point and act out whatever fault it returns.
//!
//! ## Determinism by construction
//!
//! Every decision is a **pure hash** of
//! `(plan seed, site, stable key, epoch, attempt)` — never of call counts,
//! wall time or thread schedule. The same plan over the same work therefore
//! injects the *same* faults at `--jobs 1` and `--jobs 8`, which is what
//! makes `schemachron chaos` reports byte-identical across worker counts:
//!
//! * the **key** is a stable identity of the unit of work (a chain key, a
//!   file path, a request target) supplied by the call site;
//! * the **attempt** is a thread-local retry counter (see [`with_attempt`])
//!   so a bounded retry re-rolls instead of looping on the same verdict;
//! * the **epoch** is a process-global generation (see [`set_epoch`]) so a
//!   resumed operation (e.g. re-running a corpus materialization) re-rolls
//!   its decisions.
//!
//! ## Zero cost when disabled
//!
//! With no plan installed, every injection point is a single relaxed atomic
//! load and an immediate return. Production builds that never call
//! [`install`] pay nothing else.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use schemachron_hash::{fnv1a, FNV_OFFSET};

/// Locks a mutex ignoring poisoning: the critical sections below only move
/// plain data, so a panic mid-section cannot corrupt them.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The registered injection sites. Call sites pass these constants so a
/// plan's `sites` filter and the CLI's `--site` flag share one vocabulary.
pub mod site {
    /// Corpus materialization: per-file writes in `write_corpus_dir`.
    pub const IO_WRITE: &str = "io::write";
    /// One pipeline stage computation (keyed by `stage:chain-key`).
    pub const PIPELINE_STAGE: &str = "pipeline::stage";
    /// One `par_map` work item (keyed by item index).
    pub const PAR_MAP_WORKER: &str = "par_map::worker";
    /// One HTTP request handler (keyed by the request target).
    pub const SERVE_REQUEST: &str = "serve::request";
    /// One HTTP connection, after the response is computed (drops it).
    pub const SERVE_CONN: &str = "serve::conn";
    /// One as-of index checkpoint build (keyed by `stage:cache-key`).
    pub const ASOF_CHECKPOINT: &str = "asof::checkpoint";
    /// One WAL record append (keyed by `project:seq`).
    pub const STREAM_WAL_APPEND: &str = "stream::wal_append";
    /// One WAL fsync before the append is acknowledged (keyed by
    /// `project:seq`).
    pub const STREAM_WAL_FSYNC: &str = "stream::wal_fsync";
    /// One change-feed event emission (keyed by `project:seq:try`).
    pub const STREAM_FEED_EMIT: &str = "stream::feed_emit";

    /// Every registered site, for validation and documentation.
    pub const ALL: [&str; 9] = [
        IO_WRITE,
        PIPELINE_STAGE,
        PAR_MAP_WORKER,
        SERVE_REQUEST,
        SERVE_CONN,
        ASOF_CHECKPOINT,
        STREAM_WAL_APPEND,
        STREAM_WAL_FSYNC,
        STREAM_FEED_EMIT,
    ];
}

/// What kind of fault to act out at an injection point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Fail the operation with an `io::Error` (kind `Other`).
    IoError,
    /// Write a truncated prefix of the bytes, then fail.
    PartialWrite,
    /// Panic with the recognizable injected payload.
    WorkerPanic,
    /// Stall for the plan's `slow` duration before proceeding.
    Slow,
    /// Drop the connection without writing the response.
    ConnDrop,
}

impl FaultKind {
    /// Every kind, in declaration order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::IoError,
        FaultKind::PartialWrite,
        FaultKind::WorkerPanic,
        FaultKind::Slow,
        FaultKind::ConnDrop,
    ];

    /// The stable lowercase name (used by `--site`/env filters and counters).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IoError => "io-error",
            FaultKind::PartialWrite => "partial-write",
            FaultKind::WorkerPanic => "panic",
            FaultKind::Slow => "slow",
            FaultKind::ConnDrop => "conn-drop",
        }
    }

    /// Parses [`FaultKind::name`] back.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// A seed-keyed fault plan: which sites fault, how often, and how.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The fault seed — independent of the corpus seed.
    pub seed: u64,
    /// Per-decision injection probability in `[0, 1]`.
    pub rate: f64,
    /// Restrict injection to these sites (`None` = all sites).
    pub sites: Option<BTreeSet<String>>,
    /// Restrict injection to these kinds (`None` = whatever the site offers).
    pub kinds: Option<BTreeSet<FaultKind>>,
    /// How long a [`FaultKind::Slow`] fault stalls.
    pub slow: Duration,
}

impl FaultPlan {
    /// A plan faulting every site with every kind it offers.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            sites: None,
            kinds: None,
            slow: Duration::from_millis(150),
        }
    }

    /// Restricts the plan to the given sites.
    #[must_use]
    pub fn with_sites<I: IntoIterator<Item = String>>(mut self, sites: I) -> FaultPlan {
        let set: BTreeSet<String> = sites.into_iter().collect();
        self.sites = if set.is_empty() { None } else { Some(set) };
        self
    }

    /// Restricts the plan to the given fault kinds.
    #[must_use]
    pub fn with_kinds<I: IntoIterator<Item = FaultKind>>(mut self, kinds: I) -> FaultPlan {
        let set: BTreeSet<FaultKind> = kinds.into_iter().collect();
        self.kinds = if set.is_empty() { None } else { Some(set) };
        self
    }

    /// Sets the stall duration for [`FaultKind::Slow`] faults.
    #[must_use]
    pub fn with_slow(mut self, slow: Duration) -> FaultPlan {
        self.slow = slow;
        self
    }

    fn site_enabled(&self, site: &str) -> bool {
        self.sites.as_ref().is_none_or(|s| s.contains(site))
    }

    fn kind_enabled(&self, kind: FaultKind) -> bool {
        self.kinds.as_ref().is_none_or(|k| k.contains(&kind))
    }
}

/// Fast path: whether any plan is installed at all.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// The installed plan (behind the fast path).
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
/// Process-global decision generation; see [`set_epoch`].
static EPOCH: AtomicU32 = AtomicU32::new(0);
/// Per-site distinct injected decisions (deduplicated by decision hash so a
/// retried or duplicated roll of the same decision counts once).
static COUNTS: Mutex<BTreeMap<String, BTreeSet<u64>>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// The current retry attempt, mixed into decisions; see [`with_attempt`].
    static ATTEMPT: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Installs a plan process-wide. Replaces any previous plan.
pub fn install(plan: FaultPlan) {
    *lock(&PLAN) = Some(Arc::new(plan));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Uninstalls the plan; every injection point becomes a no-op again.
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *lock(&PLAN) = None;
}

/// Whether a plan is currently installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// A snapshot of the installed plan, if any.
pub fn plan() -> Option<Arc<FaultPlan>> {
    if !is_active() {
        return None;
    }
    lock(&PLAN).clone()
}

/// Sets the process-global decision epoch. A resumed operation (e.g. a
/// retried corpus materialization) bumps the epoch so its decisions re-roll
/// instead of deterministically repeating the failure.
pub fn set_epoch(epoch: u32) {
    EPOCH.store(epoch, Ordering::SeqCst);
}

/// The current decision epoch.
pub fn epoch() -> u32 {
    EPOCH.load(Ordering::Relaxed)
}

/// Runs `f` with the thread-local retry attempt set to `attempt`, restoring
/// the previous value afterwards. Retry loops wrap each try in this so the
/// n-th retry rolls a fresh (but still deterministic) decision.
pub fn with_attempt<R>(attempt: u32, f: impl FnOnce() -> R) -> R {
    let prev = ATTEMPT.with(|a| a.replace(attempt));
    let out = f();
    ATTEMPT.with(|a| a.set(prev));
    out
}

/// Zeroes the per-site injected-fault counters.
pub fn reset_counters() {
    lock(&COUNTS).clear();
}

/// Distinct injected decisions per site since the last
/// [`reset_counters`], in site name order.
pub fn counters() -> BTreeMap<String, u64> {
    lock(&COUNTS)
        .iter()
        .map(|(site, ids)| (site.clone(), ids.len() as u64))
        .collect()
}

/// Total distinct injected decisions across all sites.
pub fn injected_total() -> u64 {
    lock(&COUNTS).values().map(|ids| ids.len() as u64).sum()
}

fn decision_hash(seed: u64, site: &str, key: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, &seed.to_le_bytes());
    let h = fnv1a(h, site.as_bytes());
    let h = fnv1a(h, &[0xff]);
    let h = fnv1a(h, key.as_bytes());
    let h = fnv1a(h, &EPOCH.load(Ordering::Relaxed).to_le_bytes());
    fnv1a(h, &ATTEMPT.with(std::cell::Cell::get).to_le_bytes())
}

/// Maps a hash onto `[0, 1)` with 53 bits of precision.
fn unit_interval(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The core decision: should this injection point fault, and how?
///
/// `site` is one of the [`site`] constants; `key` is the stable identity of
/// the unit of work; `offered` lists the kinds this call site can act out.
/// Returns `None` when disabled, filtered out, or the roll passes. A `Some`
/// verdict is recorded in the per-site counters (deduplicated by decision,
/// so the retry of an *identical* decision does not double-count).
pub fn roll(site_name: &str, key: &str, offered: &[FaultKind]) -> Option<FaultKind> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let plan = lock(&PLAN).clone()?;
    if !plan.site_enabled(site_name) {
        return None;
    }
    let allowed: Vec<FaultKind> = offered
        .iter()
        .copied()
        .filter(|k| plan.kind_enabled(*k))
        .collect();
    if allowed.is_empty() {
        return None;
    }
    let h = decision_hash(plan.seed, site_name, key);
    if unit_interval(h) >= plan.rate {
        return None;
    }
    let kind = allowed[(fnv1a(h, b"kind") % allowed.len() as u64) as usize];
    lock(&COUNTS)
        .entry(site_name.to_owned())
        .or_default()
        .insert(h);
    Some(kind)
}

/// Prefix of every injected panic payload; [`is_injected_payload`] keys off
/// it to classify a caught panic as transient (retryable) vs genuine.
pub const INJECTED_PANIC_PREFIX: &str = "schemachron-fault: injected";

/// Whether a panic message came from an injected [`FaultKind::WorkerPanic`].
pub fn is_injected_payload(message: &str) -> bool {
    message.starts_with(INJECTED_PANIC_PREFIX)
}

/// An injected I/O failure, recognizable by its message.
pub fn injected_io_error(site_name: &str, key: &str) -> std::io::Error {
    std::io::Error::other(format!(
        "schemachron-fault: injected I/O error at {site_name} ({key})"
    ))
}

/// Convenience point for panic-only sites: panics with the injected payload
/// when the roll says so, otherwise returns.
///
/// # Panics
/// By design, when the installed plan injects a [`FaultKind::WorkerPanic`].
pub fn panic_point(site_name: &str, key: &str) {
    if roll(site_name, key, &[FaultKind::WorkerPanic]) == Some(FaultKind::WorkerPanic) {
        panic!("{INJECTED_PANIC_PREFIX} worker panic at {site_name} ({key})");
    }
}

/// Convenience point for slow-only sites: stalls for the plan's `slow`
/// duration when the roll says so. Returns whether it stalled.
pub fn slow_point(site_name: &str, key: &str) -> bool {
    if roll(site_name, key, &[FaultKind::Slow]) == Some(FaultKind::Slow) {
        if let Some(p) = plan() {
            std::thread::sleep(p.slow);
        }
        return true;
    }
    false
}

/// Combined point for pipeline stages (slow or panic).
///
/// # Panics
/// By design, when the installed plan injects a [`FaultKind::WorkerPanic`].
pub fn stage_point(key: &str) {
    match roll(site::PIPELINE_STAGE, key, &[FaultKind::Slow, FaultKind::WorkerPanic]) {
        Some(FaultKind::Slow) => {
            if let Some(p) = plan() {
                std::thread::sleep(p.slow);
            }
        }
        Some(FaultKind::WorkerPanic) => {
            panic!("{INJECTED_PANIC_PREFIX} stage fault ({key})");
        }
        _ => {}
    }
}

/// Combined point for as-of index checkpoint builds (slow or panic).
///
/// # Panics
/// By design, when the installed plan injects a [`FaultKind::WorkerPanic`].
pub fn checkpoint_point(key: &str) {
    match roll(
        site::ASOF_CHECKPOINT,
        key,
        &[FaultKind::Slow, FaultKind::WorkerPanic],
    ) {
        Some(FaultKind::Slow) => {
            if let Some(p) = plan() {
                std::thread::sleep(p.slow);
            }
        }
        Some(FaultKind::WorkerPanic) => {
            panic!("{INJECTED_PANIC_PREFIX} checkpoint fault ({key})");
        }
        _ => {}
    }
}

/// Connection-drop point: whether to drop the connection unanswered.
pub fn conn_drop_point(key: &str) -> bool {
    roll(site::SERVE_CONN, key, &[FaultKind::ConnDrop]) == Some(FaultKind::ConnDrop)
}

/// Environment variable parsed by [`install_from_env`].
pub const ENV_VAR: &str = "SCHEMACHRON_FAULTS";

/// Installs a plan from `SCHEMACHRON_FAULTS`, if set. The format is
/// `;`-separated `key=value` pairs; list values are `+`-separated:
///
/// ```text
/// SCHEMACHRON_FAULTS="rate=1.0;seed=3;sites=serve::request;kinds=slow;slow_ms=2000"
/// ```
///
/// Returns whether a plan was installed. Unknown keys, sites, kinds or
/// unparsable values yield an `Err` with the offending fragment.
pub fn install_from_env() -> Result<bool, String> {
    let Ok(spec) = std::env::var(ENV_VAR) else {
        return Ok(false);
    };
    if spec.trim().is_empty() {
        return Ok(false);
    }
    let mut plan = FaultPlan::new(0, 0.0);
    for pair in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("{ENV_VAR}: `{pair}` is not key=value"))?;
        match k.trim() {
            "seed" => {
                plan.seed = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("{ENV_VAR}: bad seed `{v}`"))?;
            }
            "rate" => {
                let rate: f64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("{ENV_VAR}: bad rate `{v}`"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("{ENV_VAR}: rate `{v}` outside [0, 1]"));
                }
                plan.rate = rate;
            }
            "slow_ms" => {
                let ms: u64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("{ENV_VAR}: bad slow_ms `{v}`"))?;
                plan.slow = Duration::from_millis(ms);
            }
            "sites" => {
                let mut sites = BTreeSet::new();
                for s in v.split('+').map(str::trim).filter(|s| !s.is_empty()) {
                    if !site::ALL.contains(&s) {
                        return Err(format!(
                            "{ENV_VAR}: unknown site `{s}` (valid: {})",
                            site::ALL.join(", ")
                        ));
                    }
                    sites.insert(s.to_owned());
                }
                plan.sites = if sites.is_empty() { None } else { Some(sites) };
            }
            "kinds" => {
                let mut kinds = BTreeSet::new();
                for s in v.split('+').map(str::trim).filter(|s| !s.is_empty()) {
                    let kind = FaultKind::from_name(s).ok_or_else(|| {
                        let valid: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
                        format!("{ENV_VAR}: unknown kind `{s}` (valid: {})", valid.join(", "))
                    })?;
                    kinds.insert(kind);
                }
                plan.kinds = if kinds.is_empty() { None } else { Some(kinds) };
            }
            other => return Err(format!("{ENV_VAR}: unknown key `{other}`")),
        }
    }
    install(plan);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; serialize the tests that touch it.
    static GUARD: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_is_a_no_op() {
        let _g = exclusive();
        clear();
        assert_eq!(roll(site::IO_WRITE, "x", &FaultKind::ALL), None);
        panic_point(site::PAR_MAP_WORKER, "x"); // must not panic
        assert!(!slow_point(site::SERVE_REQUEST, "x"));
    }

    #[test]
    fn decisions_are_deterministic_and_key_sensitive() {
        let _g = exclusive();
        set_epoch(0);
        install(FaultPlan::new(7, 0.5));
        reset_counters();
        let first: Vec<Option<FaultKind>> = (0..64)
            .map(|i| roll(site::PIPELINE_STAGE, &format!("k{i}"), &FaultKind::ALL))
            .collect();
        let second: Vec<Option<FaultKind>> = (0..64)
            .map(|i| roll(site::PIPELINE_STAGE, &format!("k{i}"), &FaultKind::ALL))
            .collect();
        assert_eq!(first, second, "same (seed, site, key) → same verdict");
        let hits = first.iter().filter(|v| v.is_some()).count();
        assert!(hits > 8 && hits < 56, "rate 0.5 over 64 keys, got {hits}");
        // Re-rolling identical decisions did not double-count.
        assert_eq!(injected_total(), hits as u64);
        clear();
    }

    #[test]
    fn attempt_and_epoch_re_roll_decisions() {
        let _g = exclusive();
        set_epoch(0);
        install(FaultPlan::new(11, 0.5));
        let base: Vec<Option<FaultKind>> = (0..64)
            .map(|i| roll(site::IO_WRITE, &format!("k{i}"), &FaultKind::ALL))
            .collect();
        let retried: Vec<Option<FaultKind>> = with_attempt(1, || {
            (0..64)
                .map(|i| roll(site::IO_WRITE, &format!("k{i}"), &FaultKind::ALL))
                .collect()
        });
        assert_ne!(base, retried, "attempt must change the decision stream");
        set_epoch(1);
        let epoch2: Vec<Option<FaultKind>> = (0..64)
            .map(|i| roll(site::IO_WRITE, &format!("k{i}"), &FaultKind::ALL))
            .collect();
        assert_ne!(base, epoch2, "epoch must change the decision stream");
        set_epoch(0);
        clear();
    }

    #[test]
    fn site_and_kind_filters_apply() {
        let _g = exclusive();
        set_epoch(0);
        install(
            FaultPlan::new(3, 1.0)
                .with_sites([site::SERVE_REQUEST.to_owned()])
                .with_kinds([FaultKind::Slow]),
        );
        assert_eq!(roll(site::IO_WRITE, "k", &FaultKind::ALL), None, "site filtered");
        assert_eq!(
            roll(site::SERVE_REQUEST, "k", &[FaultKind::ConnDrop]),
            None,
            "kind filtered"
        );
        assert_eq!(
            roll(site::SERVE_REQUEST, "k", &FaultKind::ALL),
            Some(FaultKind::Slow)
        );
        clear();
    }

    #[test]
    fn rates_zero_and_one_are_absolute() {
        let _g = exclusive();
        set_epoch(0);
        install(FaultPlan::new(5, 0.0));
        assert!((0..256).all(|i| roll(site::IO_WRITE, &format!("k{i}"), &FaultKind::ALL).is_none()));
        install(FaultPlan::new(5, 1.0));
        assert!((0..256).all(|i| roll(site::IO_WRITE, &format!("k{i}"), &FaultKind::ALL).is_some()));
        clear();
    }

    #[test]
    fn injected_panics_are_recognizable() {
        let _g = exclusive();
        set_epoch(0);
        install(FaultPlan::new(1, 1.0));
        let payload = std::panic::catch_unwind(|| panic_point(site::PAR_MAP_WORKER, "item-0"))
            .expect_err("rate 1.0 must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(is_injected_payload(&msg), "{msg}");
        assert!(!is_injected_payload("index out of bounds"));
        clear();
    }

    #[test]
    fn env_plan_round_trips() {
        let _g = exclusive();
        // Parse errors surface, valid spec installs.
        std::env::set_var(ENV_VAR, "rate=0.25;seed=9;sites=io::write+serve::conn;kinds=conn-drop;slow_ms=5");
        assert_eq!(install_from_env(), Ok(true));
        let p = plan().expect("installed");
        assert_eq!(p.seed, 9);
        assert_eq!(p.rate, 0.25);
        assert_eq!(p.slow, Duration::from_millis(5));
        assert!(p.site_enabled(site::IO_WRITE) && !p.site_enabled(site::SERVE_REQUEST));
        assert!(p.kind_enabled(FaultKind::ConnDrop) && !p.kind_enabled(FaultKind::Slow));
        std::env::set_var(ENV_VAR, "rate=2.0");
        assert!(install_from_env().is_err());
        std::env::set_var(ENV_VAR, "sites=bogus");
        assert!(install_from_env().is_err());
        std::env::remove_var(ENV_VAR);
        assert_eq!(install_from_env(), Ok(false));
        clear();
    }
}
