//! The paper's headline numbers, asserted against the regenerated
//! experiments (EXPERIMENTS.md records the same comparisons in prose).

use schemachron::core::{Family, Pattern};
use schemachron_bench::context::ExpContext;
use schemachron_bench::{experiments as exp, DEFAULT_SEED};

fn ctx() -> ExpContext {
    ExpContext::new(DEFAULT_SEED)
}

#[test]
fn families_split_two_thirds_quarter_tenth() {
    let ctx = ctx();
    let share = |f: Family| {
        ctx.corpus
            .projects()
            .iter()
            .filter(|p| p.assigned.family() == f)
            .count()
    };
    assert_eq!(share(Family::BeQuickOrBeDead), 97); // 23+41+19+14 = 2/3
    assert_eq!(share(Family::StairwayToHeaven), 37); // 23+14 ≈ 25%
    assert_eq!(share(Family::ScaredToFallAsleepAgain), 17); // 10+7 ≈ 11%
}

#[test]
fn table2_exceptions_match() {
    let t2 = exp::table2(&ctx());
    let get = |p: Pattern| {
        t2.rows
            .iter()
            .find(|r| r.pattern == p)
            .expect("row present")
    };
    for p in Pattern::ALL {
        let row = get(p);
        assert_eq!(
            row.exceptions, row.paper_exceptions,
            "{p}: measured {} vs paper {}",
            row.exceptions, row.paper_exceptions
        );
    }
    // Fig. 6: the patterns are essentially disjoint — the only label-space
    // sharing comes from exception projects sitting in foreign regions
    // (notably "a couple of Siesta projects ... overlapping with Regularly
    // Curated projects of similar definition").
    assert!(
        get(Pattern::Siesta).overlaps >= 2,
        "the paper's Siesta/RC overlap must be present"
    );
    let clean_pattern_overlaps: usize = [
        Pattern::Flatliner,
        Pattern::RadicalSign,
        Pattern::SmokingFunnel,
    ]
    .iter()
    .map(|&p| get(p).overlaps)
    .sum();
    assert_eq!(
        clean_pattern_overlaps, 0,
        "exception-free patterns must not overlap"
    );
}

#[test]
fn figure5_tree_misclassifies_four_of_151() {
    let f5 = exp::figure5(&ctx());
    assert_eq!(f5.misclassified.len(), 4, "{:?}", f5.misclassified);
}

#[test]
fn figure2_headline_correlations() {
    let f2 = exp::figure2(&ctx());
    // Top-band point vs tail: "extremely strongly anti-correlated".
    assert!(f2.rho("PointTopBand_pctPUP", "IntervalTopToEnd_pctPUP") < -0.98);
    // Birth point vs top-band point: the paper reports 0.61.
    let r = f2.rho("PointOfBirth_pctPUP", "PointTopBand_pctPUP");
    assert!((r - 0.61).abs() < 0.1, "rho = {r}");
    // Birth volume vs interval to top: anti-correlated.
    assert!(f2.rho("BirthVolume_pctTotal", "IntervalBirthToTop_pctPUP") < -0.5);
    // Active growth months and its normalizations: tightly related.
    assert!(f2.rho("ActiveGrowthMonths", "Active_pctPUP") > 0.9);
    assert!(f2.rho("ActiveGrowthMonths", "Active_pctGrowth") > 0.9);
}

#[test]
fn figure7_key_cells() {
    let f7 = exp::figure7(&ctx());
    let row = |p: Pattern| f7.rows.iter().find(|r| r.pattern == p).expect("row");
    // Born M0: Flatliner 44%, Radical Sign 31%.
    assert!((row(Pattern::Flatliner).per_bucket[0].1 - 0.44).abs() < 0.01);
    assert!((row(Pattern::RadicalSign).per_bucket[0].1 - 0.31).abs() < 0.01);
    // Born M1-6: Radical Sign 50%.
    assert!((row(Pattern::RadicalSign).per_bucket[1].1 - 0.50).abs() < 0.01);
    // Not born till M12: Sigmoid 33%, Late Risers 29%, Smoking Funnel 15%.
    assert!((row(Pattern::Sigmoid).per_bucket[3].1 - 0.33).abs() < 0.01);
    assert!((row(Pattern::LateRiser).per_bucket[3].1 - 0.29).abs() < 0.01);
    assert!((row(Pattern::SmokingFunnel).per_bucket[3].1 - 0.15).abs() < 0.01);
    // Column totals.
    assert_eq!(f7.bucket_totals, [52, 38, 13, 48]);
}

#[test]
fn section62_rigidity_probabilities() {
    let s62 = exp::stats62(&ctx());
    // M0 → 75%, M1-6 → 53%, >M12 → 64%.
    assert!((s62.rows[0].2 - 0.75).abs() < 0.01, "M0: {}", s62.rows[0].2);
    assert!(
        (s62.rows[1].2 - 0.53).abs() < 0.01,
        "M1-6: {}",
        s62.rows[1].2
    );
    assert!(
        (s62.rows[3].2 - 0.64).abs() < 0.01,
        ">M12: {}",
        s62.rows[3].2
    );
    // Birth marginals: 34% at M0, 60% within 6 months, 68% within a year.
    assert!((s62.born[0].1 - 0.34).abs() < 0.01);
    assert!((s62.born[1].1 - 0.60).abs() < 0.01);
    assert!((s62.born[2].1 - 0.68).abs() < 0.01);
}

#[test]
fn section52_mdc_within_paper_range() {
    let s52 = exp::stats52(&ctx());
    let (lo, hi) = s52.range();
    assert!(lo >= 0.05 && hi <= 1.25, "MDC range [{lo}, {hi}]");
    // Flatliners are the most cohesive pattern.
    let flat = s52
        .rows
        .iter()
        .find(|(p, _, _)| *p == Pattern::Flatliner)
        .map(|(_, _, v)| *v)
        .expect("flatliner row");
    assert!(s52.rows.iter().all(|(_, _, v)| *v >= flat));
}

#[test]
fn section61_medians() {
    let s61 = exp::stats61(&ctx());
    for (p, _, med, _, paper) in &s61.rows {
        let tolerance = (0.1 * paper).max(3.0);
        assert!(
            (med - paper).abs() <= tolerance,
            "{p}: measured {med} vs paper {paper}"
        );
    }
}

#[test]
fn section34_shapiro_wilk_rejects_normality() {
    let s34 = exp::stats34(&ctx());
    for m in &s34.metrics {
        assert!(
            m.p_value < 1e-9,
            "{}: p = {} (paper: all p in the order of 1e-9 or below)",
            m.name,
            m.p_value
        );
    }
    assert_eq!(s34.vaulted, 88);
    assert_eq!(s34.zero_active_growth, 98);
    assert_eq!(s34.top_within_25pct, 64);
}

#[test]
fn section63_expansion_bias() {
    let s63 = exp::stats63(&ctx());
    for r in &s63.rows {
        assert!(
            r.expansion_share > 0.5,
            "{}: expansion share {:.2} — change must be biased towards expansion",
            r.pattern,
            r.expansion_share
        );
    }
    // Table-granular change: births/deletions-with-table dominate
    // injections/ejections overall.
    let total_with_table: usize = s63.rows.iter().map(|r| r.kinds[0] + r.kinds[2]).sum();
    let total_in_table: usize = s63.rows.iter().map(|r| r.kinds[1] + r.kinds[3]).sum();
    assert!(total_with_table > total_in_table);
}

#[test]
fn table1_render_mentions_measured_and_paper() {
    let t1 = exp::table1(&ctx());
    let text = t1.render();
    assert!(text.contains("measured"));
    assert!(text.contains("paper"));
    // All seven metric blocks are present.
    assert_eq!(t1.censuses.len(), 7);
}

#[test]
fn beyond_paper_experiments_hold() {
    let ctx = ctx();

    // Ablation: the taxonomy is stable at the paper's operating point.
    let ab = exp::ablation(&ctx);
    let baseline = ab
        .topband_sweep
        .iter()
        .find(|p| (p.value - 0.90).abs() < 1e-9)
        .expect("90% point swept");
    assert_eq!(baseline.moved, 0, "baseline sweep point must be a no-op");
    let vault_at_10 = ab
        .vault_sweep
        .iter()
        .find(|(v, _)| (v - 0.10).abs() < 1e-9)
        .expect("10% point swept");
    assert_eq!(vault_at_10.1, 88);
    let monthly = &ab.granule_sweep[0];
    assert_eq!(monthly.moved, 0);

    // Tables: the large majority of tables gravitates to rigidity.
    let tables = exp::tables_exp(&ctx);
    let rigidity = tables.rigid_tables as f64 / tables.total_tables as f64;
    assert!(rigidity > 0.5, "rigidity rate {rigidity}");

    // Co-evolution: the schema leads the source code in most projects.
    let co = exp::co_evolution_exp(&ctx);
    assert!(co.schema_leads_share > 0.5, "{}", co.schema_leads_share);

    // Forecast: early observation beats both baselines at one year.
    let fc = exp::forecast(&ctx);
    let at_12 = fc
        .horizons
        .iter()
        .find(|h| h.horizon == 12)
        .expect("12-month horizon");
    assert!(at_12.loo_accuracy > fc.majority_baseline);
    assert!(at_12.loo_accuracy > fc.birth_oracle_accuracy);
    assert!(at_12.loo_family_accuracy >= at_12.loo_accuracy);
}
