//! Fault-injection test for the `asof::checkpoint` site: a panicking
//! checkpoint build must never publish a cache entry (the quarantine path
//! the pipeline stages already honor).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use schemachron_asof::{checkpoint_key, index_for, AsOfArtifact, CHECKPOINT_STAGE};
use schemachron_corpus::cards::all_cards;
use schemachron_corpus::pipeline::{
    history_stage_key, peek_stage_artifact, stage_stats_for,
};
use schemachron_corpus::{Card, Corpus};
use schemachron_fault as fault;

/// Fault state is process-global; every test in this binary touching it
/// serializes on this guard (the same pattern the fault crate's own tests
/// use).
static GUARD: Mutex<()> = Mutex::new(());

fn quarantined_total() -> u64 {
    stage_stats_for(&[CHECKPOINT_STAGE])[0].quarantined
}

#[test]
fn panicking_checkpoint_build_never_publishes_a_cache_entry() {
    let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::clear();

    // A private seed: these keys belong to this test alone.
    let seed = 77_031;
    let cards: Vec<Card> = all_cards().into_iter().take(1).collect();
    let corpus = Corpus::from_cards(cards, seed, 1);
    let project = &corpus.projects()[0];
    let key = checkpoint_key(history_stage_key(&project.card, seed), 12);

    // Every checkpoint build panics.
    fault::install(
        fault::FaultPlan::new(3, 1.0)
            .with_sites([fault::site::ASOF_CHECKPOINT.to_owned()])
            .with_kinds([fault::FaultKind::WorkerPanic]),
    );
    let quarantined_before = quarantined_total();

    let outcome = catch_unwind(AssertUnwindSafe(|| index_for(project, seed, 12)));
    fault::clear();

    let payload = outcome.expect_err("the injected panic must propagate");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .unwrap_or_default();
    assert!(
        fault::is_injected_payload(&message),
        "expected an injected payload, got: {message}"
    );
    assert!(
        peek_stage_artifact::<AsOfArtifact>(CHECKPOINT_STAGE, key).is_none(),
        "a panicking build must not publish its artifact"
    );
    assert_eq!(
        quarantined_total(),
        quarantined_before + 1,
        "the quarantine counter must record the aborted build"
    );

    // With the plan cleared the same build succeeds and publishes.
    let built = index_for(project, seed, 12).expect("fault-free build succeeds");
    assert!(peek_stage_artifact::<AsOfArtifact>(CHECKPOINT_STAGE, key)
        .is_some_and(|cached| std::sync::Arc::ptr_eq(&cached, &built)));
}
