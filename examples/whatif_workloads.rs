//! What-if workloads: use the parameterized workload generator to explore
//! counterfactual corpora — what would the study's headline numbers look
//! like in an ecosystem with a different mixture of evolution styles?
//!
//! Three worlds are generated with `Corpus::generate_random`:
//!   * "FOSS-like"  — the paper's observed mixture (2/3 aversion to change);
//!   * "curated"    — a world where most schemata are actively maintained;
//!   * "late-blooming" — a world dominated by late schema change.
//!
//! Run with: `cargo run --example whatif_workloads`

use schemachron::core::predict::{BirthBucket, BirthPredictor};
use schemachron::core::{Family, Pattern};
use schemachron::corpus::Corpus;

fn describe(tag: &str, corpus: &Corpus) {
    let n = corpus.projects().len();
    println!("── {tag} ({n} projects)");
    for family in Family::ALL {
        let members = corpus
            .projects()
            .iter()
            .filter(|p| p.assigned.family() == family)
            .count();
        println!(
            "   {:<28} {:>3} ({:.0}%)",
            family.name(),
            members,
            100.0 * members as f64 / n as f64
        );
    }
    let zero_agm = corpus
        .projects()
        .iter()
        .filter(|p| p.metrics.active_growth_months == 0)
        .count();
    let vaulted = corpus
        .projects()
        .iter()
        .filter(|p| p.metrics.has_single_vault)
        .count();
    println!(
        "   zero active growth months: {:.0}%   single vault: {:.0}%",
        100.0 * zero_agm as f64 / n as f64,
        100.0 * vaulted as f64 / n as f64
    );
    let oracle = BirthPredictor::fit(&corpus.birth_data());
    println!(
        "   P(frozen | born M0) = {:.0}%   P(frozen | born after M12) = {:.0}%\n",
        oracle.rigidity_probability(BirthBucket::M0) * 100.0,
        oracle.rigidity_probability(BirthBucket::AfterM12) * 100.0
    );
}

fn main() {
    // Pattern order: Flatliner, RadicalSign, Sigmoid, LateRiser,
    // QuantumSteps, RegularlyCurated, Siesta, SmokingFunnel.
    println!(
        "pattern order: {}\n",
        Pattern::ALL.map(|p| p.name()).join(" / ")
    );

    let foss_like = Corpus::generate_random(1, [15, 27, 13, 9, 15, 9, 7, 5]);
    describe("FOSS-like mixture (the paper's world)", &foss_like);

    let curated = Corpus::generate_random(2, [5, 10, 3, 2, 25, 40, 5, 10]);
    describe("curated world (active maintenance dominates)", &curated);

    let late = Corpus::generate_random(3, [5, 10, 25, 25, 5, 5, 15, 10]);
    describe("late-blooming world (schemata wake up late)", &late);

    println!(
        "The generator lets the study's machinery answer questions its corpus\n\
         cannot: the aversion-to-change statistics and the birth-point oracle\n\
         are properties of the *mixture*, not of the method."
    );
}
