//! Acceptance gate for the fault layer: with faults disabled (rate 0) the
//! chaos drill must find every experiment golden byte-identical, and an
//! injected drill must still converge back to the exact golden state.
//!
//! Runs from the workspace root (cargo sets the package cwd), where
//! `goldens/experiments/` is reachable.

use std::sync::{Mutex, MutexGuard, PoisonError};

static GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

fn run_chaos(args: &[&str]) -> (Result<(), String>, String) {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    let mut buf = Vec::new();
    let result = schemachron_cli::run(&argv, &mut buf).map_err(|e| e.message);
    (result, String::from_utf8(buf).expect("utf8 output"))
}

#[test]
fn faults_disabled_keeps_all_goldens_byte_identical() {
    let _g = exclusive();
    assert!(
        std::path::Path::new("goldens/experiments").is_dir(),
        "must run from the workspace root"
    );
    let (result, out) = run_chaos(&["chaos", "--rate", "0.0", "--slow-ms", "600"]);
    result.expect(&out);
    assert!(
        out.contains("experiment goldens: 19/19 byte-identical"),
        "{out}"
    );
    assert!(out.contains("total injected: 0"), "{out}");
    assert!(out.contains("verdict: OK"), "{out}");
}

#[test]
fn injected_faults_still_converge_to_the_goldens() {
    let _g = exclusive();
    let (result, out) = run_chaos(&[
        "chaos", "--rate", "0.25", "--fault-seed", "11", "--slow-ms", "300",
    ]);
    result.expect(&out);
    assert!(
        out.contains("experiment goldens: 19/19 byte-identical"),
        "{out}"
    );
    assert!(
        out.contains("recovered corpus ≡ fault-free corpus (151/151 projects identical)"),
        "{out}"
    );
    assert!(out.contains("verdict: OK"), "{out}");
    // The drill genuinely injected — the convergence is not vacuous.
    assert!(!out.contains("total injected: 0"), "{out}");
}
