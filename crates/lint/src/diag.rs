//! The shared diagnostics framework: stable rule codes, severities, spans
//! into generated migration scripts, and the human/JSON renderers every
//! entry point (CLI, `corpus verify`, the serve route) reuses.

use std::fmt;

use serde_json::{json, Value};

/// How serious a finding is.
///
/// `Info` notes never fail a lint run (they describe legal-but-noteworthy
/// facts like type narrowing); `Warning` fails under `--deny warnings`;
/// `Error` always fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never counts as a finding.
    Info,
    /// Suspicious but not definitely wrong; fails under `--deny warnings`.
    Warning,
    /// Definitely wrong input; always fails the run.
    Error,
}

impl Severity {
    /// The lowercase tag used by both renderers.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A source span: the generated migration script (its `NNNN_YYYY-MM-DD.sql`
/// name, as written by `corpus generate`) and the 1-based line within it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Script file name, e.g. `0003_2014-06-10.sql`.
    pub script: String,
    /// 1-based line within the script.
    pub line: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.script, self.line)
    }
}

/// One finding: a stable rule code, its severity, the project it concerns,
/// an optional script span and the human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable rule code (`L0xx`/`S0xx`/`H0xx`/`F0xx`/`R0xx`, see
    /// [`RULES`]).
    pub code: &'static str,
    /// Severity (fixed per rule).
    pub severity: Severity,
    /// The project (card) the finding concerns; empty for corpus-level
    /// findings.
    pub project: String,
    /// Where in the project's scripts the finding anchors, when it does.
    pub span: Option<Span>,
    /// What is wrong.
    pub message: String,
}

impl Diagnostic {
    /// Builds a finding for a registered rule; the severity comes from the
    /// registry so a code can never drift from its documented level.
    pub fn new(code: &'static str, project: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: rule_severity(code),
            project: project.into(),
            span: None,
            message: message.into(),
        }
    }

    /// Attaches a script span.
    #[must_use]
    pub fn at(mut self, script: impl Into<String>, line: u32) -> Self {
        self.span = Some(Span {
            script: script.into(),
            line,
        });
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code, self.severity.tag())?;
        if !self.project.is_empty() {
            write!(f, " {}", self.project)?;
        }
        if let Some(span) = &self.span {
            write!(f, " {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// One registered rule: its stable code, fixed severity, and the one-line
/// documentation the registry test demands.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// The stable code. `L` = DDL flow, `S` = spec, `H` = cache hash,
    /// `F` = on-disk corpus integrity (fsck), `R` = planner
    /// recommendations.
    pub code: &'static str,
    /// The fixed severity every finding of this rule carries.
    pub severity: Severity,
    /// One-line description (the rule catalog in DESIGN.md mirrors these).
    pub summary: &'static str,
}

/// The complete rule registry. Codes are append-only: a published code is
/// never renumbered or reused.
pub const RULES: [Rule; 28] = [
    Rule {
        code: "L001",
        severity: Severity::Error,
        summary: "duplicate CREATE: table or view created while it already exists",
    },
    Rule {
        code: "L002",
        severity: Severity::Error,
        summary: "DROP of a table or view that never exists in the history",
    },
    Rule {
        code: "L003",
        severity: Severity::Error,
        summary: "drop-before-create ordering: object dropped before its creation commit",
    },
    Rule {
        code: "L004",
        severity: Severity::Error,
        summary: "ALTER TABLE on a table that does not exist at that point",
    },
    Rule {
        code: "L005",
        severity: Severity::Error,
        summary: "ALTER action references a column the table does not have",
    },
    Rule {
        code: "L006",
        severity: Severity::Error,
        summary: "foreign-key target table does not exist at that point",
    },
    Rule {
        code: "L007",
        severity: Severity::Info,
        summary: "type change narrows a column (possible data loss)",
    },
    Rule {
        code: "L008",
        severity: Severity::Error,
        summary: "script contains DDL the tolerant parser had to skip",
    },
    Rule {
        code: "S001",
        severity: Severity::Error,
        summary: "card timing plan is infeasible (no schedule satisfies it)",
    },
    Rule {
        code: "S002",
        severity: Severity::Error,
        summary: "card field outside its domain (fractions must be finite in [0, 1])",
    },
    Rule {
        code: "S003",
        severity: Severity::Error,
        summary: "exception flag contradicts the labels the plan produces",
    },
    Rule {
        code: "S010",
        severity: Severity::Error,
        summary: "corpus does not contain exactly 151 projects",
    },
    Rule {
        code: "S011",
        severity: Severity::Error,
        summary: "duplicate project name in the corpus",
    },
    Rule {
        code: "S012",
        severity: Severity::Error,
        summary: "per-pattern populations disagree with Fig. 4",
    },
    Rule {
        code: "S013",
        severity: Severity::Error,
        summary: "birth-month buckets disagree with Fig. 7",
    },
    Rule {
        code: "S014",
        severity: Severity::Error,
        summary: "per-pattern exception counts disagree with Table 2",
    },
    Rule {
        code: "H001",
        severity: Severity::Error,
        summary: "cached artifact's key matches no key derivable from the audited cards",
    },
    Rule {
        code: "H002",
        severity: Severity::Error,
        summary: "cached artifact filed under an unknown stage namespace",
    },
    Rule {
        code: "H003",
        severity: Severity::Error,
        summary: "pipeline chain keys disagree with the independent FNV-1a re-derivation",
    },
    Rule {
        code: "H004",
        severity: Severity::Error,
        summary: "stage-cache shard layout drifted: shard count disagrees with the restated \
                  formula, or an entry resides outside its key-selected shard",
    },
    Rule {
        code: "H005",
        severity: Severity::Error,
        summary: "as-of checkpoint artifact's key disagrees with the restated derivation \
                  (stage name, version and K-salted history key), or the payload is not \
                  an as-of index",
    },
    Rule {
        code: "H006",
        severity: Severity::Error,
        summary: "safety artifact's key disagrees with the restated derivation (stage name, \
                  logic version, chained history key), or the payload is not a safety \
                  analysis",
    },
    Rule {
        code: "H007",
        severity: Severity::Error,
        summary: "WAL integrity violation: a segment record fails its chained checksum, a \
                  sequence number repeats or regresses, a cursor skips backward, or a torn \
                  tail hides a mid-log hole",
    },
    Rule {
        code: "H008",
        severity: Severity::Error,
        summary: "streamed classification artifact's key disagrees with the restated \
                  derivation (stage name, logic version, count-salted WAL chain checksum), \
                  or the payload is not a streamed classification",
    },
    Rule {
        code: "R001",
        severity: Severity::Info,
        summary: "recommended next migration: planned DDL that would carry the final schema \
                  to its lint-clean ideal (every table keyed by a primary key)",
    },
    Rule {
        code: "R010",
        severity: Severity::Info,
        summary: "lossy migration op: a drop with no inverse (the safety analyzer classifies \
                  it `lossy`; the destroyed rows or values cannot be reconstructed)",
    },
    Rule {
        code: "R011",
        severity: Severity::Info,
        summary: "provenance-dependent op: invertible only with recorded provenance (the \
                  safety analyzer classifies it `recoverable`, e.g. a narrowing cast or a \
                  rename-shaped column move)",
    },
    Rule {
        code: "F001",
        severity: Severity::Error,
        summary: "project directory MANIFEST disagrees with the on-disk scripts (missing, unlisted or checksum-mismatched file)",
    },
];

/// Looks up a rule by code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

fn rule_severity(code: &'static str) -> Severity {
    match rule(code) {
        Some(r) => r.severity,
        // Unregistered codes cannot happen from in-crate constructors (the
        // registry test pins every constructor's code); treat defensively
        // as an error rather than panicking.
        None => Severity::Error,
    }
}

/// An ordered collection of findings plus severity counts — the unit of
/// output every lint pass produces and every renderer consumes.
#[derive(Clone, Debug, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorbs another pass's findings.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Sorts findings into the canonical order: project, script, line,
    /// code, message. Every entry point sorts before rendering, which is
    /// what makes the JSON output byte-identical across worker counts.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let a_span = a.span.as_ref().map(|s| (s.script.as_str(), s.line));
            let b_span = b.span.as_ref().map(|s| (s.script.as_str(), s.line));
            (a.project.as_str(), a_span, a.code, a.message.as_str()).cmp(&(
                b.project.as_str(),
                b_span,
                b.code,
                b.message.as_str(),
            ))
        });
    }

    /// All findings, in insertion (or, after [`Report::sort`], canonical)
    /// order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-level findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-level findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of informational notes.
    pub fn notes(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Whether the run fails: errors always do, warnings only under
    /// `deny_warnings`.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// One-line severity summary, e.g. `3 errors, 1 warning, 2 notes`.
    pub fn summary_line(&self) -> String {
        let plural = |n: usize, word: &str| {
            if n == 1 {
                format!("{n} {word}")
            } else {
                format!("{n} {word}s")
            }
        };
        format!(
            "{}, {}, {}",
            plural(self.errors(), "error"),
            plural(self.warnings(), "warning"),
            plural(self.notes(), "note")
        )
    }

    /// The human renderer: one `code [severity] project script:line:
    /// message` row per finding plus the summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// The JSON form shared by `--format json` and the serve route.
    pub fn to_json(&self) -> Value {
        let diagnostics: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                json!({
                    "code": (d.code),
                    "severity": (d.severity.tag()),
                    "project": (d.project.as_str()),
                    "script": (d.span.as_ref().map(|s| s.script.as_str())),
                    "line": (d.span.as_ref().map(|s| s.line)),
                    "message": (d.message.as_str()),
                })
            })
            .collect();
        json!({
            "diagnostics": diagnostics,
            "summary": {
                "errors": (self.errors()),
                "warnings": (self.warnings()),
                "notes": (self.notes()),
            },
        })
    }

    /// The JSON renderer: pretty-printed, newline-terminated, with the
    /// shim's deterministic key order — byte-stable for goldens.
    pub fn render_json(&self) -> String {
        // A `Value` tree always serializes; fall back to an empty document
        // rather than panicking inside a diagnostics renderer.
        let mut s = serde_json::to_string_pretty(&self.to_json()).unwrap_or_default();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_documented() {
        let mut codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
        codes.sort_unstable();
        let mut deduped = codes.clone();
        deduped.dedup();
        assert_eq!(codes, deduped, "duplicate rule code in the registry");
        for r in &RULES {
            assert!(
                !r.summary.trim().is_empty(),
                "{}: every rule needs documentation",
                r.code
            );
            let class = r.code.as_bytes()[0];
            assert!(
                matches!(class, b'L' | b'S' | b'H' | b'F' | b'R'),
                "{}: codes are L/S/H/F/R-classed",
                r.code
            );
            assert_eq!(r.code.len(), 4, "{}: codes are letter + 3 digits", r.code);
        }
    }

    #[test]
    fn diagnostics_inherit_registry_severity() {
        let d = Diagnostic::new("L007", "p", "narrowed");
        assert_eq!(d.severity, Severity::Info);
        let e = Diagnostic::new("L001", "p", "dup");
        assert_eq!(e.severity, Severity::Error);
    }

    #[test]
    fn human_renderer_contains_code_and_span_per_finding() {
        let mut r = Report::new();
        r.push(Diagnostic::new("L004", "proj-a", "no such table `x`").at("0002_2014-01-10.sql", 7));
        r.push(Diagnostic::new("S001", "proj-b", "infeasible"));
        r.sort();
        let text = r.render_human();
        assert!(text.contains("L004"), "{text}");
        assert!(text.contains("0002_2014-01-10.sql:7"), "{text}");
        assert!(text.contains("S001"), "{text}");
        assert!(text.contains("2 errors, 0 warnings, 0 notes"), "{text}");
    }

    #[test]
    fn json_round_trips_code_span_and_counts() {
        let mut r = Report::new();
        r.push(Diagnostic::new("L001", "p", "dup table").at("0001_2013-02-10.sql", 3));
        r.push(Diagnostic::new("L007", "p", "narrowed"));
        r.sort();
        let v: Value = serde_json::from_str(&r.render_json()).expect("renderer emits valid JSON");
        assert_eq!(v["summary"]["errors"].as_u64(), Some(1));
        assert_eq!(v["summary"]["notes"].as_u64(), Some(1));
        // Span-less project-level findings sort before spanned ones.
        assert_eq!(v["diagnostics"][0]["code"].as_str(), Some("L007"));
        let d1 = &v["diagnostics"][1];
        assert_eq!(d1["code"].as_str(), Some("L001"));
        assert_eq!(d1["script"].as_str(), Some("0001_2013-02-10.sql"));
        assert_eq!(d1["line"].as_u64(), Some(3));
    }

    #[test]
    fn sort_is_canonical_and_stable() {
        let mut a = Report::new();
        a.push(Diagnostic::new("L002", "zz", "later"));
        a.push(Diagnostic::new("L001", "aa", "first").at("0001_x.sql", 2));
        a.push(Diagnostic::new("L001", "aa", "first").at("0001_x.sql", 1));
        a.sort();
        let rows: Vec<String> = a.diagnostics().iter().map(ToString::to_string).collect();
        assert!(rows[0].contains("aa"), "{rows:?}");
        assert!(rows[0].contains(":1"), "{rows:?}");
        assert!(rows[2].contains("zz"), "{rows:?}");
    }

    #[test]
    fn failure_depends_on_severity_and_deny() {
        let mut r = Report::new();
        assert!(!r.failed(true));
        r.push(Diagnostic::new("L007", "p", "note"));
        assert!(!r.failed(true), "notes never fail");
        let mut w = Report::new();
        // No warning-severity rules exist yet; simulate one directly.
        w.push(Diagnostic {
            code: "L999",
            severity: Severity::Warning,
            project: "p".into(),
            span: None,
            message: "warn".into(),
        });
        assert!(!w.failed(false));
        assert!(w.failed(true));
    }
}
