//! Document store: the paper's future-work direction — do the time-related
//! patterns also describe **NoSQL** (implicit) schema evolution?
//!
//! The example simulates three years of a document database's life: the
//! implicit schema of each monthly snapshot is inferred from the documents
//! themselves, diffed, and classified with the exact same pipeline as a
//! relational history.
//!
//! Run with: `cargo run --example document_store`

use schemachron::chart::ascii::AsciiChart;
use schemachron::core::metrics::TimeMetrics;
use schemachron::core::quantize::Labels;
use schemachron::core::{classify, classify_nearest};
use schemachron::history::Date;
use schemachron::nosql::{Collections, DocumentHistoryBuilder};

fn main() {
    let mut b = DocumentHistoryBuilder::new("startup-docstore");
    let date = |m: u32| Date::new(2021 + (m / 12) as i32, (m % 12 + 1) as u8, 15);

    // Month 0: the MVP — two entity types.
    let mut v0 = Collections::new();
    v0.add_json(
        "users",
        r#"{"id": 1, "handle": "ada", "joined": "2021-01-02"}"#,
    )
    .unwrap();
    v0.add_json("posts", r#"{"id": 10, "author": 1, "text": "hello world"}"#)
        .unwrap();
    b.snapshot(date(0), &v0);

    // Month 4: posts grow reactions; a settings singleton appears.
    let mut v1 = Collections::new();
    v1.add_json(
        "users",
        r#"{"id": 1, "handle": "ada", "joined": "2021-01-02"}"#,
    )
    .unwrap();
    v1.add_json(
        "posts",
        r#"{"id": 10, "author": 1, "text": "hello world", "reactions": {"likes": 4, "reposts": 1}}"#,
    )
    .unwrap();
    v1.add_json("settings", r#"{"theme": "dark", "beta": true}"#)
        .unwrap();
    b.snapshot(date(4), &v1);

    // Month 9: schema drift — user ids become strings (a classic).
    let mut v2 = Collections::new();
    v2.add_json(
        "users",
        r#"{"id": "u-1", "handle": "ada", "joined": "2021-01-02", "bio": null}"#,
    )
    .unwrap();
    v2.add_json(
        "posts",
        r#"{"id": 10, "author": "u-1", "text": "hello", "reactions": {"likes": 4, "reposts": 1}}"#,
    )
    .unwrap();
    v2.add_json("settings", r#"{"theme": "dark", "beta": true}"#)
        .unwrap();
    b.snapshot(date(9), &v2);

    // The application keeps shipping for three years.
    for m in 0..36 {
        b.source_commit(date(m), 80.0 + f64::from(m % 7) * 12.0);
    }

    let project = b.build();
    let metrics = TimeMetrics::from_project(&project).expect("schema activity");
    let labels = Labels::from_metrics(&metrics);

    println!("document store: {}", project.name());
    println!(
        "  implicit-schema activity: {:.0} affected fields over {} months",
        metrics.total_activity, metrics.pup_months
    );
    println!(
        "  born at {:.0}% of life ({:.0}% of change at birth), top band at {:.0}%",
        metrics.birth_pct_pup * 100.0,
        metrics.birth_volume_pct_total * 100.0,
        metrics.topband_pct_pup * 100.0
    );
    let verdict = classify(&labels)
        .map(|p| format!("{} ({})", p.name(), p.family()))
        .unwrap_or_else(|| {
            let (p, _) = classify_nearest(&labels);
            format!("exception; nearest {}", p.name())
        });
    println!("  time-related pattern: {verdict}");
    println!("\nThe same pipeline, the same patterns — on documents instead of DDL:\n");
    println!(
        "{}",
        AsciiChart {
            width: 60,
            height: 10
        }
        .render(&project)
    );

    // Show the inferred relational view of the final snapshot.
    let final_schema = project
        .schema_history()
        .expect("built from snapshots")
        .last_schema()
        .expect("non-empty");
    println!("inferred implicit schema (final snapshot):\n");
    print!("{}", schemachron::model::render_schema_sql(final_schema));
}
