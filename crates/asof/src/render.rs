//! Human and JSON renderers for as-of query results.
//!
//! Mirroring the lint diagnostics framework's renderer split, the query
//! engine returns plain data and this module owns presentation. Both the
//! CLI and the HTTP service call these functions, so a CLI golden and a
//! `curl` response for the same query are byte-identical JSON.

use schemachron_dialect::report::PlanRequest;
use schemachron_history::MonthId;
use schemachron_model::{render_schema_sql, Schema, SchemaDiff};
use serde_json::{json, Value};

use crate::index::AsOfIndex;
use crate::provenance::Provenance;

/// Shared response envelope: the project and its observed lifespan.
fn envelope(index: &AsOfIndex) -> Value {
    json!({
        "project": (index.project()),
        "lifespan": {
            "start": (index.start().to_string()),
            "last": (index.last_month().to_string()),
            "months": (index.months()),
        },
        "k_months": (index.k_months()),
        "checkpoints": (index.checkpoint_count()),
    })
}

fn with_envelope(index: &AsOfIndex, extra: Value) -> Value {
    let mut base = envelope(index);
    if let (Value::Object(b), Value::Object(e)) = (&mut base, extra) {
        for (k, v) in e {
            b.insert(k, v);
        }
    }
    base
}

/// The JSON form of a `schema?asof=` answer.
pub fn schema_json(index: &AsOfIndex, m: MonthId, schema: &Schema) -> Value {
    with_envelope(
        index,
        json!({
            "asof": (m.to_string()),
            "table_count": (schema.table_count()),
            "attribute_count": (schema.attribute_count()),
            "schema": (serde_json::to_value(schema).unwrap_or(Value::Null)),
        }),
    )
}

/// The human form of a `schema?asof=` answer: a header plus the SQL dump.
pub fn schema_human(index: &AsOfIndex, m: MonthId, schema: &Schema) -> String {
    let mut out = format!(
        "{} as of {m}: {} tables, {} attributes (lifespan {}..{}, K={})\n",
        index.project(),
        schema.table_count(),
        schema.attribute_count(),
        index.start(),
        index.last_month(),
        index.k_months(),
    );
    if schema.is_empty() {
        out.push_str("-- empty schema\n");
    } else {
        out.push_str(&render_schema_sql(schema));
    }
    out
}

/// The JSON form of a `diff?from=&to=` answer.
pub fn diff_json(index: &AsOfIndex, from: MonthId, to: MonthId, d: &SchemaDiff) -> Value {
    with_envelope(
        index,
        json!({
            "from": (from.to_string()),
            "to": (to.to_string()),
            "tables_added": (d.tables_added.iter().map(|n| n.as_str()).collect::<Vec<_>>()),
            "tables_dropped": (d.tables_dropped.iter().map(|n| n.as_str()).collect::<Vec<_>>()),
            "changes": (d
                .changes
                .iter()
                .map(|c| {
                    json!({
                        "table": (c.table.as_str()),
                        "attribute": (c.attribute.as_str()),
                        "kind": (c.kind.label()),
                    })
                })
                .collect::<Vec<_>>()),
            "attribute_changes": (d.attribute_change_count()),
            "expansion": (d.expansion_count()),
            "maintenance": (d.maintenance_count()),
        }),
    )
}

/// The human form of a `diff?from=&to=` answer.
pub fn diff_human(index: &AsOfIndex, from: MonthId, to: MonthId, d: &SchemaDiff) -> String {
    let mut out = format!(
        "{} diff {from} -> {to}: {} affected attributes ({} expansion, {} maintenance)\n",
        index.project(),
        d.attribute_change_count(),
        d.expansion_count(),
        d.maintenance_count(),
    );
    for n in &d.tables_added {
        out.push_str(&format!("  + table {}\n", n.as_str()));
    }
    for n in &d.tables_dropped {
        out.push_str(&format!("  - table {}\n", n.as_str()));
    }
    for c in &d.changes {
        out.push_str(&format!(
            "    {}.{}: {}\n",
            c.table.as_str(),
            c.attribute.as_str(),
            c.kind.label()
        ));
    }
    if d.is_empty() {
        out.push_str("  (no logical changes)\n");
    }
    out
}

/// Fills the migration-plan renderer's envelope from an as-of index: the
/// adapter that lets `schemachron_dialect::report` stay independent of the
/// index while the CLI and serve answers share one byte-identical shape.
pub fn plan_request(index: &AsOfIndex, from: MonthId, to: MonthId) -> PlanRequest {
    PlanRequest {
        project: index.project().to_string(),
        lifespan_start: index.start().to_string(),
        lifespan_last: index.last_month().to_string(),
        lifespan_months: index.months(),
        from: from.to_string(),
        to: to.to_string(),
    }
}

/// The JSON form of a provenance answer.
pub fn provenance_json(index: &AsOfIndex, p: &Provenance) -> Value {
    let event = |e: &crate::provenance::ProvenanceEvent| {
        json!({
            "month": (e.month.to_string()),
            "date": (e.date.to_string()),
            "change": (e.change),
        })
    };
    with_envelope(
        index,
        json!({
            "table": (p.table.clone()),
            "column": (p.column.clone().map(Value::String).unwrap_or(Value::Null)),
            "alive": (p.alive),
            "introduced": (p.introduced.as_ref().map(&event).unwrap_or(Value::Null)),
            "ejected": (p.ejected.as_ref().map(&event).unwrap_or(Value::Null)),
            "events": (p.events.iter().map(&event).collect::<Vec<_>>()),
        }),
    )
}

/// The human form of a provenance answer.
pub fn provenance_human(index: &AsOfIndex, p: &Provenance) -> String {
    let subject = match &p.column {
        Some(col) => format!("{}.{col}", p.table),
        None => p.table.clone(),
    };
    let mut out = format!(
        "{} provenance of {subject}: {}\n",
        index.project(),
        if p.alive { "alive" } else { "dead" },
    );
    if let Some(e) = &p.introduced {
        out.push_str(&format!("  introduced {} ({}, {})\n", e.month, e.date, e.change));
    }
    if let Some(e) = &p.ejected {
        out.push_str(&format!("  ejected    {} ({}, {})\n", e.month, e.date, e.change));
    }
    out.push_str("  lineage:\n");
    for e in &p.events {
        out.push_str(&format!("    {} {} {}\n", e.month, e.date, e.change));
    }
    out
}
