//! Case-insensitive SQL identifiers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A SQL identifier (table, attribute, or constraint name).
///
/// SQL identifiers compare case-insensitively in the dialects the study's
/// corpus covers (MySQL, PostgreSQL, SQLite all fold unquoted identifiers).
/// `Name` preserves the original spelling for display but implements
/// [`PartialEq`], [`Ord`] and [`Hash`] on the ASCII-lowercased form, so
/// `Name::from("Users") == Name::from("users")`.
///
/// ```
/// use schemachron_model::Name;
/// assert_eq!(Name::from("CUSTOMER"), Name::from("customer"));
/// assert_eq!(Name::from("café"), Name::from("café"));
/// ```
#[derive(Clone, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Name(String);

impl Name {
    /// Creates a name from anything string-like.
    pub fn new(raw: impl Into<String>) -> Self {
        Name(raw.into())
    }

    /// The original spelling of the identifier.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The normalized (ASCII-lowercased) form used for comparisons.
    pub fn normalized(&self) -> String {
        self.0.to_ascii_lowercase()
    }

    fn norm_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.0.bytes().map(|b| b.to_ascii_lowercase())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:?})", self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_ignore_ascii_case(&other.0)
    }
}

impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.norm_bytes().cmp(other.norm_bytes())
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for b in self.norm_bytes() {
            state.write_u8(b);
        }
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name(s.to_owned())
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(s)
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(n: &Name) -> u64 {
        let mut h = DefaultHasher::new();
        n.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_is_case_insensitive() {
        assert_eq!(Name::from("Users"), Name::from("USERS"));
        assert_ne!(Name::from("users"), Name::from("user"));
    }

    #[test]
    fn display_preserves_original_spelling() {
        assert_eq!(Name::from("OrderLine").to_string(), "OrderLine");
    }

    #[test]
    fn hash_agrees_with_equality() {
        assert_eq!(hash_of(&Name::from("ABC")), hash_of(&Name::from("abc")));
    }

    #[test]
    fn ordering_is_case_insensitive() {
        let mut v = [Name::from("b"), Name::from("A"), Name::from("C")];
        v.sort();
        let spellings: Vec<&str> = v.iter().map(Name::as_str).collect();
        assert_eq!(spellings, vec!["A", "b", "C"]);
    }

    #[test]
    fn ordering_total_on_equal_prefixes() {
        assert!(Name::from("ab") < Name::from("abc"));
        assert!(Name::from("abc") > Name::from("ab"));
        assert_eq!(Name::from("ab").cmp(&Name::from("AB")), Ordering::Equal);
    }

    #[test]
    fn non_ascii_names_compare_exactly() {
        // Only ASCII case folding is applied; non-ASCII bytes compare verbatim.
        assert_eq!(Name::from("café"), Name::from("café"));
        assert_ne!(Name::from("café"), Name::from("cafe"));
    }
}
