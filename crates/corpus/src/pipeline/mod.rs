//! The staged ingestion pipeline: typed artifacts, content-hashed stage
//! cache, incremental per-project recompute.
//!
//! The study's computation is a fixed chain of substrates; this module
//! materializes each substrate as a first-class [`Stage`] with a typed
//! output artifact:
//!
//! ```text
//! CardSpec ──materialize──▶ RawScripts ──parse──▶ ParsedDdl
//!   ──schema──▶ LogicalSchema ──diff──▶ DiffSeq ──history──▶ ProjectHistory
//!   ──metrics──▶ MetricVector ──labels──▶ LabelTuple ──classify──▶ PatternClass
//! ```
//!
//! Every stage output is keyed by a content hash of its inputs: the root
//! key fingerprints the trait card's full content plus the corpus seed, and
//! each stage chains `hash(stage name, stage version, input key)` on top
//! (see [`derive_key`]). Artifacts live in a process-wide cache — the
//! generalization of the old seed-keyed `Arc<Corpus>` cache — so editing one
//! project's card re-runs only that project's downstream stages; every
//! other project, and every untouched upstream artifact, is a cache hit.
//!
//! Chains are walked lazily downstream-first by [`build_project`]: a fully
//! cached project fetches its terminal artifacts and never touches the
//! early stages. Corpus construction fans chains out over the existing
//! `par_map` worker pool, so per-stage caching and parallelism compose.
//!
//! Observability: global per-stage hit/miss/wall-time counters
//! ([`stage_stats`], surfaced on the HTTP service's `/health` and in
//! `BENCH_stages.json`) plus an exact per-call [`StageTrace`] for tests.

mod artifact;
mod stage;
mod stages;

pub use artifact::{
    card_fingerprint, CardSpec, DiffSeq, DiffStep, LabelTuple, LogicalSchema, MetricVector,
    ParsedCommit, ParsedDdl, PatternClass, RawScripts,
};
pub use stage::{
    derive_key, shard_count_for, shard_of_key, Stage, StageKey, StageStats, StageTrace, TraceEntry,
};
pub use stages::{
    build_project, build_project_traced, chain_keys, classify_project, parse_salt, ClassifyStage,
    DiffStage, HistoryInput, HistoryStage, LabelsStage, MaterializeStage, MetricsStage, ParseStage,
    SchemaStage, STAGE_ORDER,
};

/// Snapshots the global per-stage counters, in pipeline order. Stages that
/// never ran report zeros.
pub fn stage_stats() -> Vec<StageStats> {
    stage::cache().stats_snapshot(&STAGE_ORDER)
}

/// Snapshots the global counters for an arbitrary stage-name list — for
/// consumers (like the as-of index) whose namespaces are not part of
/// [`STAGE_ORDER`].
pub fn stage_stats_for(order: &[&'static str]) -> Vec<StageStats> {
    stage::cache().stats_snapshot(order)
}

/// Fetches a typed artifact from the process-wide stage cache, recording a
/// global hit when found. External subsystems (e.g. `schemachron-asof`)
/// that keep their artifacts in this cache under their own stage namespace
/// go through this; the 8 ingestion stages use their internal chain walk.
pub fn stage_artifact<T: Send + Sync + 'static>(
    stage: &'static str,
    key: StageKey,
) -> Option<std::sync::Arc<T>> {
    stage::cache().get(stage, key)
}

/// Fetches a typed artifact **without** recording a hit — for observers
/// (lint audits, tests) that must not perturb the cache telemetry.
pub fn peek_stage_artifact<T: Send + Sync + 'static>(
    stage: &'static str,
    key: StageKey,
) -> Option<std::sync::Arc<T>> {
    stage::cache().peek(stage, key)
}

/// Publishes a freshly computed artifact into the process-wide stage cache
/// under `(stage, key)`, recording a global miss plus `busy` compute time.
/// The key must be a content hash chained from the artifact's inputs — the
/// lint cache auditor (`H001`/`H002`/`H005`) walks every resident entry and
/// flags any key it cannot re-derive.
pub fn insert_stage_artifact(
    stage: &'static str,
    key: StageKey,
    value: std::sync::Arc<dyn std::any::Any + Send + Sync>,
    busy: std::time::Duration,
) {
    stage::cache().insert(stage, key, value, busy);
}

/// Records a quarantined recomputation for an external stage namespace: the
/// build panicked before producing an artifact, so nothing was published
/// under its key (see [`StageStats::quarantined`]).
pub fn record_stage_quarantine(stage: &'static str) {
    stage::cache().record_quarantine(stage);
}

/// The content-hash key of a card's **history** stage artifact (chain link
/// 5 of 8): the `ProjectHistory` fingerprint downstream consumers chain
/// their own keys from, so a card edit invalidates them transitively.
pub fn history_stage_key(card: &crate::Card, seed: u64) -> StageKey {
    chain_keys(card, seed)[4]
}

/// Zeroes the global per-stage counters (cached artifacts are kept).
pub fn reset_stage_stats() {
    stage::cache().reset_stats();
}

/// Drops every cached artifact, forcing the next build to recompute all
/// stages. Counters are kept; pair with [`reset_stage_stats`] for a clean
/// measurement window.
pub fn clear_stage_cache() {
    stage::cache().clear();
}

/// Number of artifacts currently cached across all stages.
pub fn stage_cache_len() -> usize {
    stage::cache().len()
}

/// Snapshots the `(stage name, content key)` identity of every cached
/// artifact, sorted by stage then key. A read-only view: the lint
/// cache-coherence auditor walks it to re-derive each key from the card
/// set and report any entry whose chained hash disagrees.
pub fn stage_cache_entries() -> Vec<(&'static str, StageKey)> {
    stage::cache().entry_keys()
}

/// Number of lock stripes in the process-wide stage cache: the next power
/// of two at or above 4 × available parallelism (see [`shard_count_for`]).
pub fn stage_cache_shard_count() -> usize {
    stage::cache().shard_count()
}

/// Snapshots every cached entry as `(stage name, content key, resident
/// shard)`, sorted by stage then key. The lint `H004` shard-placement audit
/// walks it to verify every entry lives in the shard its key selects
/// (`key & (shard_count - 1)`).
pub fn stage_cache_shard_entries() -> Vec<(&'static str, StageKey, usize)> {
    stage::cache().shard_entries()
}

/// Re-files one cached artifact under a different `(stage, key)` identity,
/// returning whether the source entry existed.
///
/// This deliberately violates the content-hash invariant — it exists only
/// so fault-injection tests can plant the exact corruption the lint
/// auditor's `H0xx` rules detect. Never call it in production code.
#[doc(hidden)]
pub fn corrupt_stage_cache_entry(
    from: (&'static str, StageKey),
    to: (&'static str, StageKey),
) -> bool {
    stage::cache().rekey(from, to)
}

/// Plants one cached artifact in an explicit (possibly foreign) shard,
/// returning whether the entry existed.
///
/// This deliberately violates the key → shard invariant — it exists only so
/// fault-injection tests can plant the exact misplacement the lint
/// auditor's `H004` rule detects. A misplaced entry is invisible to normal
/// lookups (which only consult the key's home shard). Never call it in
/// production code.
#[doc(hidden)]
pub fn misplace_stage_cache_entry(entry: (&'static str, StageKey), shard: usize) -> bool {
    stage::cache().misplace(entry, shard)
}
