//! Runs the early-horizon pattern forecast (beyond the paper).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::forecast(&ctx);
    emit(
        "exp_forecast",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
