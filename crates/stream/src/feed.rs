//! The fault-tolerant change feed: a bounded ring of classification
//! transition events under one process-wide monotonic cursor.
//!
//! Every acknowledged commit emits exactly one [`ChangeEvent`]. Subscribers
//! pull with [`ChangeFeed::events_since`] — a cursor-based read, so a
//! disconnected subscriber resumes from its last cursor (the HTTP layer
//! maps SSE `Last-Event-ID` straight onto it). The ring is bounded: when a
//! subscriber falls further behind than the retention window, the read
//! sheds the missed span with a `lagged` marker instead of blocking
//! ingestion or growing without bound.
//!
//! Cursors survive restarts because every WAL record embeds the cursor its
//! commit was announced under: replay resumes the feed past the highest
//! cursor on disk, so a cursor handed to a subscriber is never reissued.
//!
//! Events deliberately carry no wall-clock time — a feed transcript is a
//! pure function of the commit schedule, which is what lets the chaos
//! drill diff a live faulted feed against a fault-free rebuild
//! byte-for-byte.

use std::collections::VecDeque;

use schemachron_fault as fault;

/// Default retention: events kept for laggards before shedding.
pub const FEED_CAPACITY: usize = 1024;

/// Bounded retries for an injected `stream::feed_emit` failure before the
/// in-process delivery proceeds anyway (the ring insert itself cannot
/// fail; the site models a flaky delivery hop).
pub const FEED_EMIT_TRIES: u32 = 8;

/// One classification transition announced by the feed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangeEvent {
    /// The process-wide monotonic cursor (also the SSE event id).
    pub cursor: u64,
    /// Project the commit belongs to.
    pub project: String,
    /// The commit's client sequence number.
    pub seq: u64,
    /// The commit date (`YYYY-MM-DD`).
    pub date: String,
    /// Pattern label before this commit (`None` for a project's first).
    pub before: Option<String>,
    /// Pattern label after this commit.
    pub after: String,
}

/// A batch answered to one subscriber pull.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeedBatch {
    /// Events with cursor strictly greater than the requested `since`.
    pub events: Vec<ChangeEvent>,
    /// Whether events in the requested span were already shed.
    pub lagged: bool,
    /// The cursor to resume from (pass as the next `since`).
    pub next_cursor: u64,
}

/// The bounded, cursored change feed.
#[derive(Debug)]
pub struct ChangeFeed {
    ring: VecDeque<ChangeEvent>,
    capacity: usize,
    /// The cursor the next emitted event will carry.
    next_cursor: u64,
}

impl ChangeFeed {
    /// An empty feed starting at cursor 1.
    pub fn new(capacity: usize) -> ChangeFeed {
        ChangeFeed {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            next_cursor: 1,
        }
    }

    /// The cursor the next emitted event will be assigned. Stable across
    /// failed append attempts: nothing is consumed until [`emit`] commits.
    ///
    /// [`emit`]: ChangeFeed::emit
    pub fn peek_cursor(&self) -> u64 {
        self.next_cursor
    }

    /// Advances the feed past cursors already durable in a replayed WAL,
    /// so restart never reissues a cursor a subscriber may have seen.
    pub fn resume_past(&mut self, cursor: u64) {
        self.next_cursor = self.next_cursor.max(cursor + 1);
    }

    /// Emits one event. The event's cursor must be the feed's
    /// [`peek_cursor`](ChangeFeed::peek_cursor) — assignment and
    /// consumption are one atomic step, which is what keeps cursors
    /// identical between a faulted run (with retries) and a clean one.
    ///
    /// Delivery rolls the `stream::feed_emit` fault site up to
    /// [`FEED_EMIT_TRIES`] times (each try is its own decision); injected
    /// failures are retried, never allowed to drop the event — a lost
    /// transition would make the live feed disagree with a batch rebuild.
    ///
    /// # Panics
    /// When the event's cursor is not the feed's next cursor (caller bug).
    pub fn emit(&mut self, event: ChangeEvent) {
        assert_eq!(
            event.cursor, self.next_cursor,
            "feed events must consume the peeked cursor"
        );
        let key_base = format!("{}:{}", event.project, event.seq);
        for try_n in 0..FEED_EMIT_TRIES {
            if fault::roll(
                fault::site::STREAM_FEED_EMIT,
                &format!("{key_base}:{try_n}"),
                &[fault::FaultKind::IoError],
            )
            .is_none()
            {
                break;
            }
        }
        self.next_cursor += 1;
        self.ring.push_back(event);
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
        }
    }

    /// Events with cursor strictly greater than `since`, at most `max`.
    /// Sets `lagged` when the span right after `since` was already shed.
    pub fn events_since(&self, since: u64, max: usize) -> FeedBatch {
        let oldest_retained = self.ring.front().map_or(self.next_cursor, |e| e.cursor);
        let lagged = since.saturating_add(1) < oldest_retained;
        let events: Vec<ChangeEvent> = self
            .ring
            .iter()
            .filter(|e| e.cursor > since)
            .take(max)
            .cloned()
            .collect();
        let next_cursor = events.last().map_or_else(
            || if lagged { oldest_retained - 1 } else { since },
            |e| e.cursor,
        );
        FeedBatch {
            events,
            lagged,
            next_cursor,
        }
    }
}

impl Default for ChangeFeed {
    fn default() -> ChangeFeed {
        ChangeFeed::new(FEED_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(feed: &ChangeFeed, project: &str, seq: u64, after: &str) -> ChangeEvent {
        ChangeEvent {
            cursor: feed.peek_cursor(),
            project: project.to_owned(),
            seq,
            date: "2020-01-10".to_owned(),
            before: None,
            after: after.to_owned(),
        }
    }

    #[test]
    fn cursors_are_monotonic_and_resume() {
        let mut feed = ChangeFeed::new(16);
        for seq in 1..=3 {
            let e = event(&feed, "p", seq, "frozen");
            feed.emit(e);
        }
        let batch = feed.events_since(0, 100);
        assert_eq!(batch.events.len(), 3);
        assert!(!batch.lagged);
        assert_eq!(batch.next_cursor, 3);
        let tail = feed.events_since(batch.next_cursor, 100);
        assert!(tail.events.is_empty());
        assert_eq!(tail.next_cursor, 3, "resume cursor is stable when idle");
    }

    #[test]
    fn slow_subscribers_shed_with_a_lagged_marker() {
        let mut feed = ChangeFeed::new(4);
        for seq in 1..=10 {
            let e = event(&feed, "p", seq, "frozen");
            feed.emit(e);
        }
        // Cursors 1..=6 have been shed; a subscriber at 2 lagged.
        let batch = feed.events_since(2, 100);
        assert!(batch.lagged);
        assert_eq!(batch.events.first().map(|e| e.cursor), Some(7));
        // A subscriber inside the window is not lagged.
        let fresh = feed.events_since(8, 100);
        assert!(!fresh.lagged);
        assert_eq!(fresh.events.len(), 2);
    }

    #[test]
    fn a_cursor_at_u64_max_does_not_overflow() {
        // A client can send since=u64::MAX via `?since=` or Last-Event-ID;
        // the lag check must saturate instead of wrapping.
        let mut feed = ChangeFeed::new(4);
        for seq in 1..=2 {
            let e = event(&feed, "p", seq, "frozen");
            feed.emit(e);
        }
        let batch = feed.events_since(u64::MAX, 100);
        assert!(batch.events.is_empty());
        assert!(!batch.lagged, "a cursor past the end is ahead, not lagged");
        assert_eq!(batch.next_cursor, u64::MAX);
    }

    #[test]
    fn restart_never_reissues_a_cursor() {
        let mut feed = ChangeFeed::new(16);
        feed.resume_past(41); // highest cursor found in a replayed WAL
        assert_eq!(feed.peek_cursor(), 42);
        let e = event(&feed, "p", 7, "frozen");
        feed.emit(e);
        assert_eq!(feed.events_since(41, 10).events[0].cursor, 42);
    }
}
