//! Centroids and distances of quantized time-series vectors (§5.2).
//!
//! The paper quantizes each project's cumulative schema line to a vector of
//! 20 measurements and reports the Mean Distance to Centroid (MDC) per
//! pattern, ranging 0.06–1.25, as evidence of pattern cohesion.

/// Euclidean distance between two equally long vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance inputs must be same length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// The component-wise mean of a non-empty set of equally long vectors.
///
/// # Panics
/// Panics on an empty set or ragged vectors.
pub fn centroid(vectors: &[Vec<f64>]) -> Vec<f64> {
    assert!(!vectors.is_empty(), "centroid of empty set");
    let dim = vectors[0].len();
    let mut c = vec![0.0; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "ragged vectors");
        for (ci, vi) in c.iter_mut().zip(v) {
            *ci += vi;
        }
    }
    for ci in &mut c {
        *ci /= vectors.len() as f64;
    }
    c
}

/// Mean Euclidean distance of each vector to the set's centroid.
pub fn mean_distance_to_centroid(vectors: &[Vec<f64>]) -> f64 {
    let c = centroid(vectors);
    vectors.iter().map(|v| euclidean(v, &c)).sum::<f64>() / vectors.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn centroid_is_mean() {
        let c = centroid(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(c, vec![1.0, 3.0]);
    }

    #[test]
    fn mdc_zero_for_identical_vectors() {
        let v = vec![vec![0.5; 20]; 7];
        assert_eq!(mean_distance_to_centroid(&v), 0.0);
    }

    #[test]
    fn mdc_known_value() {
        // Two points at distance 2 → centroid in the middle, MDC = 1.
        let v = vec![vec![0.0], vec![2.0]];
        assert!((mean_distance_to_centroid(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn centroid_empty_panics() {
        let _ = centroid(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn centroid_ragged_panics() {
        let _ = centroid(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
