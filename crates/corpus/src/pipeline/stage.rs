//! Generic stage machinery: the [`Stage`] trait, content-hash keys, the
//! process-wide **sharded** stage cache and its wait-free hit/miss/wall-time
//! accounting.
//!
//! # Sharding
//!
//! The cache is lock-striped: artifacts are spread over `N` independent
//! shards (`N` = the next power of two ≥ 4 × available parallelism, so a
//! worker pool at full fan-out collides on a shard with probability ≈ 1/4
//! per access), each shard owning its own map and FIFO eviction ring with a
//! per-shard slice of the total capacity. The shard of an entry is selected
//! by masking its FNV-1a content-hash key (`key & (N - 1)`); FNV-1a output
//! is uniform over the low bits, so the stripes stay balanced without a
//! second hash. Concurrent workers ingesting different projects therefore
//! almost never contend on a lock — the regression this design replaces had
//! every worker serializing 8 times per project on one global `Mutex` pair.
//!
//! Stat recording is wait-free: per-stage fixed-slot [`AtomicU64`] counters
//! (hit / miss / quarantined / busy-ns) replace the old `Mutex<HashMap>`,
//! so the hot path never takes a lock just to count.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

pub(crate) use schemachron_hash::{fnv1a, FNV_OFFSET};

/// Locks a shard mutex, ignoring poisoning: the critical sections below
/// only move plain data, so a panic mid-section cannot leave the map in a
/// logically inconsistent state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A content-hash cache key. Keys are chained: each stage's output key is a
/// hash of its name, its version and its input key, so the key of any
/// artifact transitively fingerprints the whole upstream computation
/// (seed + trait card + every stage version on the path).
pub type StageKey = u64;

/// One typed pipeline step: a pure function from an input artifact to an
/// output artifact, with a stable identity for caching.
///
/// Implementors are stateless unit structs; identity lives in the inherent
/// `NAME`/`VERSION` consts each one carries (exposed here as methods so the
/// trait stays object-light and generic code can reach them).
pub trait Stage<In, Out> {
    /// Stable stage identifier — the cache namespace and counters key.
    fn name(&self) -> &'static str;

    /// Logic version, mixed into the output key. Bump it when the stage's
    /// computation changes so stale cached artifacts can never be served.
    fn version(&self) -> u32;

    /// The computation. Must be pure: same input artifact, same output.
    fn run(&self, input: &In) -> Out;
}

/// Derives a stage's output key from its identity and its input key.
pub fn derive_key(name: &str, version: u32, in_key: StageKey) -> StageKey {
    let h = fnv1a(FNV_OFFSET, name.as_bytes());
    let h = fnv1a(h, &version.to_le_bytes());
    fnv1a(h, &in_key.to_le_bytes())
}

/// The shard-count formula: the next power of two at or above
/// `4 × parallelism`. Published (and restated independently by the lint
/// `H004` audit) so shard selection can be re-derived outside this module.
pub fn shard_count_for(parallelism: usize) -> usize {
    (4 * parallelism.max(1)).next_power_of_two()
}

/// The shard an entry with the given key lives in, for `shard_count`
/// shards (a power of two): the key masked by `shard_count - 1`.
pub fn shard_of_key(key: StageKey, shard_count: usize) -> usize {
    (key as usize) & (shard_count - 1)
}

/// Per-call record of which stages hit the cache and which recomputed while
/// building one project. Unlike the global counters (which every concurrent
/// build in the process feeds), a trace belongs to exactly one chain walk,
/// so tests can make exact assertions on it.
#[derive(Clone, Debug, Default)]
pub struct StageTrace {
    entries: Vec<TraceEntry>,
}

/// One consulted stage in a [`StageTrace`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// The stage name.
    pub stage: &'static str,
    /// Whether the artifact came from the cache (`true`) or was recomputed.
    pub hit: bool,
}

impl StageTrace {
    pub(crate) fn record(&mut self, stage: &'static str, hit: bool) {
        self.entries.push(TraceEntry { stage, hit });
    }

    /// Every consulted stage, in consultation order (downstream-first: the
    /// chain asks for the last artifact and walks up only on misses).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of cache hits in this walk.
    pub fn hits(&self) -> usize {
        self.entries.iter().filter(|e| e.hit).count()
    }

    /// Number of recomputed stages in this walk.
    pub fn misses(&self) -> usize {
        self.entries.iter().filter(|e| !e.hit).count()
    }

    /// Names of the recomputed stages, in consultation order.
    pub fn missed_stages(&self) -> Vec<&'static str> {
        self.entries
            .iter()
            .filter(|e| !e.hit)
            .map(|e| e.stage)
            .collect()
    }
}

/// A snapshot of one stage's global counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// The stage name.
    pub stage: &'static str,
    /// Artifacts served from the cache.
    pub hits: u64,
    /// Artifacts recomputed (cache misses).
    pub misses: u64,
    /// Recomputations that panicked before producing an artifact: their
    /// key was never published, so the next consumer sees a plain
    /// (retryable) miss instead of a poisoned entry.
    pub quarantined: u64,
    /// Total wall time spent recomputing, in nanoseconds.
    pub busy_ns: u128,
}

/// One stage's wait-free counter block. All orderings are `Relaxed`: the
/// counters are monotone telemetry, never used for synchronization, and a
/// snapshot only promises per-counter atomicity (the same guarantee the old
/// mutex gave between two separately-locked bumps).
#[derive(Default)]
struct StatCell {
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    busy_ns: AtomicU64,
}

/// A fixed stat slot: a once-claimed stage name plus its counter block.
/// Cache-line aligned so two stages' counters never share a line — without
/// this, concurrent workers bumping *different* stages' counters would
/// still ping-pong one line between cores (false sharing).
#[derive(Default)]
#[repr(align(64))]
struct StatSlot {
    name: OnceLock<&'static str>,
    cell: StatCell,
}

/// Fixed number of distinct stage names the stats table can account.
/// The pipeline has 8; the headroom absorbs future stages and test-local
/// names without ever reallocating (a reallocation would need a lock).
const STAT_SLOTS: usize = 32;

/// One lock stripe: its own map and FIFO ring, bounded by the per-shard
/// capacity split. Cache-line aligned so neighboring shards' lock words
/// never share a line.
#[repr(align(64))]
struct Shard {
    inner: Mutex<ShardInner>,
    capacity: usize,
}

struct ShardInner {
    map: HashMap<(&'static str, StageKey), Arc<dyn Any + Send + Sync>>,
    order: VecDeque<(&'static str, StageKey)>,
}

/// The process-wide stage cache: type-erased artifacts keyed by
/// `(stage name, content-hash key)`, lock-striped over power-of-two shards
/// selected by the key, with per-shard FIFO eviction and wait-free
/// per-stage counters.
///
/// Lookups and insertions are short critical sections on one shard; stage
/// computation always happens outside any lock, so two threads racing on
/// the same key at worst duplicate one computation (both results are
/// identical by the purity contract of [`Stage::run`]).
pub(crate) struct PipelineCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the shard of key `k` is `k & mask`.
    mask: usize,
    stats: [StatSlot; STAT_SLOTS],
}

/// Default bound on cached artifacts across all shards; generous for every
/// corpus size the test suite and benches build, and the backstop that
/// keeps 100k-project scale runs memory-bounded (eviction churn during a
/// cold build is harmless: a chain holds its own artifacts in per-walk
/// memo fields, never by re-fetching).
const DEFAULT_CAPACITY: usize = 32_768;

static CACHE: OnceLock<PipelineCache> = OnceLock::new();

/// The process-default shard count: [`shard_count_for`] of the detected
/// available parallelism.
fn default_shard_count() -> usize {
    shard_count_for(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

pub(crate) fn cache() -> &'static PipelineCache {
    CACHE.get_or_init(|| PipelineCache::with_shards(default_shard_count(), DEFAULT_CAPACITY))
}

impl PipelineCache {
    /// Builds a cache with `shard_count` shards (rounded up to a power of
    /// two) splitting `total_capacity` evenly (at least one entry each).
    pub(crate) fn with_shards(shard_count: usize, total_capacity: usize) -> Self {
        let shard_count = shard_count.max(1).next_power_of_two();
        let capacity = (total_capacity / shard_count).max(1);
        let shards: Vec<Shard> = (0..shard_count)
            .map(|_| Shard {
                inner: Mutex::new(ShardInner {
                    map: HashMap::new(),
                    order: VecDeque::new(),
                }),
                capacity,
            })
            .collect();
        PipelineCache {
            mask: shard_count - 1,
            shards: shards.into_boxed_slice(),
            stats: std::array::from_fn(|_| StatSlot::default()),
        }
    }

    /// Number of lock stripes.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index entries with this key belong to.
    pub(crate) fn shard_of(&self, key: StageKey) -> usize {
        (key as usize) & self.mask
    }

    /// The counter block for a stage: a bounded lock-free scan of the fixed
    /// slot table, claiming the first free slot for a new name. Returns
    /// `None` (the record is dropped) only past [`STAT_SLOTS`] distinct
    /// names — impossible for the 8-stage pipeline plus test headroom.
    fn stat_cell(&self, stage: &'static str) -> Option<&StatCell> {
        for slot in &self.stats {
            match slot.name.get() {
                Some(n) if *n == stage => return Some(&slot.cell),
                Some(_) => continue,
                None => {
                    if slot.name.set(stage).is_ok() {
                        return Some(&slot.cell);
                    }
                    // Lost the claim race; the slot now has a name — use it
                    // if it is ours, else keep scanning.
                    if slot.name.get().is_some_and(|n| *n == stage) {
                        return Some(&slot.cell);
                    }
                }
            }
        }
        None
    }

    /// Fetches a typed artifact; records a global hit when found.
    pub(crate) fn get<T: Send + Sync + 'static>(
        &self,
        stage: &'static str,
        key: StageKey,
    ) -> Option<Arc<T>> {
        let shard = &self.shards[self.shard_of(key)];
        let found = {
            let inner = lock(&shard.inner);
            inner
                .map
                .get(&(stage, key))
                .cloned()
                .and_then(|v| v.downcast::<T>().ok())
        };
        if found.is_some() {
            if let Some(cell) = self.stat_cell(stage) {
                cell.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// Fetches a typed artifact **without** touching the hit/miss counters.
    /// For observers (lint audits, tests) that must not perturb the
    /// telemetry the benches and `/health` report.
    pub(crate) fn peek<T: Send + Sync + 'static>(
        &self,
        stage: &'static str,
        key: StageKey,
    ) -> Option<Arc<T>> {
        let inner = lock(&self.shards[self.shard_of(key)].inner);
        inner
            .map
            .get(&(stage, key))
            .cloned()
            .and_then(|v| v.downcast::<T>().ok())
    }

    /// Stores a freshly computed artifact; records a global miss plus the
    /// compute wall time.
    pub(crate) fn insert(
        &self,
        stage: &'static str,
        key: StageKey,
        value: Arc<dyn Any + Send + Sync>,
        busy: Duration,
    ) {
        let shard = &self.shards[self.shard_of(key)];
        {
            let mut inner = lock(&shard.inner);
            if inner.map.insert((stage, key), value).is_none() {
                inner.order.push_back((stage, key));
            }
            while inner.order.len() > shard.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
        if let Some(cell) = self.stat_cell(stage) {
            cell.misses.fetch_add(1, Ordering::Relaxed);
            // Saturating: u64 nanoseconds overflow after ~584 years of
            // busy time; clamp rather than wrap if it ever happens.
            let ns = u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX);
            cell.busy_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Drops every cached artifact in every shard (counters are kept; see
    /// [`PipelineCache::reset_stats`]).
    pub(crate) fn clear(&self) {
        for shard in self.shards.iter() {
            let mut inner = lock(&shard.inner);
            inner.map.clear();
            inner.order.clear();
        }
    }

    /// Number of cached artifacts across all shards and stages.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock(&s.inner).map.len())
            .sum()
    }

    /// Snapshots every cached entry's `(stage, key)` identity, sorted by
    /// stage then key — the read-only view the lint cache auditor walks.
    pub(crate) fn entry_keys(&self) -> Vec<(&'static str, StageKey)> {
        let mut keys: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| lock(&s.inner).map.keys().copied().collect::<Vec<_>>())
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Snapshots every cached entry together with the shard it actually
    /// resides in, sorted by stage then key — the view the lint `H004`
    /// shard-placement audit walks.
    pub(crate) fn shard_entries(&self) -> Vec<(&'static str, StageKey, usize)> {
        let mut entries: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(idx, s)| {
                lock(&s.inner)
                    .map
                    .keys()
                    .map(|&(stage, key)| (stage, key, idx))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_unstable();
        entries
    }

    /// Re-files an artifact under a different `(stage, key)` identity,
    /// returning whether the source entry existed. The entry moves to its
    /// new key's home shard, so the content-hash → shard invariant is kept;
    /// what breaks (deliberately) is the key → content invariant — the
    /// fault-injection hook behind
    /// [`crate::pipeline::corrupt_stage_cache_entry`].
    pub(crate) fn rekey(
        &self,
        from: (&'static str, StageKey),
        to: (&'static str, StageKey),
    ) -> bool {
        let from_shard = self.shard_of(from.1);
        let to_shard = self.shard_of(to.1);
        if from_shard == to_shard {
            let mut inner = lock(&self.shards[from_shard].inner);
            let Some(value) = inner.map.remove(&from) else {
                return false;
            };
            inner.map.insert(to, value);
            for slot in inner.order.iter_mut() {
                if *slot == from {
                    *slot = to;
                }
            }
            return true;
        }
        // Cross-shard: move map entry and FIFO slot, one lock at a time.
        let value = {
            let mut inner = lock(&self.shards[from_shard].inner);
            let Some(value) = inner.map.remove(&from) else {
                return false;
            };
            inner.order.retain(|slot| *slot != from);
            value
        };
        let mut inner = lock(&self.shards[to_shard].inner);
        if inner.map.insert(to, value).is_none() {
            inner.order.push_back(to);
        }
        true
    }

    /// Plants an existing entry in an explicit (possibly wrong) shard,
    /// returning whether the entry existed. Deliberately breaks the
    /// key → shard invariant the `H004` lint audit checks — the
    /// fault-injection hook behind
    /// [`crate::pipeline::misplace_stage_cache_entry`].
    pub(crate) fn misplace(&self, entry: (&'static str, StageKey), shard: usize) -> bool {
        let target = shard & self.mask;
        // The entry may already be stranded in a foreign shard (a prior
        // misplacement, now being repaired), so search every shard —
        // starting from the key's home — rather than trusting the invariant
        // this hook exists to break. One lock at a time: no deadlock.
        let home = self.shard_of(entry.1);
        let value = 'found: {
            for i in 0..self.shards.len() {
                let at = (home + i) & self.mask;
                let mut inner = lock(&self.shards[at].inner);
                if let Some(value) = inner.map.remove(&entry) {
                    if at == target {
                        // Already resident where requested; put it back.
                        inner.map.insert(entry, value);
                        return true;
                    }
                    inner.order.retain(|slot| *slot != entry);
                    break 'found value;
                }
            }
            return false;
        };
        let mut inner = lock(&self.shards[target].inner);
        if inner.map.insert(entry, value).is_none() {
            inner.order.push_back(entry);
        }
        true
    }

    /// Records a quarantined recomputation: the stage panicked mid-run, so
    /// no artifact was published under its key. The cache itself needs no
    /// cleanup (insertion only happens after a successful run, in whichever
    /// shard the key selects); the counter exists so chaos runs and
    /// `/health` can see how often it happened.
    pub(crate) fn record_quarantine(&self, stage: &'static str) {
        if let Some(cell) = self.stat_cell(stage) {
            cell.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Zeroes all per-stage counters (slot registrations are kept — a
    /// zeroed slot snapshots identically to a never-registered one).
    pub(crate) fn reset_stats(&self) {
        for slot in &self.stats {
            slot.cell.hits.store(0, Ordering::Relaxed);
            slot.cell.misses.store(0, Ordering::Relaxed);
            slot.cell.quarantined.store(0, Ordering::Relaxed);
            slot.cell.busy_ns.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshots the counters for the given stages, in the given order
    /// (stages that never ran report zeros).
    pub(crate) fn stats_snapshot(&self, order: &[&'static str]) -> Vec<StageStats> {
        order
            .iter()
            .map(|&stage| {
                let cell = self
                    .stats
                    .iter()
                    .find(|slot| slot.name.get().is_some_and(|n| *n == stage))
                    .map(|slot| &slot.cell);
                StageStats {
                    stage,
                    hits: cell.map_or(0, |c| c.hits.load(Ordering::Relaxed)),
                    misses: cell.map_or(0, |c| c.misses.load(Ordering::Relaxed)),
                    quarantined: cell.map_or(0, |c| c.quarantined.load(Ordering::Relaxed)),
                    busy_ns: cell.map_or(0, |c| u128::from(c.busy_ns.load(Ordering::Relaxed))),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_separate_stages_versions_and_inputs() {
        let k = derive_key("parse", 1, 7);
        assert_ne!(k, derive_key("schema", 1, 7), "stage name must matter");
        assert_ne!(k, derive_key("parse", 2, 7), "stage version must matter");
        assert_ne!(k, derive_key("parse", 1, 8), "input key must matter");
        assert_eq!(k, derive_key("parse", 1, 7), "keys are deterministic");
    }

    #[test]
    fn trace_counts_hits_and_misses() {
        let mut t = StageTrace::default();
        t.record("a", true);
        t.record("b", false);
        t.record("c", false);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
        assert_eq!(t.missed_stages(), ["b", "c"]);
    }

    #[test]
    fn shard_count_formula_is_pow2_of_4x_parallelism() {
        assert_eq!(shard_count_for(1), 4);
        assert_eq!(shard_count_for(2), 8);
        assert_eq!(shard_count_for(3), 16, "rounds 12 up to 16");
        assert_eq!(shard_count_for(8), 32);
        assert_eq!(shard_count_for(0), 4, "parallelism is clamped to 1");
    }

    #[test]
    fn shard_selection_masks_the_key() {
        for count in [1usize, 4, 8, 64] {
            for key in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
                assert_eq!(shard_of_key(key, count), (key as usize) % count);
            }
        }
    }

    #[test]
    fn single_shard_cache_evicts_fifo_past_capacity() {
        let cache = PipelineCache::with_shards(1, 2);
        for key in 0..3u64 {
            cache.insert("s", key, Arc::new(key), Duration::ZERO);
        }
        assert!(cache.get::<u64>("s", 0).is_none(), "oldest entry evicted");
        assert_eq!(cache.get::<u64>("s", 2).as_deref(), Some(&2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_is_per_shard_and_shards_are_isolated() {
        // 4 shards × capacity 2 each. Keys 0,4,8,12 all land in shard 0;
        // keys 1,5 land in shard 1.
        let cache = PipelineCache::with_shards(4, 8);
        assert_eq!(cache.shard_count(), 4);
        for key in [0u64, 4, 8, 12] {
            assert_eq!(cache.shard_of(key), 0);
            cache.insert("s", key, Arc::new(key), Duration::ZERO);
        }
        for key in [1u64, 5] {
            assert_eq!(cache.shard_of(key), 1);
            cache.insert("s", key, Arc::new(key), Duration::ZERO);
        }
        // Shard 0 held 4 entries against capacity 2: its two oldest were
        // evicted, in FIFO order.
        assert!(cache.get::<u64>("s", 0).is_none(), "shard-0 FIFO evicted 0");
        assert!(cache.get::<u64>("s", 4).is_none(), "shard-0 FIFO evicted 4");
        assert_eq!(cache.get::<u64>("s", 8).as_deref(), Some(&8));
        assert_eq!(cache.get::<u64>("s", 12).as_deref(), Some(&12));
        // Shard 1 never reached its capacity: untouched by shard 0's churn.
        assert_eq!(cache.get::<u64>("s", 1).as_deref(), Some(&1));
        assert_eq!(cache.get::<u64>("s", 5).as_deref(), Some(&5));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn capacity_splits_across_shards_with_a_floor_of_one() {
        let tiny = PipelineCache::with_shards(8, 2);
        // 2 / 8 rounds to 0; every shard still holds at least one entry.
        for key in 0..8u64 {
            tiny.insert("s", key, Arc::new(key), Duration::ZERO);
        }
        assert_eq!(tiny.len(), 8, "one entry per shard survives");
        // A 9th entry into shard 0 evicts shard 0's only entry.
        tiny.insert("s", 8, Arc::new(8u64), Duration::ZERO);
        assert!(tiny.get::<u64>("s", 0).is_none());
        assert_eq!(tiny.get::<u64>("s", 8).as_deref(), Some(&8));
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(PipelineCache::with_shards(3, 64).shard_count(), 4);
        assert_eq!(PipelineCache::with_shards(0, 64).shard_count(), 1);
        assert_eq!(PipelineCache::with_shards(16, 64).shard_count(), 16);
    }

    #[test]
    fn shard_entries_report_residency() {
        let cache = PipelineCache::with_shards(4, 64);
        cache.insert("s", 6, Arc::new(6u64), Duration::ZERO);
        assert_eq!(cache.shard_entries(), vec![("s", 6, 2)]);
        // Misplacing moves the entry to a foreign shard; lookups by home
        // shard now miss, and the residency view exposes the violation.
        assert!(cache.misplace(("s", 6), 3));
        assert_eq!(cache.shard_entries(), vec![("s", 6, 3)]);
        assert!(cache.get::<u64>("s", 6).is_none(), "home-shard lookup misses");
    }

    #[test]
    fn atomic_stats_accumulate_and_reset() {
        let cache = PipelineCache::with_shards(4, 64);
        cache.insert("s", 1, Arc::new(1u64), Duration::from_nanos(500));
        cache.insert("s", 2, Arc::new(2u64), Duration::from_nanos(250));
        let _ = cache.get::<u64>("s", 1);
        let _ = cache.get::<u64>("s", 99); // miss: no hit counted
        cache.record_quarantine("s");
        let snap = cache.stats_snapshot(&["s", "never-ran"]);
        assert_eq!(snap[0].hits, 1);
        assert_eq!(snap[0].misses, 2);
        assert_eq!(snap[0].quarantined, 1);
        assert_eq!(snap[0].busy_ns, 750);
        assert_eq!(
            snap[1],
            StageStats {
                stage: "never-ran",
                hits: 0,
                misses: 0,
                quarantined: 0,
                busy_ns: 0
            }
        );
        cache.reset_stats();
        let zeroed = cache.stats_snapshot(&["s"]);
        assert_eq!(zeroed[0].hits, 0);
        assert_eq!(zeroed[0].misses, 0);
        assert_eq!(zeroed[0].quarantined, 0);
        assert_eq!(zeroed[0].busy_ns, 0);
    }

    #[test]
    fn concurrent_mixed_stages_count_exactly() {
        // The fixed-slot registration must survive racing first-touches:
        // 8 threads × 4 stage names, every bump lands in the right cell.
        let cache = std::sync::Arc::new(PipelineCache::with_shards(8, 1024));
        let stages: [&'static str; 4] = ["w", "x", "y", "z"];
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let stage = stages[(i % 4) as usize];
                        cache.insert(stage, t * 1000 + i, Arc::new(i), Duration::ZERO);
                    }
                });
            }
        });
        for stage in stages {
            let snap = cache.stats_snapshot(&[stage]);
            assert_eq!(snap[0].misses, 8 * 25, "{stage}");
        }
    }

    #[test]
    fn cross_shard_rekey_moves_residency() {
        let cache = PipelineCache::with_shards(4, 64);
        cache.insert("s", 0, Arc::new(7u64), Duration::ZERO);
        assert!(cache.rekey(("s", 0), ("s", 3)));
        assert_eq!(cache.get::<u64>("s", 3).as_deref(), Some(&7));
        assert!(cache.get::<u64>("s", 0).is_none());
        assert_eq!(cache.shard_entries(), vec![("s", 3, 3)]);
        assert!(!cache.rekey(("s", 0), ("s", 1)), "source gone");
    }
}
