//! Sequences of schema versions and the diffs between them.

use schemachron_ddl::{parse_schema, Diagnostic, SchemaBuilder};
use schemachron_model::{diff, Schema, SchemaDiff};

use crate::Date;

/// How a version's DDL text relates to the schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestMode {
    /// The text is a full dump; the version's schema is built from scratch.
    Snapshot,
    /// The text is a migration script applied on top of the previous version.
    Migration,
}

/// One version of the schema, with the diff from its predecessor.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaVersion {
    /// When the version was committed.
    pub date: Date,
    /// The reconstructed logical schema at this version.
    pub schema: Schema,
    /// Changes relative to the previous version. For the first version this
    /// is the diff from the empty schema (i.e. everything is "born").
    pub diff: SchemaDiff,
}

/// An ordered sequence of schema versions with their diffs.
///
/// Build one by feeding dated DDL texts via [`SchemaHistory::push`]; versions
/// may arrive out of order, they are sorted by date at construction time via
/// [`SchemaHistory::from_entries`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SchemaHistory {
    versions: Vec<SchemaVersion>,
    diagnostics: Vec<Diagnostic>,
}

impl SchemaHistory {
    /// An empty history.
    pub fn new() -> Self {
        SchemaHistory::default()
    }

    /// Builds a history from already-computed versions and diagnostics.
    ///
    /// This is the assembly entry point for staged pipelines that parse,
    /// build and diff schemas as separate cached steps. The caller
    /// guarantees `versions` is in chronological order and every `diff` is
    /// the delta from its predecessor (from the empty schema for the first
    /// version) — exactly what [`SchemaHistory::push`] would have produced.
    pub fn from_versions(versions: Vec<SchemaVersion>, diagnostics: Vec<Diagnostic>) -> Self {
        SchemaHistory {
            versions,
            diagnostics,
        }
    }

    /// Builds a history from `(date, ddl-text)` entries. Entries are sorted
    /// by date (stable, so same-date entries keep insertion order).
    pub fn from_entries(mode: IngestMode, entries: Vec<(Date, String)>) -> Self {
        let mut sorted = entries;
        sorted.sort_by_key(|(d, _)| *d);
        let mut h = SchemaHistory::new();
        for (date, sql) in sorted {
            h.push(mode, date, &sql);
        }
        h
    }

    /// Appends one version. The caller must push in chronological order
    /// (use [`SchemaHistory::from_entries`] otherwise).
    pub fn push(&mut self, mode: IngestMode, date: Date, sql: &str) {
        let (schema, mut diags) = match mode {
            IngestMode::Snapshot => parse_schema(sql),
            IngestMode::Migration => {
                // Clone the previous schema only on the path that mutates it.
                let prev_schema = self
                    .versions
                    .last()
                    .map(|v| v.schema.clone())
                    .unwrap_or_default();
                let mut b = SchemaBuilder::with_schema(prev_schema);
                b.apply_script(sql);
                b.finish()
            }
        };
        self.diagnostics.append(&mut diags);
        self.push_schema(date, schema);
    }

    /// Appends one version from an already-built logical schema — the
    /// ingestion path for non-SQL schema sources (e.g. implicit schemata
    /// inferred from document stores). The caller must push in
    /// chronological order.
    pub fn push_schema(&mut self, date: Date, schema: Schema) {
        let empty = Schema::default();
        let prev_schema = self.versions.last().map_or(&empty, |v| &v.schema);
        let d = diff(prev_schema, &schema);
        self.versions.push(SchemaVersion {
            date,
            schema,
            diff: d,
        });
    }

    /// The versions in chronological order.
    pub fn versions(&self) -> &[SchemaVersion] {
        &self.versions
    }

    /// All parse diagnostics accumulated during ingestion.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The final schema, if any version exists.
    pub fn last_schema(&self) -> Option<&Schema> {
        self.versions.last().map(|v| &v.schema)
    }

    /// Total attribute-level activity over the whole history (including the
    /// birth version's attribute births).
    pub fn total_activity(&self) -> usize {
        self.versions
            .iter()
            .map(|v| v.diff.attribute_change_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_model::ChangeKind;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::new(y, m, day)
    }

    #[test]
    fn snapshot_history_diffs_between_dumps() {
        let mut h = SchemaHistory::new();
        h.push(
            IngestMode::Snapshot,
            d(2020, 1, 1),
            "CREATE TABLE t (a INT);",
        );
        h.push(
            IngestMode::Snapshot,
            d(2020, 2, 1),
            "CREATE TABLE t (a INT, b INT);",
        );
        assert_eq!(h.versions().len(), 2);
        assert_eq!(
            h.versions()[0]
                .diff
                .count_of(ChangeKind::AttributeBornWithTable),
            1
        );
        assert_eq!(
            h.versions()[1].diff.count_of(ChangeKind::AttributeInjected),
            1
        );
        assert_eq!(h.total_activity(), 2);
    }

    #[test]
    fn migration_history_applies_deltas() {
        let mut h = SchemaHistory::new();
        h.push(
            IngestMode::Migration,
            d(2020, 1, 1),
            "CREATE TABLE t (a INT);",
        );
        h.push(
            IngestMode::Migration,
            d(2020, 3, 1),
            "ALTER TABLE t ADD COLUMN b INT; CREATE TABLE u (x INT);",
        );
        let last = h.last_schema().unwrap();
        assert_eq!(last.table_count(), 2);
        assert_eq!(h.versions()[1].diff.attribute_change_count(), 2);
    }

    #[test]
    fn from_entries_sorts_by_date() {
        let h = SchemaHistory::from_entries(
            IngestMode::Snapshot,
            vec![
                (d(2020, 5, 1), "CREATE TABLE t (a INT, b INT);".into()),
                (d(2020, 1, 1), "CREATE TABLE t (a INT);".into()),
            ],
        );
        assert_eq!(h.versions()[0].date, d(2020, 1, 1));
        assert_eq!(h.versions()[1].diff.attribute_change_count(), 1);
    }

    #[test]
    fn empty_snapshot_version_drops_everything() {
        let mut h = SchemaHistory::new();
        h.push(
            IngestMode::Snapshot,
            d(2020, 1, 1),
            "CREATE TABLE t (a INT);",
        );
        h.push(IngestMode::Snapshot, d(2020, 2, 1), "-- schema gone");
        assert_eq!(
            h.versions()[1]
                .diff
                .count_of(ChangeKind::AttributeDeletedWithTable),
            1
        );
        assert!(h.last_schema().unwrap().is_empty());
    }

    #[test]
    fn diagnostics_accumulate() {
        let mut h = SchemaHistory::new();
        h.push(
            IngestMode::Snapshot,
            d(2020, 1, 1),
            "INSERT INTO x VALUES (1); CREATE TABLE t (a INT);",
        );
        assert_eq!(h.diagnostics().len(), 1);
    }
}
