//! The Mann–Whitney U test (Wilcoxon rank-sum), two-sided, with the normal
//! approximation and tie correction.
//!
//! Used to back the §6.1 claim that Smoking Funnel and Regularly Curated
//! projects carry *significantly* more post-birth activity than the other
//! patterns (the paper argues this "quantitatively discriminates these two
//! groups").

use crate::rank::ranks;
use crate::shapiro::norm_sf;

/// The outcome of a Mann–Whitney U test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Two-sided p-value (normal approximation with tie correction).
    pub p_value: f64,
    /// The common-language effect size `U / (n1·n2)` — the probability that
    /// a random member of sample 1 exceeds a random member of sample 2.
    pub effect_size: f64,
}

/// Errors from [`mann_whitney_u`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MannWhitneyError {
    /// One of the samples is empty.
    EmptySample,
    /// All observations identical across both samples (U degenerate).
    ZeroVariance,
}

impl std::fmt::Display for MannWhitneyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MannWhitneyError::EmptySample => write!(f, "both samples must be non-empty"),
            MannWhitneyError::ZeroVariance => write!(f, "all observations are identical"),
        }
    }
}

impl std::error::Error for MannWhitneyError {}

/// Runs the two-sided Mann–Whitney U test.
///
/// ```
/// use schemachron_stats::mann_whitney_u;
/// let heavy = [189.0, 250.0, 300.0, 210.0, 275.0];
/// let light = [0.0, 2.0, 13.0, 17.0, 22.0, 5.0];
/// let r = mann_whitney_u(&heavy, &light).unwrap();
/// assert!(r.p_value < 0.01);
/// assert!(r.effect_size > 0.99); // heavy stochastically dominates light
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<MannWhitneyResult, MannWhitneyError> {
    let n1 = a.len();
    let n2 = b.len();
    if n1 == 0 || n2 == 0 {
        return Err(MannWhitneyError::EmptySample);
    }
    let mut pooled: Vec<f64> = Vec::with_capacity(n1 + n2);
    pooled.extend_from_slice(a);
    pooled.extend_from_slice(b);
    let first = pooled[0];
    if pooled.iter().all(|&v| v == first) {
        return Err(MannWhitneyError::ZeroVariance);
    }

    let r = ranks(&pooled);
    let r1: f64 = r[..n1].iter().sum();
    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = r1 - n1f * (n1f + 1.0) / 2.0;

    // Tie correction for the variance.
    let n = (n1 + n2) as f64;
    let mut sorted = pooled;
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("no NaNs in Mann-Whitney input"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let mu = n1f * n2f / 2.0;
    let sigma2 = n1f * n2f / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if sigma2 <= 0.0 {
        return Err(MannWhitneyError::ZeroVariance);
    }
    // Continuity-corrected z.
    let z = (u1 - mu - 0.5 * (u1 - mu).signum()) / sigma2.sqrt();
    let p_value = (2.0 * norm_sf(z.abs())).min(1.0);

    Ok(MannWhitneyResult {
        u: u1,
        p_value,
        effect_size: u1 / (n1f * n2f),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_separated_samples_reject() {
        let a = [100.0, 110.0, 120.0, 130.0, 140.0, 150.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.u, 36.0); // every a beats every b
        assert_eq!(r.effect_size, 1.0);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn identical_distributions_accept() {
        let a = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.3, "p = {}", r.p_value);
        assert!((r.effect_size - 0.5).abs() < 0.1);
    }

    #[test]
    fn symmetric_in_samples() {
        let a = [5.0, 9.0, 12.0];
        let b = [1.0, 2.0, 20.0, 30.0];
        let ra = mann_whitney_u(&a, &b).unwrap();
        let rb = mann_whitney_u(&b, &a).unwrap();
        assert!((ra.p_value - rb.p_value).abs() < 1e-9);
        assert!((ra.u + rb.u - (a.len() * b.len()) as f64).abs() < 1e-9);
    }

    #[test]
    fn ties_are_handled() {
        let a = [1.0, 1.0, 2.0, 2.0, 10.0];
        let b = [1.0, 2.0, 2.0, 3.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            mann_whitney_u(&[], &[1.0]),
            Err(MannWhitneyError::EmptySample)
        );
        assert_eq!(
            mann_whitney_u(&[5.0, 5.0], &[5.0, 5.0]),
            Err(MannWhitneyError::ZeroVariance)
        );
    }

    #[test]
    fn known_value_scipy_crosscheck() {
        // scipy.stats.mannwhitneyu([1,2,3,4], [5,6,7,8], alternative='two-sided')
        // → U1 = 0, p ≈ 0.0286 (exact); the normal approximation with
        // continuity correction gives ~0.03.
        let r = mann_whitney_u(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(r.u, 0.0);
        assert!((0.01..0.06).contains(&r.p_value), "p = {}", r.p_value);
    }
}
