//! Regenerates Figure 7 (pattern probability by birth month).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::figure7(&ctx);
    emit(
        "exp_figure7",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
