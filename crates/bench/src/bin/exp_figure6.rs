//! Regenerates Figure 6 (label-space coverage).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::figure6(&ctx);
    emit(
        "exp_figure6",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
