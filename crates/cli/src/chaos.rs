//! `schemachron chaos` — the deterministic fault drill.
//!
//! Installs a seed-keyed [`schemachron_fault::FaultPlan`] and pushes the
//! whole system through its paces: corpus ingestion (self-healing
//! `par_map` + stage quarantine), crash-safe materialization (atomic
//! writes + `MANIFEST` verification + epoch-bumped resume), a fault-free
//! rebuild diffed against the recovered state and the experiment goldens,
//! the guarded serve path (deadlines + circuit breaker), and finally
//! streaming ingestion: a shuffled commit schedule appended through the
//! WAL under injected faults with a mid-stream kill/restart, asserting
//! that the recovered replay, the live feed transitions and a fault-free
//! batch rebuild agree byte-for-byte.
//!
//! Because every injection decision is a pure hash of
//! `(fault seed, site, key, epoch, attempt)` — never of call counts or
//! thread schedule — the whole report is **byte-identical at any `--jobs`
//! level** for a fixed `(corpus seed, fault seed, rate, sites)` tuple.
//! The report deliberately prints no wall-clock times, paths or worker
//! counts.

use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use schemachron_bench::context::ExpContext;
use schemachron_bench::experiments as exp;
use schemachron_corpus::io::write_corpus_dir;
use schemachron_corpus::materialize::materialize;
use schemachron_corpus::pipeline::clear_stage_cache;
use schemachron_corpus::{load_project_dir, verify_project_dir, Corpus, LoadError};
use schemachron_fault as fault;
use schemachron_hash::{fnv1a, FNV_OFFSET};
use schemachron_history::{Date, IngestMode};
use schemachron_stream::{classify_commits, Append, StreamError, StreamStore, FEED_CAPACITY};
use schemachron_serve::http::{Request, Response};
use schemachron_serve::{AppState, GuardConfig};

use crate::{apply_jobs, opt_value, seed_of, CliError, CliResult, EXPERIMENT_IDS};

/// How often a materialization attempt may be resumed before the drill
/// declares non-convergence (mirrors the `par_map` retry bound).
const WRITE_ATTEMPTS: u32 = 3;

/// Entry point for `schemachron chaos`.
pub fn run_chaos(args: &[String], out: &mut dyn Write) -> CliResult {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let seed = seed_of(&argv)?;
    apply_jobs(&argv)?;
    let fault_seed: u64 = parse_or(&argv, "--fault-seed", 7)?;
    let slow_ms: u64 = parse_or(&argv, "--slow-ms", 150)?;
    let rate: f64 = parse_or(&argv, "--rate", 0.05)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::new(format!(
            "invalid --rate value `{rate}` (expected a probability in [0, 1])"
        )));
    }
    let sites = site_args(&argv)?;
    let plan = fault::FaultPlan::new(fault_seed, rate)
        .with_sites(sites.iter().cloned())
        .with_slow(Duration::from_millis(slow_ms));

    let _ = writeln!(out, "schemachron chaos — deterministic fault drill");
    let _ = writeln!(out, "  corpus seed: {seed}");
    let _ = writeln!(out, "  fault seed:  {fault_seed}");
    let _ = writeln!(out, "  rate:        {rate}");
    let _ = writeln!(
        out,
        "  sites:       {}",
        if sites.is_empty() {
            "all".to_owned()
        } else {
            sites.join(", ")
        }
    );

    silence_injected_panics();
    let result = drill(seed, &plan, slow_ms, out);
    // Never leak fault state into the rest of the process (tests, serve).
    fault::clear();
    fault::set_epoch(0);
    result
}

/// Injected worker panics are caught and retried by design; the default
/// panic hook would still spray a backtrace per injection onto stderr.
/// Filter those (and only those) out; genuine panics keep the full hook.
fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !fault::is_injected_payload(msg) {
            prev(info);
        }
    }));
}

/// Parses an optional numeric flag with a default.
fn parse_or<T: std::str::FromStr>(argv: &[&str], name: &str, default: T) -> Result<T, CliError> {
    match opt_value(argv, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::new(format!("invalid {name} value `{v}`"))),
    }
}

/// Collects every `--site` occurrence, validated against the registry.
fn site_args(argv: &[&str]) -> Result<Vec<String>, CliError> {
    let mut sites = Vec::new();
    for (i, a) in argv.iter().enumerate() {
        if *a != "--site" {
            continue;
        }
        let Some(v) = argv.get(i + 1) else {
            return Err(CliError::new("chaos: --site needs a value"));
        };
        if !fault::site::ALL.contains(v) {
            return Err(CliError::new(format!(
                "unknown --site `{v}` (valid: {})",
                fault::site::ALL.join(", ")
            )));
        }
        if !sites.contains(&(*v).to_owned()) {
            sites.push((*v).to_owned());
        }
    }
    Ok(sites)
}

/// The five drill phases. Returns `Err` only on **invariant violations**
/// (corrupt state accepted, recovered state diverging from the fault-free
/// reference, golden mismatches) — injected faults that surface as typed
/// errors or shed requests are the expected, healthy outcome.
fn drill(seed: u64, plan: &fault::FaultPlan, slow_ms: u64, out: &mut dyn Write) -> CliResult {
    let mut violations: Vec<String> = Vec::new();

    // [1/5] ingest under faults: par_map isolates poisoned workers, the
    // stage cache quarantines failed stages, bounded retries re-roll.
    let _ = writeln!(out, "\n[1/5] ingest under faults");
    fault::reset_counters();
    fault::set_epoch(0);
    fault::install(plan.clone());
    clear_stage_cache();
    let cards = schemachron_corpus::cards::all_cards();
    let total_projects = cards.len();
    let jobs = schemachron_corpus::effective_jobs();
    let corpus = match Corpus::try_from_cards(cards, seed, jobs) {
        Ok(c) => {
            let _ = writeln!(
                out,
                "  recovered: built {}/{total_projects} projects through injected faults",
                c.projects().len()
            );
            c
        }
        Err(failures) => {
            let first = failures
                .0
                .first()
                .map_or_else(String::new, std::string::ToString::to_string);
            let _ = writeln!(
                out,
                "  typed failure: {} item(s) failed after bounded retries (first: {first})",
                failures.0.len()
            );
            let _ = writeln!(out, "  rebuilt fault-free for the remaining phases");
            fault::clear();
            clear_stage_cache();
            let c = Corpus::generate(seed);
            fault::install(plan.clone());
            c
        }
    };

    // [2/5] crash-safe materialization: atomic per-project staging, a
    // checksum MANIFEST committed by rename, epoch-bumped resume.
    let _ = writeln!(out, "\n[2/5] crash-safe materialization");
    let stage_root = std::env::temp_dir().join(format!("schemachron-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&stage_root);
    let mut wrote = false;
    for attempt in 1..=WRITE_ATTEMPTS {
        fault::set_epoch(attempt);
        match write_corpus_dir(&corpus, &stage_root) {
            Ok(()) => {
                let _ = writeln!(out, "  attempt {attempt}: complete");
                wrote = true;
                break;
            }
            Err(e) => {
                let _ = writeln!(out, "  attempt {attempt}: {}", sanitize_io(&e));
            }
        }
    }
    if !wrote {
        let _ = writeln!(
            out,
            "  did not converge in {WRITE_ATTEMPTS} attempts; incomplete directories must stay rejected"
        );
    }
    let mut complete = 0usize;
    for p in corpus.projects() {
        let dir = stage_root.join(&p.card.name);
        if !dir.exists() {
            continue;
        }
        match verify_project_dir(&dir) {
            Ok(()) => match load_project_dir(&dir, IngestMode::Migration) {
                Ok(_) => complete += 1,
                Err(e) => violations.push(format!(
                    "{}: verified clean but failed to load: {e}",
                    p.card.name
                )),
            },
            // An interrupted write correctly rejected — the invariant holds.
            Err(LoadError::Corrupt(_)) => {}
            Err(LoadError::Io(e)) => {
                violations.push(format!("{}: verify I/O error: {e}", p.card.name));
            }
        }
    }
    let _ = writeln!(
        out,
        "  complete project directories: {complete}/{total_projects}"
    );
    if wrote && complete != total_projects {
        violations.push(format!(
            "write reported success but only {complete}/{total_projects} directories verify"
        ));
    }
    let mut staged = 0usize;
    if let Ok(entries) = std::fs::read_dir(&stage_root) {
        for entry in entries.filter_map(Result::ok) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".partial") {
                continue;
            }
            staged += 1;
            if load_project_dir(&entry.path(), IngestMode::Migration).is_ok() {
                violations.push(format!("staging directory `{name}` was accepted as a project"));
            }
        }
    }
    let _ = writeln!(out, "  interrupted staging directories: {staged} (all rejected)");
    let _ = std::fs::remove_dir_all(&stage_root);

    // [3/5] the recovered corpus must be indistinguishable from a
    // fault-free build, and the goldens must hold byte-for-byte.
    let _ = writeln!(out, "\n[3/5] fault-free rebuild and goldens");
    fault::clear();
    clear_stage_cache();
    let reference = Corpus::generate(seed);
    let mismatched: Vec<&str> = corpus
        .projects()
        .iter()
        .zip(reference.projects())
        .filter(|(a, b)| {
            a.card.name != b.card.name
                || a.assigned != b.assigned
                || a.metrics != b.metrics
                || a.labels != b.labels
        })
        .map(|(a, _)| a.card.name.as_str())
        .collect();
    if mismatched.is_empty() {
        let _ = writeln!(
            out,
            "  recovered corpus ≡ fault-free corpus ({total_projects}/{total_projects} projects identical)"
        );
    } else {
        let _ = writeln!(
            out,
            "  recovered corpus DIVERGES on {} project(s)",
            mismatched.len()
        );
        violations.push(format!(
            "recovered corpus diverges from the fault-free build: {}",
            mismatched.join(", ")
        ));
    }
    let goldens = Path::new("goldens").join("experiments");
    if goldens.is_dir() {
        let ctx = ExpContext::new(seed);
        let mut identical = 0usize;
        for id in EXPERIMENT_IDS {
            let Some((_text, json)) = exp::run_experiment(id, &ctx) else {
                continue;
            };
            let rendered = format!(
                "{}\n",
                serde_json::to_string_pretty(&json).unwrap_or_default()
            );
            match std::fs::read(goldens.join(format!("{id}.json"))) {
                Ok(bytes) if bytes == rendered.as_bytes() => identical += 1,
                _ => violations.push(format!("experiment golden `{id}` is not byte-identical")),
            }
        }
        let _ = writeln!(
            out,
            "  experiment goldens: {identical}/{} byte-identical",
            EXPERIMENT_IDS.len()
        );
    } else {
        let _ = writeln!(out, "  experiment goldens: not present, skipped");
    }

    // [4/5] serve under faults: per-request deadline, per-route breaker,
    // degraded cached answers. The cooldown is set far past the drill so
    // breaker transitions never race wall time — the report stays
    // deterministic.
    let _ = writeln!(out, "\n[4/5] serve under faults");
    fault::install(plan.clone());
    fault::set_epoch(10);
    let deadline = Duration::from_millis((slow_ms * 2 / 3).max(40));
    let state = Arc::new(AppState::with_guard(
        seed,
        GuardConfig {
            deadline,
            breaker_cooldown: Duration::from_secs(3600),
        },
    ));
    // Warm the corpus/context caches outside the guard so the drill's
    // deadline measures injected stalls, not first-touch builds.
    let _ = state.handle(&get_req(&format!("/corpus/{seed}/projects")));
    let _ = state.handle(&get_req("/experiments/exp_table1"));
    let mut targets: Vec<String> = (0..12)
        .map(|i| format!("/corpus/{seed}/projects?probe={i}"))
        .collect();
    targets.push("/experiments/exp_table1".to_owned());
    targets.push("/experiments/exp_table2".to_owned());
    // Revisit early probes: if the breaker opened, these come back from
    // the degraded cache instead of 503.
    for i in 0..3 {
        targets.push(format!("/corpus/{seed}/projects?probe={i}"));
    }
    for t in &targets {
        let resp = state.handle_guarded(&get_req(t));
        let _ = writeln!(out, "  GET {t} → {}{}", resp.status, outcome_marker(&resp));
    }
    let health = state.handle(&get_req("/health"));
    let parsed: Result<serde_json::Value, _> =
        serde_json::from_str(&String::from_utf8_lossy(&health.body));
    if let Ok(v) = parsed {
        if let Some(breakers) = v
            .get("guard")
            .and_then(|g| g.get("breakers"))
            .and_then(serde_json::Value::as_object)
        {
            for (route, st) in breakers {
                let _ = writeln!(out, "  breaker[{route}]: {}", st.as_str().unwrap_or("?"));
            }
        }
    }

    // [5/5] streaming ingestion under faults: a deterministically shuffled
    // commit schedule appended through the crash-safe WAL with bounded
    // retries, a mid-stream kill/restart, and a duplicate re-send probe;
    // then the recovered replay, the live transition transcript and a
    // fault-free batch rebuild must agree byte-for-byte.
    let _ = writeln!(out, "\n[5/5] streaming ingestion under faults");
    fault::install(plan.clone());
    fault::set_epoch(20);
    stream_phase(seed, &corpus, &mut violations, out);
    fault::clear();

    let _ = writeln!(out, "\nfault summary");
    let counters = fault::counters();
    for (site, n) in &counters {
        let _ = writeln!(out, "  {site}: {n}");
    }
    let _ = writeln!(out, "  total injected: {}", fault::injected_total());
    if violations.is_empty() {
        let _ = writeln!(
            out,
            "verdict: OK — every fault was contained, retried or shed; state stayed consistent"
        );
        Ok(())
    } else {
        for v in &violations {
            let _ = writeln!(out, "violation: {v}");
        }
        Err(CliError::new(format!(
            "chaos: {} invariant violation(s)",
            violations.len()
        )))
    }
}

/// How many corpus projects the streaming phase replays as live commit
/// chains, how many leading commits of each, and the minimum chain length
/// that makes a project worth streaming (flatliners with one commit would
/// leave the shuffle with nothing to interleave).
const STREAM_PROJECTS: usize = 3;
const STREAM_COMMITS: usize = 8;
const STREAM_MIN_COMMITS: usize = 4;

/// Bounded retries per streamed append (mirrors `schemachron watch`).
const STREAM_RETRIES: u32 = 3;

/// The `[5/5]` streaming phase body: shuffled schedule, faulted appends
/// with bounded retries, mid-stream kill/restart, duplicate-re-send probe,
/// then the three-way byte-for-byte agreement check.
fn stream_phase(seed: u64, corpus: &Corpus, violations: &mut Vec<String>, out: &mut dyn Write) {
    // Commit chains from the first materialized projects: the same inputs
    // the batch pipeline classifies, now replayed as a live stream.
    let chains: Vec<(String, Vec<(Date, String)>)> = corpus
        .projects()
        .iter()
        .filter_map(|p| {
            let mat = materialize(&p.card, seed);
            let commits: Vec<(Date, String)> =
                mat.ddl_commits.into_iter().take(STREAM_COMMITS).collect();
            (commits.len() >= STREAM_MIN_COMMITS).then(|| (p.card.name.clone(), commits))
        })
        .take(STREAM_PROJECTS)
        .collect();
    let total: usize = chains.iter().map(|(_, c)| c.len()).sum();
    if total == 0 {
        let _ = writeln!(out, "  no materializable commits; phase skipped");
        return;
    }

    // The shuffled interleaving: per-project order stays sequential (the
    // idempotency contract needs contiguous seqs), the cross-project order
    // is a pure hash of (corpus seed, position) — deterministic at any
    // --jobs and independent of the fault plan.
    let mut order: Vec<usize> = Vec::with_capacity(total);
    {
        let mut remaining: Vec<usize> = chains.iter().map(|(_, c)| c.len()).collect();
        for pos in 0..total {
            let candidates: Vec<usize> =
                (0..chains.len()).filter(|&i| remaining[i] > 0).collect();
            let h = fnv1a(
                fnv1a(FNV_OFFSET, &seed.to_le_bytes()),
                &(pos as u64).to_le_bytes(),
            );
            let pick = candidates[usize::try_from(h % candidates.len() as u64).unwrap_or(0)];
            order.push(pick);
            remaining[pick] -= 1;
        }
    }
    let _ = writeln!(
        out,
        "  schedule: {total} commits across {} projects, shuffled",
        chains.len()
    );

    let stream_root =
        std::env::temp_dir().join(format!("schemachron-chaos-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&stream_root);
    let mut store = match StreamStore::open(&stream_root) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("stream store failed to open: {e}"));
            return;
        }
    };

    let restart_at = total / 2;
    let mut next = vec![0usize; chains.len()];
    let mut transcript = String::new();
    let mut retried = 0u32;
    let mut went_fault_free = false;
    let mut restarted = false;
    for (pos, &pick) in order.iter().enumerate() {
        // Mid-stream kill/restart: drop the store (all derived state) and
        // replay from disk. Any torn tail a fault left behind is truncated;
        // the cursor line resumes where the acknowledged history ends.
        if pos == restart_at && !restarted {
            restarted = true;
            drop(store);
            store = match StreamStore::open(&stream_root) {
                Ok(s) => s,
                Err(e) => {
                    violations.push(format!("mid-stream restart failed to replay: {e}"));
                    return;
                }
            };
            let _ = writeln!(
                out,
                "  mid-stream restart after {pos} commits: replay resumed the cursor line"
            );
            // Idempotency probe across the restart: re-send a commit that
            // is already acknowledged — it must be a no-op, not a rewrite.
            if let Some(done) = (0..chains.len()).find(|&i| next[i] > 0) {
                let (name, commits) = &chains[done];
                let (date, sql) = &commits[0];
                match store.append(name, 1, &date.to_string(), sql) {
                    Ok(Append::Duplicate { .. }) => {
                        let _ = writeln!(
                            out,
                            "  idempotency probe: duplicate re-send of an acked commit was a no-op"
                        );
                    }
                    other => violations.push(format!(
                        "duplicate re-send of {name} seq 1 was not a no-op: {other:?}"
                    )),
                }
            }
        }

        let (name, commits) = &chains[pick];
        let seq = next[pick] as u64 + 1;
        let (date, sql) = &commits[next[pick]];
        let date_str = date.to_string();
        let mut attempt = 0u32;
        let mut result = store.append(name, seq, &date_str, sql);
        while matches!(result, Err(StreamError::Wal(_))) && attempt < STREAM_RETRIES {
            attempt += 1;
            retried += 1;
            result = fault::with_attempt(attempt, || store.append(name, seq, &date_str, sql));
        }
        if matches!(result, Err(StreamError::Wal(_))) && !went_fault_free {
            // Bounded retries exhausted: like phase 1, fall back to a
            // fault-free continuation — the recovery invariants below must
            // hold regardless of where injection stopped.
            went_fault_free = true;
            fault::clear();
            let _ = writeln!(
                out,
                "  typed failure at {name} seq {seq}: bounded retries exhausted; continuing fault-free"
            );
            result = store.append(name, seq, &date_str, sql);
        }
        match result {
            Ok(Append::Appended { seq, before, after, .. }) => {
                let before = before.unwrap_or_else(|| "(new)".to_owned());
                transcript.push_str(&format!("{name} seq={seq}: {before} -> {after}\n"));
                next[pick] += 1;
            }
            Ok(Append::Duplicate { seq, last_seq }) => {
                violations.push(format!(
                    "scheduled append {name} seq {seq} answered duplicate (last {last_seq})"
                ));
                next[pick] += 1;
            }
            Err(e) => {
                violations.push(format!("streaming append {name} seq {seq} failed: {e}"));
                return;
            }
        }
    }
    let _ = writeln!(
        out,
        "  acked: {total}/{total} commits through {retried} bounded retr{}",
        if retried == 1 { "y" } else { "ies" }
    );

    // The live feed since the restart: cursors must be strictly
    // increasing, and every event must restate a transition the acks
    // already reported — same bytes, no drift.
    let batch = store.events_since(0, FEED_CAPACITY);
    let mut prev_cursor = 0u64;
    for e in &batch.events {
        if e.cursor <= prev_cursor {
            violations.push(format!(
                "feed cursor {} does not advance past {prev_cursor}",
                e.cursor
            ));
        }
        prev_cursor = e.cursor;
        let line = format!(
            "{} seq={}: {} -> {}\n",
            e.project,
            e.seq,
            e.before.as_deref().unwrap_or("(new)"),
            e.after
        );
        if !transcript.contains(&line) {
            violations.push(format!(
                "feed event (cursor {}) disagrees with the acked transition: {}",
                e.cursor,
                line.trim_end()
            ));
        }
    }
    let _ = writeln!(
        out,
        "  live feed: {} transition(s) retained, cursors strictly increasing",
        batch.events.len()
    );

    // Recovery: a fresh replay of the WALs must agree with the live state,
    // and the full transition transcript must be re-derivable from the
    // fault-free batch classifier over every prefix — byte-for-byte.
    fault::clear();
    drop(store);
    let recovered = match StreamStore::open(&stream_root) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("post-drill replay failed: {e}"));
            return;
        }
    };
    let mut rebuilt = String::new();
    let mut prefix = vec![0usize; chains.len()];
    let mut prev: Vec<Option<String>> = vec![None; chains.len()];
    for &pick in &order {
        let (name, commits) = &chains[pick];
        prefix[pick] += 1;
        let after = classify_commits(name, &commits[..prefix[pick]]);
        let before = prev[pick].take().unwrap_or_else(|| "(new)".to_owned());
        rebuilt.push_str(&format!(
            "{name} seq={}: {before} -> {after}\n",
            prefix[pick]
        ));
        prev[pick] = Some(after);
    }
    if transcript == rebuilt {
        let _ = writeln!(
            out,
            "  live transitions ≡ fault-free batch rebuild ({total}/{total} identical)"
        );
    } else {
        violations.push(format!(
            "live transitions diverge from the fault-free batch rebuild:\n--- live\n{transcript}--- rebuilt\n{rebuilt}"
        ));
    }
    for (i, (name, commits)) in chains.iter().enumerate() {
        if recovered.last_seq(name) != commits.len() as u64 {
            violations.push(format!(
                "recovered replay of {name} is at seq {}, expected {}",
                recovered.last_seq(name),
                commits.len()
            ));
        }
        if recovered.pattern(name) != recovered.batch_classify(name) {
            violations.push(format!(
                "recovered pattern of {name} disagrees with its batch rebuild"
            ));
        }
        if recovered.pattern(name) != prev[i] {
            violations.push(format!(
                "recovered pattern of {name} disagrees with the live transcript's final state"
            ));
        }
        let _ = writeln!(
            out,
            "  {name}: seq {}, pattern {}",
            recovered.last_seq(name),
            recovered.pattern(name).unwrap_or_else(|| "(none)".to_owned())
        );
    }
    let _ = std::fs::remove_dir_all(&stream_root);
}

/// Keeps the report deterministic: injected I/O errors carry stable,
/// path-free messages and print verbatim; anything else (a real disk
/// problem) prints by kind only, since OS messages embed paths.
fn sanitize_io(e: &std::io::Error) -> String {
    let msg = e.to_string();
    if msg.contains("schemachron-fault:") {
        msg
    } else {
        format!("I/O error ({:?})", e.kind())
    }
}

/// Classifies a guarded response for the report.
fn outcome_marker(resp: &Response) -> &'static str {
    let body = String::from_utf8_lossy(&resp.body);
    if body.contains("\"degraded\": true") {
        " (degraded cache)"
    } else if resp.status == 504 {
        " (deadline)"
    } else if body.contains("circuit open") {
        " (shed)"
    } else {
        ""
    }
}

/// Builds a GET [`Request`] the way the HTTP parser would.
fn get_req(target: &str) -> Request {
    Request::get(target)
}
