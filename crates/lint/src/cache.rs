//! The cache-coherence auditor: recomputes stage-cache fingerprints from
//! first principles and reports artifacts whose chained FNV-1a key
//! disagrees.
//!
//! The pipeline's content-hash discipline (see `corpus::pipeline`) is only
//! trustworthy if the keys actually *are* content hashes. This pass
//! re-derives every project's 8-stage key chain independently — straight
//! from the [`schemachron_hash`] primitives and the stages' published
//! `NAME`/`VERSION` constants, without calling the pipeline's own
//! `derive_key` — then audits the live cache against the expected key set.

use std::collections::{BTreeMap, BTreeSet};

use schemachron_corpus::pipeline::{
    self, card_fingerprint, chain_keys, StageKey, STAGE_ORDER,
};
use schemachron_corpus::Card;
use schemachron_hash::{fnv1a, FNV_OFFSET};

use crate::diag::{Diagnostic, Report};

/// The stage versions in [`STAGE_ORDER`] order, restated here so the audit
/// does not share code with the audited implementation.
const STAGE_VERSIONS: [u32; 8] = [1, 1, 1, 1, 1, 1, 1, 1];

/// The corpus ingestion dialect's canonical name, restated from
/// `schemachron_dialect::ingest_dialect()` (a registry test pins the two).
const INGEST_DIALECT: &str = "mysql";

/// The planner logic version, restated from
/// [`schemachron_dialect::PLAN_LOGIC_VERSION`].
const INGEST_PLAN_LOGIC_VERSION: u32 = 1;

/// Independent restatement of the parse stage's salt: the ingestion
/// dialect's name and the planner logic version folded into the upstream
/// key before the chain link is derived.
fn rederive_parse_salt(in_key: StageKey) -> StageKey {
    let h = fnv1a(FNV_OFFSET, INGEST_DIALECT.as_bytes());
    let h = fnv1a(h, &u64::from(INGEST_PLAN_LOGIC_VERSION).to_le_bytes());
    fnv1a(h, &in_key.to_le_bytes())
}

/// The as-of checkpoint cache namespace, restated (the engine publishes it
/// as [`schemachron_asof::CHECKPOINT_STAGE`]; a registry test pins the two
/// together so drift is caught, not silently tolerated).
const ASOF_STAGE: &str = "asof-checkpoint";

/// The as-of checkpoint artifact version, restated from
/// [`schemachron_asof::CHECKPOINT_VERSION`].
const ASOF_VERSION: u32 = 1;

/// Independent restatement of the as-of checkpoint key derivation:
/// `derive(name, version, fnv1a(fnv1a(offset, K_le), history_key_le))`.
fn rederive_asof_key(history_key: StageKey, k_months: usize) -> StageKey {
    let salted = fnv1a(FNV_OFFSET, &(k_months as u64).to_le_bytes());
    let salted = fnv1a(salted, &history_key.to_le_bytes());
    rederive(ASOF_STAGE, ASOF_VERSION, salted)
}

/// The safety-analysis cache namespace, restated (the engine publishes it
/// as [`schemachron_safety::SAFETY_STAGE`]; a registry test pins the two
/// together so drift is caught, not silently tolerated).
const SAFETY_STAGE: &str = "safety";

/// The safety logic version, restated from
/// [`schemachron_safety::SAFETY_LOGIC_VERSION`].
const SAFETY_VERSION: u32 = 1;

/// Independent restatement of the safety artifact key derivation: a plain
/// chain link from the history key, `derive(name, version, history_key)` —
/// no extra salt, unlike the K-salted as-of chain.
fn rederive_safety_key(history_key: StageKey) -> StageKey {
    rederive(SAFETY_STAGE, SAFETY_VERSION, history_key)
}

/// The streaming classification cache namespace, restated (the engine
/// publishes it as [`schemachron_stream::STREAM_STAGE`]; a registry test
/// pins the two together so drift is caught, not silently tolerated).
const STREAM_STAGE: &str = "stream-classify";

/// The streamed classification logic version, restated from
/// [`schemachron_stream::STREAM_LOGIC_VERSION`].
const STREAM_VERSION: u32 = 1;

/// Independent restatement of the streamed classification key derivation:
/// `derive(name, version, fnv1a(fnv1a(offset, count_le), chain_crc_le))` —
/// the WAL chain checksum salted with the commit count, then the standard
/// chain link.
fn rederive_stream_key(chain_crc: StageKey, commit_count: u64) -> StageKey {
    let salted = fnv1a(FNV_OFFSET, &commit_count.to_le_bytes());
    let salted = fnv1a(salted, &chain_crc.to_le_bytes());
    rederive(STREAM_STAGE, STREAM_VERSION, salted)
}

/// Independent restatement of the cache's shard-count formula: the next
/// power of two at or above 4 × available parallelism. Deliberately does
/// not call `pipeline::shard_count_for` — drift between the two is exactly
/// what H004 exists to flag.
fn rederive_shard_count() -> usize {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (4 * parallelism.max(1)).next_power_of_two()
}

/// Independent re-derivation of one chain link:
/// `fnv1a(fnv1a(fnv1a(offset, name), version_le), in_key_le)`.
fn rederive(name: &str, version: u32, in_key: StageKey) -> StageKey {
    let h = fnv1a(FNV_OFFSET, name.as_bytes());
    let h = fnv1a(h, &version.to_le_bytes());
    fnv1a(h, &in_key.to_le_bytes())
}

/// Independent re-derivation of a card's full key chain.
fn rederive_chain(card: &Card, seed: u64) -> [StageKey; 8] {
    let mut key = card_fingerprint(card, seed);
    let mut keys = [0; 8];
    for (i, (name, version)) in STAGE_ORDER.iter().zip(STAGE_VERSIONS).enumerate() {
        // The parse link (index 1) salts its upstream key with the
        // ingestion dialect + planner logic version before chaining.
        if i == 1 {
            key = rederive_parse_salt(key);
        }
        key = rederive(name, version, key);
        keys[i] = key;
    }
    keys
}

/// Audits the process-wide stage cache against the given card set.
///
/// * **H003** — the pipeline's own [`chain_keys`] disagrees with this
///   module's independent re-derivation for some card: the key-derivation
///   scheme itself has drifted.
/// * **H002** — a cached artifact lives under a stage namespace that is not
///   in [`STAGE_ORDER`].
/// * **H001** — a cached artifact's key is not derivable from any card in
///   the set under the given seed: either the entry was corrupted/re-keyed,
///   or it belongs to an input outside the audited card set.
/// * **H004** — the shard layout drifted: the live shard count disagrees
///   with this module's restated formula (`next_pow2(4 × parallelism)`),
///   the count is not a power of two, or an entry resides outside the
///   shard its key selects (`key & (count - 1)`). A misplaced entry is
///   invisible to lookups, so it silently degrades the cache to a miss.
/// * **H005** — an as-of checkpoint artifact (the time-travel engine's
///   namespace) carries a key that disagrees with this module's restated
///   derivation from the history key and checkpoint spacing the payload
///   itself records, or the payload is not an as-of index at all. Unlike
///   H001 this audit is seed-free: the artifact restates its own inputs,
///   so its key is checkable without knowing which corpus built it.
/// * **H006** — a safety-analysis artifact carries a key that disagrees
///   with this module's restated derivation (`derive("safety", version,
///   history_key)` from the history key the payload records), or the
///   payload is not a safety analysis at all. Seed-free like H005.
/// * **H008** — a streamed classification artifact (the live-ingestion
///   engine's namespace) carries a key that disagrees with this module's
///   restated derivation from the WAL chain checksum and commit count the
///   payload itself records, or the payload is not a streamed
///   classification at all. Seed-free like H005/H006: the WAL chain
///   checksum is already a content hash of the full commit prefix.
pub fn audit_stage_cache(cards: &[Card], seed: u64, report: &mut Report) {
    const PROJECT: &str = "(stage-cache)";

    // Expected key set per stage, plus the owning project for messages.
    let mut expected: BTreeMap<&'static str, BTreeMap<StageKey, &str>> = BTreeMap::new();
    for card in cards {
        let ours = rederive_chain(card, seed);
        let theirs = chain_keys(card, seed);
        if ours != theirs {
            report.push(Diagnostic::new(
                "H003",
                &card.name,
                format!(
                    "pipeline chain keys disagree with the independent FNV-1a re-derivation \
                     (pipeline {theirs:016x?}, re-derived {ours:016x?})"
                ),
            ));
        }
        // Audit the cache against the pipeline's own notion of the chain:
        // H001 must flag corrupted *entries*, not re-report a drifted
        // derivation scheme (that is H003's job).
        for (stage, key) in STAGE_ORDER.iter().zip(theirs) {
            expected.entry(stage).or_default().insert(key, &card.name);
        }
    }

    let known: BTreeSet<&str> = STAGE_ORDER.iter().copied().collect();
    for (stage, key) in pipeline::stage_cache_entries() {
        if stage == ASOF_STAGE {
            audit_asof_entry(key, report);
            continue;
        }
        if stage == SAFETY_STAGE {
            audit_safety_entry(key, report);
            continue;
        }
        if stage == STREAM_STAGE {
            audit_stream_entry(key, report);
            continue;
        }
        if !known.contains(stage) {
            report.push(Diagnostic::new(
                "H002",
                PROJECT,
                format!("cached artifact {key:016x} lives under unknown stage namespace `{stage}`"),
            ));
            continue;
        }
        let derivable = expected
            .get(stage)
            .is_some_and(|keys| keys.contains_key(&key));
        if !derivable {
            report.push(Diagnostic::new(
                "H001",
                PROJECT,
                format!(
                    "cached `{stage}` artifact {key:016x} is not derivable from any card \
                     in the audited set (seed {seed})"
                ),
            ));
        }
    }

    // H004: shard-layout audit. The shard count must match the restated
    // formula, and every resident entry must live in the shard its key
    // selects — the same FNV-1a key the H001 pass just validated, masked by
    // the restated count. Anything else means lookups can no longer find
    // the entry, which silently turns the cache into a miss machine.
    let live = pipeline::stage_cache_shard_count();
    let restated = rederive_shard_count();
    if live != restated || !live.is_power_of_two() {
        report.push(Diagnostic::new(
            "H004",
            PROJECT,
            format!(
                "stage-cache shard count {live} disagrees with the restated formula \
                 next_pow2(4 × parallelism) = {restated}"
            ),
        ));
    }
    let mask = live.max(1) - 1;
    for (stage, key, shard) in pipeline::stage_cache_shard_entries() {
        let selected = (key as usize) & mask;
        if shard != selected {
            report.push(Diagnostic::new(
                "H004",
                PROJECT,
                format!(
                    "cached `{stage}` artifact {key:016x} resides in shard {shard} but its \
                     key selects shard {selected} (count {live})"
                ),
            ));
        }
    }
}

/// H005: audits one artifact in the as-of checkpoint namespace against the
/// restated key derivation (see [`rederive_asof_key`]).
fn audit_asof_entry(key: StageKey, report: &mut Report) {
    const PROJECT: &str = "(stage-cache)";
    let Some(artifact) =
        pipeline::peek_stage_artifact::<schemachron_asof::AsOfArtifact>(ASOF_STAGE, key)
    else {
        report.push(Diagnostic::new(
            "H005",
            PROJECT,
            format!(
                "cached `{ASOF_STAGE}` artifact {key:016x} is not an as-of index payload"
            ),
        ));
        return;
    };
    let restated = rederive_asof_key(artifact.history_key, artifact.k_months);
    if restated != key {
        report.push(Diagnostic::new(
            "H005",
            PROJECT,
            format!(
                "cached `{ASOF_STAGE}` artifact {key:016x} disagrees with the restated \
                 derivation {restated:016x} for history key {:016x} at K={} \
                 (project `{}`)",
                artifact.history_key,
                artifact.k_months,
                artifact.index.project(),
            ),
        ));
    }
}

/// H006: audits one artifact in the safety namespace against the restated
/// key derivation (see [`rederive_safety_key`]).
fn audit_safety_entry(key: StageKey, report: &mut Report) {
    const PROJECT: &str = "(stage-cache)";
    let Some(artifact) =
        pipeline::peek_stage_artifact::<schemachron_safety::SafetyArtifact>(SAFETY_STAGE, key)
    else {
        report.push(Diagnostic::new(
            "H006",
            PROJECT,
            format!("cached `{SAFETY_STAGE}` artifact {key:016x} is not a safety analysis payload"),
        ));
        return;
    };
    let restated = rederive_safety_key(artifact.history_key);
    if restated != key {
        report.push(Diagnostic::new(
            "H006",
            PROJECT,
            format!(
                "cached `{SAFETY_STAGE}` artifact {key:016x} disagrees with the restated \
                 derivation {restated:016x} for history key {:016x} (project `{}`)",
                artifact.history_key, artifact.analysis.project,
            ),
        ));
    }
}

/// H008: audits one artifact in the streamed classification namespace
/// against the restated key derivation (see [`rederive_stream_key`]).
fn audit_stream_entry(key: StageKey, report: &mut Report) {
    const PROJECT: &str = "(stage-cache)";
    let Some(artifact) =
        pipeline::peek_stage_artifact::<schemachron_stream::StreamArtifact>(STREAM_STAGE, key)
    else {
        report.push(Diagnostic::new(
            "H008",
            PROJECT,
            format!(
                "cached `{STREAM_STAGE}` artifact {key:016x} is not a streamed \
                 classification payload"
            ),
        ));
        return;
    };
    let restated = rederive_stream_key(artifact.chain_crc, artifact.commit_count);
    if restated != key {
        report.push(Diagnostic::new(
            "H008",
            PROJECT,
            format!(
                "cached `{STREAM_STAGE}` artifact {key:016x} disagrees with the restated \
                 derivation {restated:016x} for chain checksum {:016x} over {} commit(s) \
                 (pattern `{}`)",
                artifact.chain_crc, artifact.commit_count, artifact.pattern,
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_corpus::cards::all_cards;
    use schemachron_corpus::pipeline::{build_project, corrupt_stage_cache_entry};

    /// The stage cache is process-wide and these tests assert *cache-global*
    /// facts, so each one takes this lock and starts from an empty cache.
    static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn rederivation_matches_pipeline() {
        for card in all_cards().iter().take(5) {
            assert_eq!(rederive_chain(card, 42), chain_keys(card, 42));
        }
    }

    #[test]
    fn pristine_cache_audits_clean_and_corruption_is_caught() {
        // One test, sequenced: the stage cache is process-wide, so a clean
        // audit must be asserted *before* this test corrupts it.
        let _lock = CACHE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pipeline::clear_stage_cache();
        let cards: Vec<Card> = all_cards().into_iter().take(3).collect();
        let seed = 4242; // private to this test: no cross-test interference
        for card in &cards {
            let _ = build_project(card, seed);
        }

        let mut clean = Report::new();
        audit_stage_cache(&cards, seed, &mut clean);
        assert!(clean.diagnostics().is_empty(), "{}", clean.render_human());

        // Corrupt one entry's key: H001.
        let victim = chain_keys(&cards[0], seed);
        let stage = STAGE_ORDER[2];
        assert!(corrupt_stage_cache_entry(
            (stage, victim[2]),
            (stage, victim[2] ^ 0xdead_beef)
        ));
        let mut tampered = Report::new();
        audit_stage_cache(&cards, seed, &mut tampered);
        assert_eq!(codes(&tampered), ["H001"]);
        assert!(tampered.render_human().contains("not derivable"));

        // Re-file the same entry under a bogus stage namespace: H002.
        assert!(corrupt_stage_cache_entry(
            (stage, victim[2] ^ 0xdead_beef),
            ("bogus-stage", victim[2])
        ));
        let mut bogus = Report::new();
        audit_stage_cache(&cards, seed, &mut bogus);
        assert_eq!(codes(&bogus), ["H002"]);

        // Restore so other tests sharing the process cache are unaffected.
        assert!(corrupt_stage_cache_entry(
            ("bogus-stage", victim[2]),
            (stage, victim[2])
        ));

        // Strand the entry in the wrong shard (key untouched, so H001 stays
        // quiet): H004.
        let count = pipeline::stage_cache_shard_count();
        let home = pipeline::shard_of_key(victim[2], count);
        let wrong = (home + 1) % count;
        assert!(pipeline::misplace_stage_cache_entry((stage, victim[2]), wrong));
        let mut misplaced = Report::new();
        audit_stage_cache(&cards, seed, &mut misplaced);
        assert_eq!(codes(&misplaced), ["H004"]);
        assert!(misplaced.render_human().contains(&format!("shard {wrong}")));

        // Restore residency and confirm the audit is clean again.
        assert!(pipeline::misplace_stage_cache_entry((stage, victim[2]), home));
        let mut restored = Report::new();
        audit_stage_cache(&cards, seed, &mut restored);
        assert!(restored.diagnostics().is_empty(), "{}", restored.render_human());
    }

    #[test]
    fn restated_shard_formula_matches_pipeline() {
        assert_eq!(rederive_shard_count(), pipeline::stage_cache_shard_count());
    }

    #[test]
    fn restated_ingest_dialect_constants_match_the_planner() {
        assert_eq!(INGEST_DIALECT, schemachron_dialect::ingest_dialect().name());
        assert_eq!(
            INGEST_PLAN_LOGIC_VERSION,
            schemachron_dialect::PLAN_LOGIC_VERSION
        );
        // And the full salt fold, on an arbitrary input key.
        assert_eq!(
            rederive_parse_salt(0x1234_5678_9abc_def0),
            schemachron_corpus::pipeline::parse_salt(0x1234_5678_9abc_def0)
        );
    }

    #[test]
    fn restated_asof_constants_match_the_engine() {
        assert_eq!(ASOF_STAGE, schemachron_asof::CHECKPOINT_STAGE);
        assert_eq!(ASOF_VERSION, schemachron_asof::CHECKPOINT_VERSION);
        // And the full key derivation, on an arbitrary input pair.
        assert_eq!(
            rederive_asof_key(0x1234_5678_9abc_def0, 12),
            schemachron_asof::checkpoint_key(0x1234_5678_9abc_def0, 12)
        );
    }

    #[test]
    fn restated_safety_constants_match_the_engine() {
        assert_eq!(SAFETY_STAGE, schemachron_safety::SAFETY_STAGE);
        assert_eq!(SAFETY_VERSION, schemachron_safety::SAFETY_LOGIC_VERSION);
        // And the full key derivation, on an arbitrary input key.
        assert_eq!(
            rederive_safety_key(0x1234_5678_9abc_def0),
            schemachron_safety::safety_key(0x1234_5678_9abc_def0)
        );
    }

    #[test]
    fn restated_stream_constants_match_the_engine() {
        assert_eq!(STREAM_STAGE, schemachron_stream::STREAM_STAGE);
        assert_eq!(STREAM_VERSION, schemachron_stream::STREAM_LOGIC_VERSION);
        // And the full key derivation, on an arbitrary input pair.
        assert_eq!(
            rederive_stream_key(0x1234_5678_9abc_def0, 17),
            schemachron_stream::stream_key(0x1234_5678_9abc_def0, 17)
        );
    }

    #[test]
    fn stream_entries_audit_clean_and_rekeying_is_caught() {
        // Sequenced like the safety/as-of tests: the cache is process-wide,
        // so the clean audit comes before the corruption.
        let _lock = CACHE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pipeline::clear_stage_cache();
        let cards: Vec<Card> = all_cards().into_iter().take(1).collect();
        let seed = 72_424; // private to this test: no cross-test interference
        let commits = vec![
            (
                "2021-03-10".parse().unwrap(),
                "CREATE TABLE t (a INT);".to_owned(),
            ),
            (
                "2021-04-10".parse().unwrap(),
                "ALTER TABLE t ADD COLUMN b INT;".to_owned(),
            ),
        ];
        let crc = 0x57_24_24_01; // private chain checksum: no cross-test races
        let built = schemachron_stream::classification_for("lint-stream-test", &commits, crc);
        let key = schemachron_stream::stream_key(built.chain_crc, built.commit_count);

        let mut clean = Report::new();
        audit_stage_cache(&cards, seed, &mut clean);
        assert!(clean.diagnostics().is_empty(), "{}", clean.render_human());

        // Re-key the artifact: its payload restates the real chain checksum
        // and commit count, so the restated derivation no longer lands on
        // the cached key — H008.
        let stage = schemachron_stream::STREAM_STAGE;
        assert!(corrupt_stage_cache_entry(
            (stage, key),
            (stage, key ^ 0x0bad_5eed)
        ));
        let mut rekeyed = Report::new();
        audit_stage_cache(&cards, seed, &mut rekeyed);
        assert_eq!(codes(&rekeyed), ["H008"]);
        assert!(
            rekeyed.render_human().contains("restated"),
            "{}",
            rekeyed.render_human()
        );

        // Restore so other tests sharing the process cache are unaffected.
        assert!(corrupt_stage_cache_entry(
            (stage, key ^ 0x0bad_5eed),
            (stage, key)
        ));
        let mut restored = Report::new();
        audit_stage_cache(&cards, seed, &mut restored);
        assert!(
            restored.diagnostics().is_empty(),
            "{}",
            restored.render_human()
        );
    }

    #[test]
    fn safety_entries_audit_clean_and_rekeying_is_caught() {
        // Sequenced like the as-of test below: the cache is process-wide,
        // so the clean audit comes before the corruption.
        let _lock = CACHE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pipeline::clear_stage_cache();
        let cards: Vec<Card> = all_cards().into_iter().take(1).collect();
        let seed = 62_424; // private to this test: no cross-test interference
        let built = schemachron_safety::safety_for(&cards[0], seed);
        let key = schemachron_safety::safety_key(built.history_key);

        let mut clean = Report::new();
        audit_stage_cache(&cards, seed, &mut clean);
        assert!(clean.diagnostics().is_empty(), "{}", clean.render_human());

        // Re-key the artifact: its payload restates the real history key,
        // so the restated derivation no longer lands on the cached key —
        // H006.
        let stage = schemachron_safety::SAFETY_STAGE;
        assert!(corrupt_stage_cache_entry(
            (stage, key),
            (stage, key ^ 0x0bad_f00d)
        ));
        let mut rekeyed = Report::new();
        audit_stage_cache(&cards, seed, &mut rekeyed);
        assert_eq!(codes(&rekeyed), ["H006"]);
        assert!(
            rekeyed.render_human().contains("restated"),
            "{}",
            rekeyed.render_human()
        );

        // Restore so other tests sharing the process cache are unaffected.
        assert!(corrupt_stage_cache_entry(
            (stage, key ^ 0x0bad_f00d),
            (stage, key)
        ));
        let mut restored = Report::new();
        audit_stage_cache(&cards, seed, &mut restored);
        assert!(
            restored.diagnostics().is_empty(),
            "{}",
            restored.render_human()
        );
    }

    #[test]
    fn asof_entries_audit_clean_and_rekeying_is_caught() {
        // Sequenced like the stage-cache test above: the cache is
        // process-wide, so the clean audit comes before the corruption.
        let _lock = CACHE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pipeline::clear_stage_cache();
        let cards: Vec<Card> = all_cards().into_iter().take(1).collect();
        let seed = 52_424; // private to this test: no cross-test interference
        let corpus = schemachron_corpus::Corpus::from_cards(cards.clone(), seed, 1);
        let built = schemachron_asof::index_for(&corpus.projects()[0], seed, 12)
            .expect("corpus projects retain schema versions");
        let key = schemachron_asof::checkpoint_key(built.history_key, built.k_months);

        let mut clean = Report::new();
        audit_stage_cache(&cards, seed, &mut clean);
        assert!(clean.diagnostics().is_empty(), "{}", clean.render_human());

        // Re-key the artifact: its payload restates the real inputs, so the
        // restated derivation no longer lands on the cached key — H005.
        let stage = schemachron_asof::CHECKPOINT_STAGE;
        assert!(corrupt_stage_cache_entry(
            (stage, key),
            (stage, key ^ 0x0bad_cafe)
        ));
        let mut rekeyed = Report::new();
        audit_stage_cache(&cards, seed, &mut rekeyed);
        assert_eq!(codes(&rekeyed), ["H005"]);
        assert!(
            rekeyed.render_human().contains("restated"),
            "{}",
            rekeyed.render_human()
        );

        // Restore so other tests sharing the process cache are unaffected.
        assert!(corrupt_stage_cache_entry(
            (stage, key ^ 0x0bad_cafe),
            (stage, key)
        ));
        let mut restored = Report::new();
        audit_stage_cache(&cards, seed, &mut restored);
        assert!(
            restored.diagnostics().is_empty(),
            "{}",
            restored.render_human()
        );
    }
}
