#![forbid(unsafe_code)]

//! In-tree stand-in for `serde_json`.
//!
//! Implements the subset this workspace uses, over the vendored `serde`
//! stand-in: the dynamic [`Value`] tree, a strict JSON parser
//! ([`from_str`]), compact and pretty printers ([`to_string`],
//! [`to_string_pretty`]), [`to_value`] for any [`serde::Serialize`] type,
//! the insertion-ordered [`Map`], and a [`json!`] macro for literals.
//!
//! ```
//! let v = serde_json::from_str(r#"{"a": [1, 2.5, null, "x"]}"#).unwrap();
//! assert_eq!(serde_json::to_string(&v).unwrap(), r#"{"a":[1,2.5,null,"x"]}"#);
//! ```

use std::fmt;

pub mod map;
mod parse;

pub use map::Map;

/// A JSON number: integer or float, mirroring `serde_json::Number`.
#[derive(Clone, Debug, PartialEq)]
pub struct Number(pub(crate) N);

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::I(v) => v as f64,
            N::U(v) => v as f64,
            N::F(v) => v,
        })
    }

    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I(v) => u64::try_from(v).ok(),
            N::U(v) => Some(v),
            N::F(_) => None,
        }
    }

    /// Builds a float number; `None` for NaN/infinity (not valid JSON).
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number(N::F(f)))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Number {
        Number(N::I(v))
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Number {
        Number(N::U(v))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::I(v) => write!(f, "{v}"),
            N::U(v) => write!(f, "{v}"),
            N::F(v) => {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: floats keep a decimal point.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A dynamically-typed JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member access: `v["key"]` / `v[0]`-style lookup returning `Null`
    /// for misses, like `serde_json::Value::get` composed over both shapes.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

/// A JSON error (parse or serialization).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    parse::parse(s)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Result<Value, Error> {
    Ok(content_to_value(v.to_content()))
}

fn content_to_value(c: serde::Content) -> Value {
    use serde::Content as C;
    match c {
        C::Null => Value::Null,
        C::Bool(b) => Value::Bool(b),
        C::I64(v) => Value::Number(Number(N::I(v))),
        C::U64(v) => Value::Number(Number(N::U(v))),
        C::F64(v) => match Number::from_f64(v) {
            Some(n) => Value::Number(n),
            // serde_json rejects non-finite floats; artifacts prefer null.
            None => Value::Null,
        },
        C::Str(s) => Value::String(s),
        C::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        C::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

/// Serializes compactly.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    Ok(to_value(v)?.to_string())
}

/// Serializes with two-space indentation (serde_json's pretty layout).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let value = to_value(v)?;
    let mut out = String::new();
    write_pretty(&value, 0, &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_compact(v: &Value, f: &mut impl fmt::Write) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => write!(f, "{n}"),
        Value::String(s) => write_escaped(s, f),
        Value::Array(items) => {
            f.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                write_compact(item, f)?;
            }
            f.write_char(']')
        }
        Value::Object(map) => {
            f.write_char('{')?;
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                write_escaped(k, f)?;
                f.write_char(':')?;
                write_compact(item, f)?;
            }
            f.write_char('}')
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if map.len() > 0 => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&STEP.repeat(indent + 1));
                let _ = write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => {
            let _ = write_compact(other, out);
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:expr),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { $variant(v) }
        }
    )*};
}

value_from!(bool => Value::Bool, String => Value::String);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number(N::I(v as i64))) }
        }
    )*};
}
macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number(N::U(v as u64))) }
        }
    )*};
}

value_from_int!(i8, i16, i32, i64, isize);
value_from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map(Value::Number).unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(f64::from(v))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access mirroring `serde_json`: objects yield the member (or
    /// `Null` when the key is absent); every other variant yields `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access mirroring `serde_json`: arrays yield the element (or
    /// `Null` out of bounds); every other variant yields `Null`.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl serde::Serialize for Value {
    fn to_content(&self) -> serde::Content {
        use serde::Content as C;
        match self {
            Value::Null => C::Null,
            Value::Bool(b) => C::Bool(*b),
            Value::Number(Number(N::I(v))) => C::I64(*v),
            Value::Number(Number(N::U(v))) => C::U64(*v),
            Value::Number(Number(N::F(v))) => C::F64(*v),
            Value::String(s) => C::Str(s.clone()),
            Value::Array(items) => {
                C::Seq(items.iter().map(serde::Serialize::to_content).collect())
            }
            Value::Object(map) => C::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), serde::Serialize::to_content(v)))
                    .collect(),
            ),
        }
    }
}

/// Builds a [`Value`] from a Rust expression (`json!(42)`, `json!("x")`),
/// an array literal, or an object literal with string keys.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"a":[1,2.5,null,"x\n"],"b":{"c":true},"d":-7}"#;
        let v = from_str(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn pretty_printer_layout() {
        let v = from_str(r#"{"a":[1],"b":{}}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}"
        );
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3), Value::Number(Number(N::I(3))));
        assert_eq!(json!([1, 2]).as_array().unwrap().len(), 2);
        let obj = json!({"k": 1, "s": "v"});
        assert_eq!(obj.get("k").and_then(Value::as_i64), Some(1));
        assert_eq!(obj.get("s").and_then(Value::as_str), Some("v"));
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        assert_eq!(json!(1.0).to_string(), "1.0");
        assert_eq!(json!(0.5).to_string(), "0.5");
        assert_eq!(json!(f64::NAN), Value::Null);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{invalid}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn to_value_runs_through_serde() {
        let v = to_value(&vec![("k".to_owned(), 2usize)]).unwrap();
        assert_eq!(v.to_string(), r#"[["k",2]]"#);
    }

    #[test]
    fn number_accessors() {
        assert_eq!(json!(3).as_u64(), Some(3));
        assert_eq!(json!(-3).as_i64(), Some(-3));
        assert_eq!(json!(-3).as_u64(), None);
        assert_eq!(json!(2.5).as_f64(), Some(2.5));
        assert_eq!(json!(2.5).as_i64(), None);
    }
}
