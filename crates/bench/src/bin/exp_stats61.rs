//! Regenerates the §6.1 activity medians.

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::stats61(&ctx);
    emit(
        "exp_stats61",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
