//! Rendering a [`Schema`] back to canonical SQL DDL.
//!
//! Used by the corpus materializer (to emit snapshot dumps) and by the
//! round-trip property tests (`parse(render(s)) == s`).

use std::fmt::Write as _;

use crate::{Schema, Table};

/// Renders the whole schema as a sequence of `CREATE TABLE` / `CREATE VIEW`
/// statements in deterministic (name) order.
///
/// The output is plain ANSI-flavored SQL that `schemachron-ddl` parses back
/// to an equal [`Schema`].
pub fn render_schema_sql(schema: &Schema) -> String {
    let mut out = String::new();
    for t in schema.tables() {
        render_table(&mut out, t);
        out.push('\n');
    }
    for v in schema.views() {
        let _ = writeln!(
            out,
            "CREATE VIEW {} AS {};",
            quote_ident(v.name.as_str()),
            v.definition
        );
        out.push('\n');
    }
    out
}

fn render_table(out: &mut String, t: &Table) {
    let _ = writeln!(out, "CREATE TABLE {} (", quote_ident(t.name.as_str()));
    let mut lines: Vec<String> = Vec::new();
    for a in t.attributes() {
        let mut line = format!("  {} {}", quote_ident(a.name.as_str()), a.data_type);
        if a.not_null {
            line.push_str(" NOT NULL");
        }
        if let Some(d) = &a.default {
            let _ = write!(line, " DEFAULT {d}");
        }
        if a.auto_increment {
            line.push_str(" AUTO_INCREMENT");
        }
        lines.push(line);
    }
    if !t.primary_key.is_empty() {
        lines.push(format!("  PRIMARY KEY ({})", join_idents(&t.primary_key)));
    }
    for u in &t.uniques {
        lines.push(format!("  UNIQUE ({})", join_idents(u)));
    }
    for fk in &t.foreign_keys {
        let mut line = String::from("  ");
        if let Some(n) = &fk.name {
            let _ = write!(line, "CONSTRAINT {} ", quote_ident(n.as_str()));
        }
        let _ = write!(
            line,
            "FOREIGN KEY ({}) REFERENCES {}",
            join_idents(&fk.columns),
            quote_ident(fk.ref_table.as_str())
        );
        if !fk.ref_columns.is_empty() {
            let _ = write!(line, " ({})", join_idents(&fk.ref_columns));
        }
        lines.push(line);
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n);\n");
}

fn join_idents(names: &[crate::Name]) -> String {
    names
        .iter()
        .map(|n| quote_ident(n.as_str()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Quotes an identifier with double quotes when it is not a plain
/// `[A-Za-z_][A-Za-z0-9_]*` word.
fn quote_ident(s: &str) -> String {
    let plain = !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if plain {
        s.to_owned()
    } else {
        format!("\"{}\"", s.replace('"', "\"\""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType, ForeignKey, Name, View};

    #[test]
    fn renders_table_with_keys() {
        let mut s = Schema::new();
        let mut t = Table::new("orders");
        t.push_attribute(Attribute::new("id", DataType::named("int")).not_null());
        t.push_attribute(
            Attribute::new("total", DataType::with_params("decimal", vec![10, 2]))
                .with_default("0"),
        );
        t.primary_key = vec![Name::from("id")];
        t.foreign_keys.push(ForeignKey {
            name: Some(Name::from("fk_customer")),
            columns: vec![Name::from("id")],
            ref_table: Name::from("customers"),
            ref_columns: vec![Name::from("id")],
        });
        s.insert_table(t);
        let sql = render_schema_sql(&s);
        assert!(sql.contains("CREATE TABLE orders ("));
        assert!(sql.contains("id int NOT NULL"));
        assert!(sql.contains("total decimal(10, 2) DEFAULT 0"));
        assert!(sql.contains("PRIMARY KEY (id)"));
        assert!(sql.contains("CONSTRAINT fk_customer FOREIGN KEY (id) REFERENCES customers (id)"));
    }

    #[test]
    fn quotes_non_plain_identifiers() {
        assert_eq!(quote_ident("plain_name2"), "plain_name2");
        assert_eq!(quote_ident("has space"), "\"has space\"");
        assert_eq!(quote_ident("3leading"), "\"3leading\"");
        assert_eq!(quote_ident("qu\"ote"), "\"qu\"\"ote\"");
    }

    #[test]
    fn renders_views() {
        let mut s = Schema::new();
        s.insert_view(View {
            name: Name::from("v1"),
            definition: "SELECT 1".into(),
        });
        assert!(render_schema_sql(&s).contains("CREATE VIEW v1 AS SELECT 1;"));
    }

    #[test]
    fn empty_schema_renders_empty_string() {
        assert_eq!(render_schema_sql(&Schema::new()), "");
    }
}
