//! Randomized tests for the implicit-schema inference.
//!
//! Originally proptest properties; the offline build vendors no proptest,
//! so each property is driven by a seeded [`StdRng`] loop over generated
//! JSON documents (same invariants, deterministic inputs).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use schemachron_nosql::{infer_entity, infer_schema, Collections, JsonType};
use serde_json::{json, Value};

fn key(r: &mut StdRng) -> String {
    let len = r.random_range(1..=6usize);
    (0..len)
        .map(|_| (b'a' + r.random_range(0..26u8)) as char)
        .collect()
}

/// An arbitrary JSON value of bounded depth and size.
fn arb_json(r: &mut StdRng, depth: u32) -> Value {
    let scalar_only = depth == 0 || r.random_bool(0.5);
    if scalar_only {
        match r.random_range(0..4u8) {
            0 => Value::Null,
            1 => Value::Bool(r.random_bool(0.5)),
            2 => json!(r.random_range(i64::from(i32::MIN)..=i64::from(i32::MAX))),
            _ => Value::String(key(r)),
        }
    } else if r.random_bool(0.5) {
        let n = r.random_range(0..4usize);
        Value::Array((0..n).map(|_| arb_json(r, depth - 1)).collect())
    } else {
        let n = r.random_range(0..4usize);
        let mut m = serde_json::Map::new();
        for _ in 0..n {
            let k = key(r);
            let v = arb_json(r, depth - 1);
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

fn docs(r: &mut StdRng, max: usize) -> Vec<Value> {
    let n = r.random_range(0..max);
    (0..n).map(|_| arb_json(r, 3)).collect()
}

#[test]
fn inference_never_panics() {
    let mut r = StdRng::seed_from_u64(0x1FE6);
    for _ in 0..150 {
        let _ = infer_entity("e", &docs(&mut r, 8));
    }
}

#[test]
fn inference_is_deterministic() {
    let mut r = StdRng::seed_from_u64(0xDE7E);
    for _ in 0..100 {
        let d = docs(&mut r, 6);
        assert_eq!(infer_entity("e", &d), infer_entity("e", &d));
    }
}

#[test]
fn duplicating_a_document_changes_nothing_but_nullability() {
    let mut r = StdRng::seed_from_u64(0xD0B1);
    for _ in 0..100 {
        let mut d = docs(&mut r, 5);
        if d.is_empty() {
            d.push(arb_json(&mut r, 3));
        }
        // Field set and types are invariant under duplicating the corpus;
        // presence counts double so NOT NULL flags are also invariant.
        let once = infer_entity("e", &d);
        let mut doubled = d.clone();
        doubled.extend(d.iter().cloned());
        let twice = infer_entity("e", &doubled);
        assert_eq!(once, twice);
    }
}

#[test]
fn every_scalar_field_appears_as_attribute() {
    let mut r = StdRng::seed_from_u64(0x5CA1);
    for _ in 0..100 {
        let mut keys: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let want = r.random_range(1..6usize);
        while keys.len() < want {
            keys.insert(key(&mut r));
        }
        let mut obj = serde_json::Map::new();
        for (i, k) in keys.iter().enumerate() {
            obj.insert(k.clone(), json!(i));
        }
        let t = infer_entity("e", &[Value::Object(obj)]);
        assert_eq!(t.attribute_count(), keys.len());
        for k in &keys {
            assert!(t.attribute(k).is_some(), "{k} missing");
        }
    }
}

#[test]
fn unify_is_associative() {
    use JsonType::*;
    let all = [Null, Bool, Number, String, Array, Object, Mixed];
    for x in &all {
        for y in &all {
            for z in &all {
                assert_eq!(
                    x.clone().unify(y.clone()).unify(z.clone()),
                    x.clone().unify(y.clone().unify(z.clone()))
                );
            }
        }
    }
}

#[test]
fn whole_store_inference_is_per_entity() {
    let mut store = Collections::new();
    store.add_json("a", r#"{"x": 1}"#).unwrap();
    store.add_json("b", r#"{"y": "s"}"#).unwrap();
    let schema = infer_schema(&store);
    assert_eq!(schema.table_count(), 2);
    assert_eq!(
        schema.table("a").unwrap(),
        &infer_entity("a", &[serde_json::from_str(r#"{"x": 1}"#).unwrap()])
    );
}
