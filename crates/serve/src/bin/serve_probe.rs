//! A tiny HTTP client for CI smoke tests against `schemachron serve`.
//!
//! ```text
//! serve_probe <url> [--golden <file>] [--expect <substring>] [--retries N]
//! ```
//!
//! Fetches `url` (plain `http://host:port/path` only). With `--golden` the
//! response body and the file are both parsed as JSON and compared
//! structurally; with `--expect` the body must contain the substring.
//! Otherwise the body is printed. `--retries` re-attempts the *connection*
//! (200 ms apart) so the probe can wait for a server that is still
//! starting. Exit code 0 on success, 1 on any failure.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("serve_probe: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut url = None;
    let mut golden = None;
    let mut expect = None;
    let mut retries: u32 = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--golden" => golden = it.next().cloned(),
            "--expect" => expect = it.next().cloned(),
            "--retries" => {
                retries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--retries needs a positive integer"));
            }
            other if url.is_none() => url = Some(other.to_owned()),
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }
    let url = url.unwrap_or_else(|| fail("usage: serve_probe <url> [--golden f] [--expect s] [--retries n]"));
    let rest = url
        .strip_prefix("http://")
        .unwrap_or_else(|| fail("only http:// urls are supported"));
    let (host, path) = match rest.split_once('/') {
        Some((h, p)) => (h.to_owned(), format!("/{p}")),
        None => (rest.to_owned(), "/".to_owned()),
    };

    let body = fetch(&host, &path, retries.max(1));

    if let Some(file) = golden {
        let want_text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| fail(&format!("cannot read golden {file}: {e}")));
        let want = serde_json::from_str(&want_text)
            .unwrap_or_else(|e| fail(&format!("golden {file} is not JSON: {e:?}")));
        let got = serde_json::from_str(&body)
            .unwrap_or_else(|e| fail(&format!("response body is not JSON: {e:?}\n{body}")));
        if got != want {
            fail(&format!(
                "response does not match golden {file}\n--- got ---\n{body}"
            ));
        }
        println!("serve_probe: {path} matches {file}");
    } else if let Some(needle) = expect {
        if !body.contains(&needle) {
            fail(&format!("body does not contain `{needle}`:\n{body}"));
        }
        println!("serve_probe: {path} contains `{needle}`");
    } else {
        print!("{body}");
    }
}

/// Connects (with retries), sends a GET, returns the response body after
/// verifying a `200` status line.
fn fetch(host: &str, path: &str, retries: u32) -> String {
    let mut last_err = String::new();
    for attempt in 0..retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(200));
        }
        let mut stream = match TcpStream::connect(host) {
            Ok(s) => s,
            Err(e) => {
                last_err = format!("connect {host}: {e}");
                continue;
            }
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        if let Err(e) = write!(stream, "GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n") {
            last_err = format!("send: {e}");
            continue;
        }
        let mut raw = String::new();
        if let Err(e) = stream.read_to_string(&mut raw) {
            last_err = format!("read: {e}");
            continue;
        }
        let Some((head, body)) = raw.split_once("\r\n\r\n") else {
            last_err = format!("malformed response:\n{raw}");
            continue;
        };
        let status_line = head.lines().next().unwrap_or("");
        if !status_line.starts_with("HTTP/1.1 200") {
            last_err = format!("non-200 response: {status_line}\n{body}");
            continue;
        }
        return body.to_owned();
    }
    fail(&format!("giving up after {retries} attempt(s): {last_err}"));
}
