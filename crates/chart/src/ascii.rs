//! Terminal rendering of dual cumulative progress lines.

use schemachron_history::ProjectHistory;

/// An ASCII chart renderer. The plot area is `width × height` characters;
/// axes and labels are added around it.
///
/// Glyphs: `·` schema line, `─` source line, `#` where the two coincide.
#[derive(Clone, Copy, Debug)]
pub struct AsciiChart {
    /// Plot-area width in characters.
    pub width: usize,
    /// Plot-area height in characters.
    pub height: usize,
}

impl Default for AsciiChart {
    fn default() -> Self {
        AsciiChart {
            width: 60,
            height: 16,
        }
    }
}

impl AsciiChart {
    /// Renders the project's cumulative schema (dotted) and source (solid)
    /// lines over normalized time, Fig. 1-style.
    pub fn render(&self, p: &ProjectHistory) -> String {
        let schema = p.schema_heartbeat().sample_normalized(self.width);
        let source = p.source_heartbeat().sample_normalized(self.width);
        self.render_series(p.name(), &schema, &source)
    }

    /// Renders two pre-sampled `[0, 1]` series (each of length
    /// [`AsciiChart::width`]; shorter series are padded with their last
    /// value, empty series are flat zero).
    pub fn render_series(&self, title: &str, schema: &[f64], source: &[f64]) -> String {
        let w = self.width.max(2);
        let h = self.height.max(2);
        let schema = resample(schema, w);
        let source = resample(source, w);

        // Grid rows: row 0 is the top (100%).
        let mut grid = vec![vec![' '; w]; h];
        for x in 0..w {
            let sy = y_of(source[x], h);
            grid[sy][x] = '─';
            let hy = y_of(schema[x], h);
            grid[hy][x] = if hy == sy { '#' } else { '·' };
        }

        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        for (row, line) in grid.iter().enumerate() {
            let label = match row {
                0 => "100% ",
                r if r == h / 2 => " 50% ",
                r if r == h - 1 => "  0% ",
                _ => "     ",
            };
            out.push_str(label);
            out.push('|');
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str("     +");
        out.push_str(&"-".repeat(w));
        out.push('\n');
        let mut axis = String::from("      0%");
        let spacer = w.saturating_sub(14);
        axis.push_str(&" ".repeat(spacer / 2));
        axis.push_str("time (%PUP)");
        axis.push_str(&" ".repeat(spacer - spacer / 2));
        axis.push_str("100%");
        out.push_str(&axis);
        out.push('\n');
        out.push_str("      schema: ·    source: ─    both: #\n");
        out
    }
}

fn y_of(v: f64, h: usize) -> usize {
    let v = v.clamp(0.0, 1.0);
    let row = ((1.0 - v) * (h - 1) as f64).round() as usize;
    row.min(h - 1)
}

fn resample(series: &[f64], w: usize) -> Vec<f64> {
    if series.is_empty() {
        return vec![0.0; w];
    }
    if series.len() == w {
        return series.to_vec();
    }
    (0..w)
        .map(|x| {
            let t = x as f64 / (w - 1) as f64;
            let idx = (t * (series.len() - 1) as f64).round() as usize;
            series[idx.min(series.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::MonthId;

    fn project(schema: Vec<f64>, source: Vec<f64>) -> ProjectHistory {
        ProjectHistory::from_heartbeats("chart-test", MonthId(0), schema, source, [0; 6])
    }

    #[test]
    fn render_contains_axes_and_legend() {
        let mut schema = vec![0.0; 30];
        schema[0] = 5.0;
        let p = project(schema, vec![1.0; 30]);
        let art = AsciiChart::default().render(&p);
        assert!(art.contains("100% |"));
        assert!(art.contains("  0% |"));
        assert!(art.contains("time (%PUP)"));
        assert!(art.contains("schema: ·"));
    }

    #[test]
    fn flat_schema_line_sits_at_top_after_birth() {
        // All change at month 0: the schema line is at 100% everywhere.
        let mut schema = vec![0.0; 30];
        schema[0] = 5.0;
        let p = project(schema, vec![1.0; 30]);
        let art = AsciiChart {
            width: 20,
            height: 5,
        }
        .render(&p);
        let top_row = art.lines().nth(1).unwrap();
        let marks = top_row.chars().filter(|c| *c == '·' || *c == '#').count();
        assert!(marks >= 19, "schema marks on top row: {marks}\n{art}");
    }

    #[test]
    fn late_riser_line_sits_at_bottom_then_jumps() {
        let mut schema = vec![0.0; 30];
        schema[28] = 10.0;
        let p = project(schema, vec![1.0; 30]);
        let art = AsciiChart {
            width: 30,
            height: 6,
        }
        .render(&p);
        let bottom_row = art.lines().nth(6).unwrap(); // "  0% |..." row
        assert!(bottom_row.starts_with("  0% |"));
        let marks = bottom_row.chars().filter(|c| *c == '·').count();
        assert!(marks > 20, "{art}");
    }

    #[test]
    fn coincident_lines_use_hash() {
        let mut schema = vec![0.0; 10];
        schema[0] = 1.0;
        let mut source = vec![0.0; 10];
        source[0] = 1.0;
        let p = project(schema, source);
        let art = AsciiChart {
            width: 10,
            height: 4,
        }
        .render(&p);
        assert!(art.contains('#'), "{art}");
    }

    #[test]
    fn empty_series_render_safely() {
        let c = AsciiChart {
            width: 10,
            height: 4,
        };
        let art = c.render_series("empty", &[], &[]);
        assert!(art.contains("empty"));
    }

    #[test]
    fn resample_preserves_endpoints() {
        let r = resample(&[0.0, 0.5, 1.0], 9);
        assert_eq!(r.len(), 9);
        assert_eq!(r[0], 0.0);
        assert_eq!(r[8], 1.0);
    }
}

/// Renders a Fig. 1-style annotated chart: the dual cumulative lines plus a
/// marker row flagging schema birth (`B`), top-band attainment (`T`, or `V`
/// when the rise is a vault) at their normalized-time positions.
pub fn render_annotated(
    chart: &AsciiChart,
    p: &ProjectHistory,
    birth_pct: f64,
    top_pct: f64,
    is_vault: bool,
) -> String {
    let mut out = chart.render(p);
    let w = chart.width.max(2);
    let pos = |pct: f64| ((pct.clamp(0.0, 1.0) * (w - 1) as f64).round() as usize).min(w - 1);
    let mut markers = vec![' '; w];
    markers[pos(top_pct)] = if is_vault { 'V' } else { 'T' };
    markers[pos(birth_pct)] = 'B'; // birth wins the cell if they collide
    let marker_line: String = markers.into_iter().collect();
    out.push_str("      ");
    out.push_str(marker_line.trim_end());
    out.push_str("\n      B: schema birth    ");
    out.push_str(if is_vault {
        "V: top band (a vault: < 10% of life after birth)\n"
    } else {
        "T: top band (90% of total activity)\n"
    });
    out
}

#[cfg(test)]
mod annotated_tests {
    use super::*;
    use schemachron_history::MonthId;

    #[test]
    fn markers_land_at_normalized_positions() {
        let mut schema = vec![0.0; 21];
        schema[0] = 10.0;
        schema[10] = 80.0;
        let p = ProjectHistory::from_heartbeats("m", MonthId(0), schema, vec![1.0; 21], [0; 6]);
        let chart = AsciiChart {
            width: 21,
            height: 5,
        };
        let art = render_annotated(&chart, &p, 0.0, 0.5, false);
        let marker_line = art
            .lines()
            .find(|l| l.contains('B'))
            .expect("marker line present");
        assert_eq!(marker_line.trim_start().chars().next(), Some('B'));
        assert!(marker_line.contains('T'));
        assert!(art.contains("T: top band"));
    }

    #[test]
    fn vault_marker_shown_for_vaults() {
        let mut schema = vec![0.0; 30];
        schema[2] = 10.0;
        let p = ProjectHistory::from_heartbeats("v", MonthId(0), schema, vec![1.0; 30], [0; 6]);
        let chart = AsciiChart::default();
        let art = render_annotated(&chart, &p, 2.0 / 29.0, 2.0 / 29.0, true);
        // Birth wins the shared cell; the legend still explains the vault.
        assert!(art.contains("a vault"));
        assert!(art.contains('B'));
    }
}
