//! Inverse-evolution queries: which version introduced or ejected a
//! table/column (à la the Auge provenance work).
//!
//! Provenance is read straight off the measurement diffs the history
//! already carries: every version transition names the tables it added or
//! dropped and each affected attribute with its change kind, so the full
//! lineage of any `table[.column]` is the chronological filter of those
//! records. Liveness is checked against the final schema.

use schemachron_history::{Date, MonthId};
use schemachron_model::Name;

use crate::index::AsOfIndex;

/// One lineage event of a table or column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceEvent {
    /// The month of the version that made the change.
    pub month: MonthId,
    /// The exact commit date of that version.
    pub date: Date,
    /// What happened, in the taxonomy's human labels (`table-added`,
    /// `injected`, `ejected`, `type-changed`, …).
    pub change: &'static str,
}

/// The answer to a provenance query over one `table[.column]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// The queried table name (as given).
    pub table: String,
    /// The queried column name, when the query targeted a column.
    pub column: Option<String>,
    /// Whether the subject exists in the final schema.
    pub alive: bool,
    /// The version that introduced the current (or, when dead, the last)
    /// incarnation of the subject.
    pub introduced: Option<ProvenanceEvent>,
    /// The version that ejected the subject — populated when it is dead.
    pub ejected: Option<ProvenanceEvent>,
    /// Every lineage event, chronological.
    pub events: Vec<ProvenanceEvent>,
}

impl AsOfIndex {
    /// Full lineage of `table` (or `table.column` when `column` is given).
    /// Name matching is case-insensitive, like the model's [`Name`].
    /// Returns `None` when the subject never existed in any version.
    pub fn provenance(&self, table: &str, column: Option<&str>) -> Option<Provenance> {
        let table_name = Name::from(table);
        let column_name = column.map(Name::from);

        let mut events = Vec::new();
        for delta in self.deltas() {
            match &column_name {
                None => {
                    if delta.diff.tables_added.contains(&table_name) {
                        events.push(event(delta.month, delta.date, "table-added"));
                    }
                    if delta.diff.tables_dropped.contains(&table_name) {
                        events.push(event(delta.month, delta.date, "table-dropped"));
                    }
                }
                Some(col) => {
                    for change in &delta.diff.changes {
                        if change.table == table_name && change.attribute == *col {
                            events.push(event(delta.month, delta.date, change.kind.label()));
                        }
                    }
                }
            }
        }
        if events.is_empty() {
            return None;
        }

        let final_schema = self.final_schema();
        let alive = match &column_name {
            None => final_schema.table_of(&table_name).is_some(),
            Some(col) => final_schema
                .table_of(&table_name)
                .is_some_and(|t| t.attribute_of(col).is_some()),
        };

        // Labels match `ChangeKind::label()`; the unit tests pin them.
        let (births, deaths): (&[&str], &[&str]) = if column.is_none() {
            (&["table-added"], &["table-dropped"])
        } else {
            (
                &["born-with-table", "injected"],
                &["deleted-with-table", "ejected"],
            )
        };
        let introduced = events.iter().rev().find(|e| births.contains(&e.change)).cloned();
        let ejected = events.iter().rev().find(|e| deaths.contains(&e.change)).cloned();

        Some(Provenance {
            table: table.to_owned(),
            column: column.map(str::to_owned),
            alive,
            introduced,
            ejected: if alive { None } else { ejected },
            events,
        })
    }
}

fn event(month: MonthId, date: Date, change: &'static str) -> ProvenanceEvent {
    ProvenanceEvent {
        month,
        date,
        change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::ProjectHistoryBuilder;

    fn index() -> AsOfIndex {
        let mut b = ProjectHistoryBuilder::new("prov");
        b.snapshot(Date::new(2020, 1, 10), "CREATE TABLE t (a INT);");
        b.snapshot(Date::new(2020, 4, 2), "CREATE TABLE t (a INT, b INT);");
        b.snapshot(Date::new(2020, 9, 2), "CREATE TABLE t (a INT);");
        b.snapshot(Date::new(2021, 2, 20), "CREATE TABLE v (x INT);");
        AsOfIndex::build(&b.build(), 12).unwrap()
    }

    #[test]
    fn live_column_reports_its_introducing_version() {
        let idx = index();
        let p = idx.provenance("v", Some("x")).unwrap();
        assert!(p.alive);
        assert_eq!(p.introduced.as_ref().unwrap().month, MonthId::from_ym(2021, 2));
        assert_eq!(p.introduced.as_ref().unwrap().change, "born-with-table");
        assert!(p.ejected.is_none());
    }

    #[test]
    fn dead_column_reports_its_ejecting_version() {
        let idx = index();
        let p = idx.provenance("t", Some("b")).unwrap();
        assert!(!p.alive);
        assert_eq!(p.introduced.as_ref().unwrap().change, "injected");
        let ejected = p.ejected.unwrap();
        assert_eq!(ejected.month, MonthId::from_ym(2020, 9));
        assert_eq!(ejected.change, "ejected");
    }

    #[test]
    fn dead_table_lineage_spans_add_and_drop() {
        let idx = index();
        let p = idx.provenance("T", None).unwrap(); // case-insensitive
        assert!(!p.alive);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.ejected.unwrap().month, MonthId::from_ym(2021, 2));
    }

    #[test]
    fn never_existed_is_none() {
        assert!(index().provenance("ghost", None).is_none());
        assert!(index().provenance("t", Some("ghost")).is_none());
    }

    #[test]
    fn birth_and_death_labels_track_the_taxonomy() {
        use schemachron_model::ChangeKind;
        // `provenance` classifies events by these literal labels; they must
        // stay in lockstep with the model's taxonomy labels.
        assert_eq!(ChangeKind::AttributeBornWithTable.label(), "born-with-table");
        assert_eq!(ChangeKind::AttributeInjected.label(), "injected");
        assert_eq!(ChangeKind::AttributeDeletedWithTable.label(), "deleted-with-table");
        assert_eq!(ChangeKind::AttributeEjected.label(), "ejected");
    }
}
