//! Monthly activity series and their cumulative, normalized forms.

use serde::{Deserialize, Serialize};

use crate::MonthId;

/// A month-granule activity series: one value per month over a contiguous
/// month range, starting at [`Heartbeat::start`].
///
/// The value unit depends on what the heartbeat measures — affected
/// attributes for schema heartbeats, changed lines for source heartbeats.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    start: Option<MonthId>,
    values: Vec<f64>,
}

impl Heartbeat {
    /// An empty heartbeat (no months, no activity).
    pub fn new() -> Self {
        Heartbeat::default()
    }

    /// Builds a heartbeat from a start month and per-month values.
    pub fn from_values(start: MonthId, values: Vec<f64>) -> Self {
        Heartbeat {
            start: Some(start),
            values,
        }
    }

    /// The first month covered, if any month is.
    pub fn start(&self) -> Option<MonthId> {
        self.start
    }

    /// The number of covered months.
    pub fn month_count(&self) -> usize {
        self.values.len()
    }

    /// Per-month activity values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Adds `amount` of activity in `month`, growing the covered range as
    /// needed (padding with zero months).
    pub fn add(&mut self, month: MonthId, amount: f64) {
        match self.start {
            None => {
                self.start = Some(month);
                self.values.push(amount);
            }
            Some(start) => {
                let idx = month.months_since(start);
                if idx < 0 {
                    // Extend to the left.
                    let pad = (-idx) as usize;
                    let mut new_vals = vec![0.0; pad];
                    new_vals.append(&mut self.values);
                    self.values = new_vals;
                    self.start = Some(month);
                    self.values[0] += amount;
                } else {
                    let idx = idx as usize;
                    if idx >= self.values.len() {
                        self.values.resize(idx + 1, 0.0);
                    }
                    self.values[idx] += amount;
                }
            }
        }
    }

    /// Extends the covered range so that it spans `[from, to]` inclusive
    /// (used to align a schema heartbeat to the whole project lifespan).
    pub fn extend_to_cover(&mut self, from: MonthId, to: MonthId) {
        if to < from {
            return;
        }
        if self.start.is_none() {
            self.start = Some(from);
            self.values = vec![0.0; (to.months_since(from) + 1) as usize];
            return;
        }
        self.add(from, 0.0);
        self.add(to, 0.0);
    }

    /// Total activity over the whole series.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Index of the first month with non-zero activity.
    pub fn first_active_index(&self) -> Option<usize> {
        self.values.iter().position(|&v| v > 0.0)
    }

    /// Index of the last month with non-zero activity.
    pub fn last_active_index(&self) -> Option<usize> {
        self.values.iter().rposition(|&v| v > 0.0)
    }

    /// Number of months with non-zero activity within `[from, to]`
    /// (inclusive, clamped to the covered range).
    pub fn active_months_in(&self, from: usize, to: usize) -> usize {
        if self.values.is_empty() {
            return 0;
        }
        let to = to.min(self.values.len() - 1);
        if from > to {
            return 0;
        }
        self.values[from..=to].iter().filter(|&&v| v > 0.0).count()
    }

    /// The cumulative series, as a fraction of the total, one point per
    /// month. All points are in `[0, 1]` and non-decreasing. A zero-activity
    /// heartbeat yields all zeros.
    pub fn cumulative_fraction(&self) -> Vec<f64> {
        let total = self.total();
        let mut acc = 0.0;
        self.values
            .iter()
            .map(|v| {
                acc += v;
                if total > 0.0 {
                    acc / total
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Samples the cumulative fraction at `n` evenly spaced points of
    /// normalized time (0%, ..., 100% of the covered range), for centroid
    /// analysis (§5.2 quantizes lines to 20 such points).
    pub fn sample_normalized(&self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let cum = self.cumulative_fraction();
        if cum.is_empty() {
            return vec![0.0; n];
        }
        let last = cum.len() - 1;
        (0..n)
            .map(|i| {
                let t = if n == 1 {
                    1.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                let idx = (t * last as f64).round() as usize;
                cum[idx.min(last)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(n: i32) -> MonthId {
        MonthId(n)
    }

    #[test]
    fn add_grows_right_with_zero_padding() {
        let mut h = Heartbeat::new();
        h.add(m(10), 2.0);
        h.add(m(13), 3.0);
        assert_eq!(h.start(), Some(m(10)));
        assert_eq!(h.values(), &[2.0, 0.0, 0.0, 3.0]);
        assert_eq!(h.total(), 5.0);
    }

    #[test]
    fn add_grows_left() {
        let mut h = Heartbeat::new();
        h.add(m(10), 2.0);
        h.add(m(8), 1.0);
        assert_eq!(h.start(), Some(m(8)));
        assert_eq!(h.values(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn add_accumulates_same_month() {
        let mut h = Heartbeat::new();
        h.add(m(5), 1.0);
        h.add(m(5), 2.5);
        assert_eq!(h.values(), &[3.5]);
    }

    #[test]
    fn extend_to_cover_pads_both_sides() {
        let mut h = Heartbeat::new();
        h.add(m(5), 1.0);
        h.extend_to_cover(m(3), m(7));
        assert_eq!(h.start(), Some(m(3)));
        assert_eq!(h.month_count(), 5);
        assert_eq!(h.total(), 1.0);
        // Covering an empty heartbeat works too.
        let mut e = Heartbeat::new();
        e.extend_to_cover(m(0), m(2));
        assert_eq!(e.month_count(), 3);
        assert_eq!(e.total(), 0.0);
    }

    #[test]
    fn extend_with_inverted_range_is_noop() {
        let mut h = Heartbeat::new();
        h.extend_to_cover(m(5), m(3));
        assert_eq!(h.month_count(), 0);
    }

    #[test]
    fn cumulative_fraction_is_monotone_and_ends_at_one() {
        let h = Heartbeat::from_values(m(0), vec![1.0, 0.0, 3.0, 0.0]);
        let c = h.cumulative_fraction();
        assert_eq!(c, vec![0.25, 0.25, 1.0, 1.0]);
    }

    #[test]
    fn cumulative_fraction_of_zero_series_is_zero() {
        let h = Heartbeat::from_values(m(0), vec![0.0, 0.0]);
        assert_eq!(h.cumulative_fraction(), vec![0.0, 0.0]);
    }

    #[test]
    fn active_indices() {
        let h = Heartbeat::from_values(m(0), vec![0.0, 2.0, 0.0, 1.0, 0.0]);
        assert_eq!(h.first_active_index(), Some(1));
        assert_eq!(h.last_active_index(), Some(3));
        assert_eq!(h.active_months_in(0, 4), 2);
        assert_eq!(h.active_months_in(2, 2), 0);
        assert_eq!(h.active_months_in(2, 100), 1);
        assert_eq!(h.active_months_in(4, 1), 0);
    }

    #[test]
    fn sample_normalized_endpoints_and_size() {
        let h = Heartbeat::from_values(m(0), vec![1.0, 1.0, 1.0, 1.0]);
        let s = h.sample_normalized(5);
        assert_eq!(s.len(), 5);
        assert!((s[0] - 0.25).abs() < 1e-12);
        assert!((s[4] - 1.0).abs() < 1e-12);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sample_normalized_degenerate_cases() {
        assert_eq!(Heartbeat::new().sample_normalized(3), vec![0.0; 3]);
        let h = Heartbeat::from_values(m(0), vec![2.0]);
        assert_eq!(h.sample_normalized(1), vec![1.0]);
        assert!(h.sample_normalized(0).is_empty());
    }
}
