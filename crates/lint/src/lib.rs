#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-lint
//!
//! Static semantic analysis for DDL histories, trait cards, and pipeline
//! cache artifacts — **without executing the measurement pipeline**.
//!
//! Three passes share one diagnostics framework ([`diag`]):
//!
//! * the **DDL flow analyzer** ([`flow`]) symbolically executes each
//!   project's commit history over an abstract schema state, catching
//!   dangling references (`L00x`);
//! * the **spec linter** ([`spec`]) checks trait cards against the paper's
//!   label domains and, for the calibrated corpus, the published aggregates
//!   (`S00x`/`S01x`);
//! * the **cache auditor** ([`cache`]) recomputes the stage cache's chained
//!   FNV-1a fingerprints from first principles (`H00x`);
//! * the **recommendation pass** ([`recommend`]) runs the migration
//!   planner over each project's final schema against its lint-clean
//!   ideal and surfaces the planned DDL as Info notes (`R001`);
//! * the **safety pass** ([`safety`]) runs the abstract-interpretation
//!   safety analyzer over each history and surfaces lossy and
//!   provenance-dependent ops as Info notes (`R010`/`R011`).
//!
//! Every diagnostic carries a stable rule code from the [`diag::RULES`]
//! registry, a severity, and (for flow findings) a source span into the
//! generated `.sql` script. Reports render human-readable or as
//! deterministic JSON; per-card work fans out over the corpus worker pool
//! and is reassembled in card order, so output is byte-identical at any
//! `--jobs` level.

pub mod cache;
pub mod diag;
pub mod flow;
pub mod fsck;
pub mod recommend;
pub mod safety;
pub mod spec;
pub mod walcheck;

use schemachron_corpus::io::date_from_filename;
use schemachron_corpus::materialize::materialize;
use schemachron_corpus::{par_map, Card};

pub use diag::{Diagnostic, Report, Rule, Severity, Span, RULES};

/// What to lint and how.
#[derive(Clone, Copy, Debug)]
pub struct LintOptions {
    /// Corpus seed: cards are materialized (and cache chains derived) for
    /// this seed.
    pub seed: u64,
    /// Worker count for the per-card fan-out (`0` = the corpus worker
    /// pool's own resolution: `--jobs` override, `SCHEMACHRON_JOBS`, else
    /// available parallelism). Findings are reassembled in card order, so
    /// this never changes the output.
    pub jobs: usize,
    /// Enforce the cross-card invariants of the calibrated 151-project
    /// corpus (S010–S014). Off when linting arbitrary card sets.
    pub corpus_invariants: bool,
    /// Audit the process-wide stage cache against the card set (H001–H003).
    pub audit_cache: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            seed: 42,
            jobs: 0,
            corpus_invariants: true,
            audit_cache: true,
        }
    }
}

/// Lints one card end to end: spec checks first, then — only if the plan
/// is feasible — the DDL flow analysis of its materialized history.
///
/// This is the per-project unit of work behind [`lint_cards`], exposed so
/// single-project surfaces (the serve `/project/{id}/diagnostics` route)
/// reuse the exact same passes. The returned report is sorted.
pub fn lint_project(card: &Card, seed: u64) -> Report {
    let mut report = Report::new();
    spec::lint_card(card, &mut report);
    if report.errors() > 0 {
        // An infeasible or out-of-domain card cannot be materialized
        // (`Card::schedule` would panic); its flow findings would be noise.
        report.sort();
        return report;
    }
    let project = materialize(card, seed);
    let scripts: Vec<(String, String)> = project
        .ddl_commits
        .iter()
        .enumerate()
        .map(|(i, (date, sql))| (format!("{:04}_{date}.sql", i + 1), sql.clone()))
        .collect();
    flow::lint_scripts(&card.name, &scripts, &mut report);
    recommend::recommend_next_migration(&card.name, &scripts, &mut report);
    safety::lint_safety(&card.name, &project.ddl_commits, &mut report);
    report.sort();
    report
}

/// Runs all passes over a card set and returns the sorted report.
pub fn lint_cards(cards: &[Card], opts: &LintOptions) -> Report {
    let seed = opts.seed;
    let jobs = if opts.jobs == 0 {
        schemachron_corpus::effective_jobs()
    } else {
        opts.jobs
    };
    let per_card = par_map(cards.to_vec(), jobs, |card| lint_project(&card, seed));
    let mut report = Report::new();
    for r in per_card {
        report.extend(r);
    }
    if opts.corpus_invariants {
        spec::lint_corpus_invariants(cards, &mut report);
    }
    if opts.audit_cache {
        cache::audit_stage_cache(cards, seed, &mut report);
    }
    report.sort();
    report
}

/// Lints a directory of `.sql` migration scripts (one project checked out
/// on disk, in the same layout `corpus io` writes) with the flow analyzer,
/// plus the `MANIFEST` integrity pass ([`fsck`], `F001`) when the
/// directory carries one and the WAL integrity pass ([`walcheck`], `H007`)
/// when it holds streaming segment files.
///
/// Scripts are ordered by the date embedded in their file name, then by
/// name — the same chronology the ingestion pipeline would use. Files
/// without a parseable date sort last; non-`.sql` files are ignored.
///
/// # Errors
/// Returns the underlying I/O error when the directory cannot be read.
pub fn lint_dir(dir: &std::path::Path, report: &mut Report) -> std::io::Result<()> {
    fsck::lint_manifest_dir(dir, report)?;
    walcheck::lint_wal_dir(dir, report)?;
    let project = dir
        .file_name()
        .map_or_else(|| "(project)".to_owned(), |n| n.to_string_lossy().into_owned());
    let mut entries: Vec<(Option<String>, String, String)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "sql") {
            continue;
        }
        let name = path
            .file_name()
            .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let date = date_from_filename(&path).map(|d| d.to_string());
        let sql = std::fs::read_to_string(&path)?;
        entries.push((date, name, sql));
    }
    entries.sort();
    let scripts: Vec<(String, String)> = entries
        .into_iter()
        .map(|(_, name, sql)| (name, sql))
        .collect();
    flow::lint_scripts(&project, &scripts, report);
    report.sort();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_corpus::cards::all_cards;

    #[test]
    fn pristine_corpus_is_clean_under_deny_warnings() {
        let cards = all_cards();
        let opts = LintOptions {
            audit_cache: false, // the process cache is shared across tests
            ..LintOptions::default()
        };
        let report = lint_cards(&cards, &opts);
        assert_eq!(report.errors(), 0, "{}", report.render_human());
        assert_eq!(report.warnings(), 0, "{}", report.render_human());
        assert!(!report.failed(true), "deny-warnings must pass");
    }

    #[test]
    fn planner_recommendations_surface_as_info_notes() {
        // The generator's primary-key toggles leave some projects with
        // keyless final tables; the recommendation pass must surface the
        // planned fix for each as an R001 Info note (never a failure).
        let cards = all_cards();
        let card = cards
            .iter()
            .find(|c| c.name.as_str() == "radical-049")
            .expect("calibrated corpus has radical-049");
        let report = lint_project(card, 42);
        let recs: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "R001")
            .collect();
        assert!(!recs.is_empty(), "{}", report.render_human());
        for d in recs {
            assert_eq!(d.severity, Severity::Info);
            assert!(
                d.message.starts_with("recommended next migration: ALTER TABLE"),
                "{d}"
            );
        }
        assert!(!report.failed(true), "recommendations never fail a run");
    }

    #[test]
    fn jobs_level_never_changes_the_json() {
        let cards: Vec<Card> = all_cards().into_iter().take(24).collect();
        let base = LintOptions {
            corpus_invariants: false,
            audit_cache: false,
            ..LintOptions::default()
        };
        let serial = lint_cards(&cards, &LintOptions { jobs: 1, ..base }).render_json();
        let parallel = lint_cards(&cards, &LintOptions { jobs: 8, ..base }).render_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn injected_bad_card_surfaces_with_its_code() {
        let mut cards = all_cards();
        cards[0].birth_frac = 1.5;
        let opts = LintOptions {
            corpus_invariants: false,
            audit_cache: false,
            ..LintOptions::default()
        };
        let report = lint_cards(&cards, &opts);
        // The pristine corpus legitimately carries L007 narrowing notes;
        // the injected fault must be the only *error*.
        let errors: Vec<&str> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect();
        assert_eq!(errors, ["S002"]);
        assert!(report.failed(false));
    }

    #[test]
    fn lint_dir_orders_scripts_by_embedded_date() {
        let dir = std::env::temp_dir().join(format!("schemachron-lint-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Written "out of order" on purpose: the date decides.
        std::fs::write(dir.join("0002_2020-03-10.sql"), "DROP TABLE t;").unwrap();
        std::fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        std::fs::write(dir.join("source.csv"), "2020-01-10,5").unwrap();
        let mut report = Report::new();
        lint_dir(&dir, &mut report).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(report.diagnostics().is_empty(), "{}", report.render_human());
    }
}
