//! The tolerant DDL statement parser.
//!
//! The parser understands the DDL statement forms that affect the logical
//! schema level (see [`crate::ast`]), across the MySQL, PostgreSQL and
//! SQLite dialects found in FOSS schema histories. It **never fails on a
//! whole script**: statements it cannot understand are skipped with a
//! [`Diagnostic`], recovery resuming at the next top-level `;`.

use schemachron_model::{DataType, Name};

use crate::ast::{AlterAction, ColumnDef, CreateTable, Statement, TableConstraint};
use crate::diagnostics::Diagnostic;
use crate::error::{DdlError, DdlErrorKind};
use crate::lexer::{lex, Token, TokenKind};

/// Parses a script into statements plus diagnostics.
///
/// ```
/// use schemachron_ddl::parse_statements;
/// use schemachron_ddl::ast::Statement;
///
/// let (stmts, diags) = parse_statements("DROP TABLE IF EXISTS old_stuff;");
/// assert!(matches!(&stmts[0], Statement::DropTable { if_exists: true, .. }));
/// assert!(diags.is_empty());
/// ```
pub fn parse_statements(sql: &str) -> (Vec<Statement>, Vec<Diagnostic>) {
    let (spanned, diags) = Parser::new(lex(sql)).run();
    (spanned.into_iter().map(|s| s.statement).collect(), diags)
}

/// A parsed statement paired with the 1-based line of its first token —
/// the span static analyzers report against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedStatement {
    /// 1-based source line where the statement starts.
    pub line: u32,
    /// The parsed statement.
    pub statement: Statement,
}

/// [`parse_statements`], but each statement carries its source line.
///
/// ```
/// use schemachron_ddl::parser::parse_statements_spanned;
///
/// let (stmts, _) = parse_statements_spanned("CREATE TABLE a (x INT);\nDROP TABLE a;");
/// assert_eq!((stmts[0].line, stmts[1].line), (1, 2));
/// ```
pub fn parse_statements_spanned(sql: &str) -> (Vec<SpannedStatement>, Vec<Diagnostic>) {
    Parser::new(lex(sql)).run()
}

type PResult<T> = Result<T, DdlError>;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Self {
        Parser {
            toks,
            pos: 0,
            diags: Vec::new(),
        }
    }

    // ---- token cursor -------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek()
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line)
    }

    /// Builds a typed error anchored at the current token's line.
    fn err(&self, kind: DdlErrorKind) -> DdlError {
        DdlError::new(kind, self.line())
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_symbol(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_word(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_word(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_word(kw))
    }

    fn peek_word_at(&self, n: usize, kw: &str) -> bool {
        self.peek_at(n).is_some_and(|t| t.is_word(kw))
    }

    fn expect_symbol(&mut self, sym: &str) -> PResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(DdlErrorKind::Expected {
                what: sym.into(),
                found: self.describe_current(),
            }))
        }
    }

    fn expect_word(&mut self, kw: &str) -> PResult<()> {
        if self.eat_word(kw) {
            Ok(())
        } else {
            Err(self.err(DdlErrorKind::Expected {
                what: kw.into(),
                found: self.describe_current(),
            }))
        }
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            None => "end of input".into(),
            Some(t) => format!("`{}`", t.kind.text()),
        }
    }

    /// Parses a (possibly schema-qualified) identifier, returning the last
    /// segment: `mydb.users` → `users`.
    fn ident(&mut self) -> PResult<Name> {
        let mut name = self.ident_segment()?;
        while self.peek().is_some_and(|t| t.is_symbol(".")) {
            self.pos += 1;
            name = self.ident_segment()?;
        }
        Ok(name)
    }

    fn ident_segment(&mut self) -> PResult<Name> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Word(w)) => {
                self.pos += 1;
                Ok(Name::from(w))
            }
            Some(TokenKind::QuotedIdent(q)) => {
                self.pos += 1;
                Ok(Name::from(q))
            }
            _ => Err(self.err(DdlErrorKind::ExpectedIdentifier {
                found: self.describe_current(),
            })),
        }
    }

    /// Skips tokens until just after the next top-level `;` (or EOF).
    fn skip_to_semicolon(&mut self) {
        let mut depth: i32 = 0;
        while let Some(t) = self.peek() {
            if t.is_symbol("(") {
                depth += 1;
            } else if t.is_symbol(")") {
                depth -= 1;
            } else if t.is_symbol(";") && depth <= 0 {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// Skips until a top-level `,`, `)` or `;` without consuming it.
    fn skip_to_element_boundary(&mut self) {
        let mut depth: i32 = 0;
        while let Some(t) = self.peek() {
            if t.is_symbol("(") {
                depth += 1;
            } else if t.is_symbol(")") {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            } else if (t.is_symbol(",") || t.is_symbol(";")) && depth == 0 {
                return;
            }
            self.pos += 1;
        }
    }

    /// Skips a balanced parenthesized group, assuming the cursor is at `(`.
    fn skip_balanced_parens(&mut self) {
        if !self.eat_symbol("(") {
            return;
        }
        let mut depth = 1;
        while let Some(t) = self.bump() {
            if t.is_symbol("(") {
                depth += 1;
            } else if t.is_symbol(")") {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    // ---- top level -----------------------------------------------------

    fn run(mut self) -> (Vec<SpannedStatement>, Vec<Diagnostic>) {
        let mut stmts = Vec::new();
        while !self.at_end() {
            if self.eat_symbol(";") {
                continue;
            }
            let line = self.line();
            let start = self.pos;
            match self.statement() {
                Ok(stmt) => {
                    if let Statement::Other { keyword } = &stmt {
                        self.diags
                            .push(Diagnostic::skipped(line, format!("{keyword} statement")));
                    }
                    stmts.push(SpannedStatement {
                        line,
                        statement: stmt,
                    });
                    self.skip_to_semicolon();
                }
                Err(e) => {
                    self.diags.push(Diagnostic::error(line, e.message()));
                    self.pos = start.max(self.pos);
                    if self.pos == start {
                        self.pos += 1; // guarantee progress
                    }
                    self.skip_to_semicolon();
                }
            }
        }
        (stmts, self.diags)
    }

    fn statement(&mut self) -> PResult<Statement> {
        let first = match self.peek() {
            None => return Err(self.err(DdlErrorKind::EmptyStatement)),
            Some(t) => match &t.kind {
                TokenKind::Word(w) => w.to_ascii_uppercase(),
                other => {
                    return Ok(Statement::Other {
                        keyword: format!("`{}`", other.text()),
                    })
                }
            },
        };
        match first.as_str() {
            "CREATE" => self.create_statement(),
            "DROP" => self.drop_statement(),
            "ALTER" => self.alter_statement(),
            "RENAME" => self.rename_statement(),
            other => Ok(Statement::Other {
                keyword: other.to_owned(),
            }),
        }
    }

    fn create_statement(&mut self) -> PResult<Statement> {
        self.expect_word("CREATE")?;
        let mut or_replace = false;
        if self.peek_word("OR") && self.peek_word_at(1, "REPLACE") {
            self.pos += 2;
            or_replace = true;
        }
        // MySQL view clutter: ALGORITHM=..., DEFINER=..., SQL SECURITY ...
        loop {
            if self.peek_word("ALGORITHM") || self.peek_word("DEFINER") {
                self.pos += 1;
                self.eat_symbol("=");
                self.bump();
                // DEFINER may be `user`@`host`
                if self.eat_symbol("@") {
                    self.bump();
                }
            } else if self.peek_word("SQL") && self.peek_word_at(1, "SECURITY") {
                self.pos += 2;
                self.bump();
            } else {
                break;
            }
        }
        if self.peek_word("TEMPORARY") || self.peek_word("TEMP") || self.peek_word("UNLOGGED") {
            // Temporary/unlogged tables are not part of the persistent
            // logical schema; skip the whole statement.
            return Ok(Statement::Other {
                keyword: "CREATE TEMPORARY".into(),
            });
        }
        if self.eat_word("TABLE") {
            return self.create_table_body().map(Statement::CreateTable);
        }
        if self.eat_word("VIEW") {
            return self.create_view_body(or_replace);
        }
        if self.eat_word("MATERIALIZED") {
            return Ok(Statement::Other {
                keyword: "CREATE MATERIALIZED VIEW".into(),
            });
        }
        let kw = self
            .peek()
            .map(|t| t.kind.text().to_ascii_uppercase())
            .unwrap_or_default();
        Ok(Statement::Other {
            keyword: format!("CREATE {kw}"),
        })
    }

    fn create_table_body(&mut self) -> PResult<CreateTable> {
        let mut if_not_exists = false;
        if self.peek_word("IF") && self.peek_word_at(1, "NOT") && self.peek_word_at(2, "EXISTS") {
            self.pos += 3;
            if_not_exists = true;
        }
        let name = self.ident()?;
        let mut out = CreateTable::new(name);
        out.if_not_exists = if_not_exists;
        // MySQL `CREATE TABLE t LIKE other`.
        if self.eat_word("LIKE") {
            out.like = Some(self.ident()?);
            return Ok(out);
        }
        // `CREATE TABLE t AS SELECT ...` — no explicit columns.
        if !self.peek().is_some_and(|t| t.is_symbol("(")) {
            return Ok(out);
        }
        self.expect_symbol("(")?;
        loop {
            if self.eat_symbol(")") {
                break;
            }
            match self.table_element()? {
                TableElement::Column(c) => out.columns.push(c),
                TableElement::Constraint(k) => out.constraints.push(k),
                TableElement::Like(source) => out.like = Some(source),
                TableElement::Ignored => {}
            }
            // Tolerate stray tokens until , or ).
            self.skip_to_element_boundary();
            if self.eat_symbol(",") {
                continue;
            }
            if self.eat_symbol(")") {
                break;
            }
            if self.at_end() || self.peek().is_some_and(|t| t.is_symbol(";")) {
                break; // unterminated list, tolerated
            }
        }
        // Table options (ENGINE=..., WITHOUT ROWID, ...) are consumed by the
        // caller's skip-to-semicolon.
        Ok(out)
    }

    fn table_element(&mut self) -> PResult<TableElement> {
        let mut constraint_name: Option<Name> = None;
        if self.eat_word("CONSTRAINT") {
            // Name is optional in some dialects (`CONSTRAINT PRIMARY KEY`).
            if !(self.peek_word("PRIMARY")
                || self.peek_word("UNIQUE")
                || self.peek_word("FOREIGN")
                || self.peek_word("CHECK"))
            {
                constraint_name = Some(self.ident()?);
            }
        }
        if self.peek_word("PRIMARY") {
            self.pos += 1;
            self.expect_word("KEY")?;
            self.skip_index_type_hint();
            let cols = self.paren_column_list()?;
            return Ok(TableElement::Constraint(TableConstraint::PrimaryKey(cols)));
        }
        if self.peek_word("UNIQUE") {
            self.pos += 1;
            let _ = self.eat_word("KEY") || self.eat_word("INDEX");
            if !self.peek().is_some_and(|t| t.is_symbol("(")) {
                let _ = self.ident(); // optional index name
            }
            self.skip_index_type_hint();
            let cols = self.paren_column_list()?;
            return Ok(TableElement::Constraint(TableConstraint::Unique(cols)));
        }
        if self.peek_word("FOREIGN") {
            self.pos += 1;
            self.expect_word("KEY")?;
            if !self.peek().is_some_and(|t| t.is_symbol("(")) {
                let _ = self.ident(); // optional index name (MySQL)
            }
            let columns = self.paren_column_list()?;
            let (ref_table, ref_columns) = self.references_clause()?;
            return Ok(TableElement::Constraint(TableConstraint::ForeignKey {
                name: constraint_name,
                columns,
                ref_table,
                ref_columns,
            }));
        }
        if self.peek_word("CHECK") {
            self.pos += 1;
            let expr = self.capture_balanced_parens()?;
            return Ok(TableElement::Constraint(TableConstraint::Check(expr)));
        }
        if self.eat_word("LIKE") {
            // PostgreSQL `(LIKE other [INCLUDING ...])`: structure copy.
            let source = self.ident()?;
            return Ok(TableElement::Like(source));
        }
        if self.peek_word("KEY")
            || self.peek_word("INDEX")
            || self.peek_word("FULLTEXT")
            || self.peek_word("SPATIAL")
            || self.peek_word("EXCLUDE")
        {
            // Physical-level elements: skipped (boundary skip handles the rest).
            self.pos += 1;
            return Ok(TableElement::Ignored);
        }
        let def = self.column_def()?;
        Ok(TableElement::Column(def))
    }

    /// Skips `USING BTREE`-style index hints.
    fn skip_index_type_hint(&mut self) {
        if self.eat_word("USING") {
            self.bump();
        }
    }

    /// Parses `( col [(n)] [ASC|DESC] , ... )`.
    fn paren_column_list(&mut self) -> PResult<Vec<Name>> {
        self.expect_symbol("(")?;
        let mut cols = Vec::new();
        loop {
            if self.eat_symbol(")") {
                break;
            }
            cols.push(self.ident()?);
            if self.peek().is_some_and(|t| t.is_symbol("(")) {
                self.skip_balanced_parens(); // prefix length `col(10)`
            }
            let _ = self.eat_word("ASC") || self.eat_word("DESC");
            if self.eat_symbol(",") {
                continue;
            }
            self.expect_symbol(")")?;
            break;
        }
        Ok(cols)
    }

    fn references_clause(&mut self) -> PResult<(Name, Vec<Name>)> {
        self.expect_word("REFERENCES")?;
        let table = self.ident()?;
        let cols = if self.peek().is_some_and(|t| t.is_symbol("(")) {
            self.paren_column_list()?
        } else {
            Vec::new()
        };
        // MATCH ... / ON DELETE ... / ON UPDATE ... / DEFERRABLE ...
        loop {
            if self.eat_word("MATCH") {
                self.bump();
            } else if self.peek_word("ON")
                && (self.peek_word_at(1, "DELETE") || self.peek_word_at(1, "UPDATE"))
            {
                self.pos += 2;
                // action: NO ACTION | SET NULL | SET DEFAULT | CASCADE | RESTRICT
                if self.eat_word("NO") {
                    let _ = self.eat_word("ACTION");
                } else {
                    let _ = self.eat_word("SET"); // SET NULL / SET DEFAULT
                    self.bump();
                }
            } else if self.eat_word("NOT") {
                let _ = self.eat_word("DEFERRABLE");
            } else if self.eat_word("DEFERRABLE") || self.eat_word("INITIALLY") {
                // INITIALLY DEFERRED/IMMEDIATE
                if self.peek_word("DEFERRED") || self.peek_word("IMMEDIATE") {
                    self.bump();
                }
            } else {
                break;
            }
        }
        Ok((table, cols))
    }

    /// Captures the raw text of a balanced `( ... )` group.
    fn capture_balanced_parens(&mut self) -> PResult<String> {
        self.expect_symbol("(")?;
        let mut depth = 1;
        let mut parts: Vec<String> = Vec::new();
        while let Some(t) = self.bump() {
            if t.is_symbol("(") {
                depth += 1;
            } else if t.is_symbol(")") {
                depth -= 1;
                if depth == 0 {
                    return Ok(parts.join(" "));
                }
            }
            parts.push(render_token(&t.kind));
        }
        Err(DdlError::new(
            DdlErrorKind::UnterminatedParens,
            self.toks.last().map_or(1, |t| t.line),
        ))
    }

    // ---- columns -------------------------------------------------------

    fn column_def(&mut self) -> PResult<ColumnDef> {
        let name = self.ident()?;
        let data_type = self.data_type()?;
        let mut def = ColumnDef::new(name, data_type);
        if is_serial_base(def.data_type.base()) {
            let mapped = match def.data_type.base() {
                "smallserial" => "smallint",
                "bigserial" => "bigint",
                _ => "integer",
            };
            def.data_type = DataType::named(mapped);
            def.auto_increment = true;
            def.not_null = true;
        }
        self.column_options(&mut def)?;
        Ok(def)
    }

    fn column_options(&mut self, def: &mut ColumnDef) -> PResult<()> {
        loop {
            if self.at_end() {
                return Ok(());
            }
            // End of this element? (FIRST/AFTER are ALTER position hints the
            // caller consumes.)
            {
                let t = self.peek().expect("not at end");
                if t.is_symbol(",")
                    || t.is_symbol(")")
                    || t.is_symbol(";")
                    || t.is_word("FIRST")
                    || t.is_word("AFTER")
                {
                    return Ok(());
                }
            }
            if self.eat_word("NOT") {
                self.expect_word("NULL")?;
                def.not_null = true;
            } else if self.eat_word("NULL") {
                def.not_null = false;
            } else if self.eat_word("DEFAULT") {
                def.default = Some(self.capture_value()?);
            } else if self.peek_word("PRIMARY") {
                self.pos += 1;
                let _ = self.eat_word("KEY");
                def.primary_key = true;
            } else if self.eat_word("UNIQUE") {
                let _ = self.eat_word("KEY");
                def.unique = true;
            } else if self.eat_word("KEY") {
                // MySQL shorthand for "indexed": physical, ignore.
            } else if self.eat_word("AUTO_INCREMENT") || self.eat_word("AUTOINCREMENT") {
                def.auto_increment = true;
            } else if self.eat_word("IDENTITY") {
                def.auto_increment = true;
                if self.peek().is_some_and(|t| t.is_symbol("(")) {
                    self.skip_balanced_parens();
                }
            } else if self.eat_word("GENERATED") {
                // GENERATED {ALWAYS | BY DEFAULT} AS IDENTITY [(...)]
                // GENERATED ALWAYS AS (expr) [STORED|VIRTUAL]
                let _ = self.eat_word("ALWAYS");
                if self.eat_word("BY") {
                    let _ = self.eat_word("DEFAULT");
                }
                let _ = self.eat_word("AS");
                if self.eat_word("IDENTITY") {
                    def.auto_increment = true;
                    if self.peek().is_some_and(|t| t.is_symbol("(")) {
                        self.skip_balanced_parens();
                    }
                } else if self.peek().is_some_and(|t| t.is_symbol("(")) {
                    self.skip_balanced_parens();
                    let _ = self.eat_word("STORED") || self.eat_word("VIRTUAL");
                }
            } else if self.eat_word("REFERENCES") {
                self.pos -= 1; // rewind: references_clause expects the keyword
                let (t, c) = self.references_clause()?;
                def.references = Some((t, c));
            } else if self.eat_word("CHECK") {
                let _ = self.capture_balanced_parens()?;
            } else if self.eat_word("COMMENT") || self.eat_word("COLLATE") {
                self.bump();
            } else if self.eat_word("CHARACTER") {
                let _ = self.eat_word("SET");
                self.bump();
            } else if self.eat_word("CHARSET") {
                self.bump();
            } else if self.peek_word("ON")
                && (self.peek_word_at(1, "UPDATE") || self.peek_word_at(1, "DELETE"))
            {
                self.pos += 2;
                let _ = self.capture_value();
            } else if self.eat_word("CONSTRAINT") {
                // Named inline constraint: remember nothing, keep parsing.
                let _ = self.ident();
            } else {
                // Unknown option: swallow one token (or a balanced group).
                if self.peek().is_some_and(|t| t.is_symbol("(")) {
                    self.skip_balanced_parens();
                } else {
                    self.bump();
                }
            }
        }
    }

    /// Captures a "value-like" expression: an optionally signed literal, a
    /// word (possibly a function call with balanced arguments), `NULL`, or a
    /// parenthesized expression. Returns its raw SQL text.
    fn capture_value(&mut self) -> PResult<String> {
        let mut parts: Vec<String> = Vec::new();
        if self
            .peek()
            .is_some_and(|t| t.is_symbol("-") || t.is_symbol("+"))
        {
            parts.push(self.bump().expect("peeked").kind.text().to_owned());
        }
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                parts.push(n);
            }
            Some(TokenKind::StringLit(s)) => {
                self.pos += 1;
                parts.push(format!("'{}'", s.replace('\'', "''")));
            }
            Some(TokenKind::Word(w)) => {
                self.pos += 1;
                parts.push(w);
                if self.peek().is_some_and(|t| t.is_symbol("(")) {
                    parts.push(format!("({})", self.capture_balanced_parens()?));
                }
            }
            Some(TokenKind::QuotedIdent(q)) => {
                self.pos += 1;
                parts.push(q);
            }
            Some(TokenKind::Symbol(ref s)) if s == "(" => {
                parts.push(format!("({})", self.capture_balanced_parens()?));
            }
            _ => {
                return Err(self.err(DdlErrorKind::ExpectedValue {
                    found: self.describe_current(),
                }))
            }
        }
        // Postgres cast suffix: DEFAULT 'x'::character varying
        while self.eat_symbol("::") {
            let mut ty = String::new();
            while let Some(t) = self.peek() {
                match &t.kind {
                    TokenKind::Word(w) => {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(w);
                        self.pos += 1;
                    }
                    TokenKind::Symbol(s) if s == "(" => {
                        let inner = self.capture_balanced_parens()?;
                        ty.push_str(&format!("({inner})"));
                    }
                    _ => break,
                }
            }
            parts.push(format!("::{ty}"));
        }
        Ok(parts.join(" "))
    }

    fn data_type(&mut self) -> PResult<DataType> {
        let first = self.ident()?;
        let mut base = first.normalized();
        // Multi-word types.
        match base.as_str() {
            "double" if self.eat_word("PRECISION") => {
                base = "double".into();
            }
            "character" | "national" => {
                if base == "national" {
                    let _ = self.eat_word("CHARACTER") || self.eat_word("CHAR");
                    base = "character".into();
                }
                if self.eat_word("VARYING") {
                    base = "varchar".into();
                } else if base == "character" {
                    base = "char".into();
                }
            }
            "char" if self.eat_word("VARYING") => {
                base = "varchar".into();
            }
            "bit" if self.eat_word("VARYING") => {
                base = "varbit".into();
            }
            "timestamp" | "time" if (self.peek_word("WITH") || self.peek_word("WITHOUT")) => {
                let with = self.eat_word("WITH");
                if !with {
                    let _ = self.eat_word("WITHOUT");
                }
                let _ = self.eat_word("TIME");
                let _ = self.eat_word("ZONE");
                if with {
                    base = format!("{base}tz");
                }
            }
            "long" => {
                if self.eat_word("VARCHAR") {
                    base = "long varchar".into();
                } else if self.eat_word("VARBINARY") {
                    base = "long varbinary".into();
                }
            }
            _ => {}
        }

        let mut params: Vec<i64> = Vec::new();
        let mut enum_values: Vec<String> = Vec::new();
        if self.peek().is_some_and(|t| t.is_symbol("(")) {
            self.pos += 1;
            loop {
                match self.peek().map(|t| t.kind.clone()) {
                    Some(TokenKind::Number(n)) => {
                        self.pos += 1;
                        if let Ok(v) = parse_num(&n) {
                            params.push(v);
                        }
                    }
                    Some(TokenKind::StringLit(s)) => {
                        self.pos += 1;
                        enum_values.push(s);
                    }
                    Some(TokenKind::Word(w)) => {
                        self.pos += 1;
                        enum_values.push(w); // e.g. `float(double)`-ish junk
                    }
                    _ => {}
                }
                if self.eat_symbol(",") {
                    continue;
                }
                if self.eat_symbol(")") {
                    break;
                }
                // Tolerate junk inside the parens.
                if self.bump().is_none() {
                    break;
                }
            }
        }

        let mut dt = DataType::with_params(base, params);
        if !enum_values.is_empty() {
            dt = dt.with_modifier(format!("values:{}", enum_values.join("|")));
        }
        loop {
            if self.eat_word("UNSIGNED") {
                dt = dt.with_modifier("unsigned");
            } else if self.eat_word("ZEROFILL") {
                dt = dt.with_modifier("zerofill");
            } else if self.peek().is_some_and(|t| t.is_symbol("["))
                && self.peek_at(1).is_some_and(|t| t.is_symbol("]"))
            {
                self.pos += 2;
                dt = dt.with_modifier("array");
            } else {
                break;
            }
        }
        Ok(dt)
    }

    // ---- other statements -----------------------------------------------

    fn create_view_body(&mut self, or_replace: bool) -> PResult<Statement> {
        let name = self.ident()?;
        if self.peek().is_some_and(|t| t.is_symbol("(")) {
            self.skip_balanced_parens();
        }
        self.expect_word("AS")?;
        let mut parts = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_symbol("(") {
                depth += 1;
            } else if t.is_symbol(")") {
                depth -= 1;
            } else if t.is_symbol(";") && depth <= 0 {
                break;
            }
            parts.push(render_token(&t.kind));
            self.pos += 1;
        }
        Ok(Statement::CreateView {
            name,
            or_replace,
            definition: parts.join(" "),
        })
    }

    fn drop_statement(&mut self) -> PResult<Statement> {
        self.expect_word("DROP")?;
        let is_view = self.peek_word("VIEW");
        if !(self.eat_word("TABLE") || self.eat_word("VIEW")) {
            let kw = self
                .peek()
                .map(|t| t.kind.text().to_ascii_uppercase())
                .unwrap_or_default();
            return Ok(Statement::Other {
                keyword: format!("DROP {kw}"),
            });
        }
        let mut if_exists = false;
        if self.peek_word("IF") && self.peek_word_at(1, "EXISTS") {
            self.pos += 2;
            if_exists = true;
        }
        let mut names = vec![self.ident()?];
        while self.eat_symbol(",") {
            names.push(self.ident()?);
        }
        if is_view {
            Ok(Statement::DropView { names })
        } else {
            Ok(Statement::DropTable { names, if_exists })
        }
    }

    fn rename_statement(&mut self) -> PResult<Statement> {
        self.expect_word("RENAME")?;
        if !self.eat_word("TABLE") {
            return Ok(Statement::Other {
                keyword: "RENAME".into(),
            });
        }
        let mut renames = Vec::new();
        loop {
            let old = self.ident()?;
            self.expect_word("TO")?;
            let new = self.ident()?;
            renames.push((old, new));
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::RenameTable { renames })
    }

    fn alter_statement(&mut self) -> PResult<Statement> {
        self.expect_word("ALTER")?;
        if !self.eat_word("TABLE") {
            let kw = self
                .peek()
                .map(|t| t.kind.text().to_ascii_uppercase())
                .unwrap_or_default();
            return Ok(Statement::Other {
                keyword: format!("ALTER {kw}"),
            });
        }
        let _ = self.eat_word("ONLY");
        if self.peek_word("IF") && self.peek_word_at(1, "EXISTS") {
            self.pos += 2;
        }
        let name = self.ident()?;
        let mut actions = Vec::new();
        loop {
            let action = self.alter_action()?;
            actions.push(action);
            // Tolerate trailing junk in the action.
            let mut depth = 0i32;
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_symbol("(") => {
                        depth += 1;
                        self.pos += 1;
                    }
                    Some(t) if t.is_symbol(")") => {
                        depth -= 1;
                        self.pos += 1;
                    }
                    Some(t) if depth == 0 && (t.is_symbol(",") || t.is_symbol(";")) => break,
                    _ => {
                        self.pos += 1;
                    }
                }
            }
            if self.eat_symbol(",") {
                continue;
            }
            break;
        }
        Ok(Statement::AlterTable { name, actions })
    }

    fn alter_action(&mut self) -> PResult<AlterAction> {
        if self.eat_word("ADD") {
            return self.alter_add();
        }
        if self.eat_word("DROP") {
            return self.alter_drop();
        }
        if self.eat_word("MODIFY") {
            let _ = self.eat_word("COLUMN");
            let def = self.column_def_in_alter()?;
            return Ok(AlterAction::ModifyColumn(def));
        }
        if self.eat_word("CHANGE") {
            let _ = self.eat_word("COLUMN");
            let old = self.ident()?;
            let def = self.column_def_in_alter()?;
            return Ok(AlterAction::ChangeColumn { old, def });
        }
        if self.eat_word("ALTER") {
            let _ = self.eat_word("COLUMN");
            let name = self.ident()?;
            if self.eat_word("TYPE") {
                let dt = self.data_type()?;
                return Ok(AlterAction::AlterColumnType {
                    name,
                    data_type: dt,
                });
            }
            if self.eat_word("SET") {
                if self.eat_word("DEFAULT") {
                    let v = self.capture_value()?;
                    return Ok(AlterAction::AlterColumnDefault {
                        name,
                        default: Some(v),
                    });
                }
                if self.eat_word("NOT") {
                    self.expect_word("NULL")?;
                    return Ok(AlterAction::AlterColumnNull {
                        name,
                        not_null: true,
                    });
                }
                if self.eat_word("DATA") {
                    self.expect_word("TYPE")?;
                    let dt = self.data_type()?;
                    return Ok(AlterAction::AlterColumnType {
                        name,
                        data_type: dt,
                    });
                }
                return Ok(AlterAction::Other("ALTER COLUMN SET ...".into()));
            }
            if self.eat_word("DROP") {
                if self.eat_word("DEFAULT") {
                    return Ok(AlterAction::AlterColumnDefault {
                        name,
                        default: None,
                    });
                }
                if self.eat_word("NOT") {
                    self.expect_word("NULL")?;
                    return Ok(AlterAction::AlterColumnNull {
                        name,
                        not_null: false,
                    });
                }
                return Ok(AlterAction::Other("ALTER COLUMN DROP ...".into()));
            }
            return Ok(AlterAction::Other("ALTER COLUMN ...".into()));
        }
        if self.eat_word("RENAME") {
            if self.eat_word("TO") || self.eat_word("AS") {
                let n = self.ident()?;
                return Ok(AlterAction::RenameTable(n));
            }
            let _ = self.eat_word("COLUMN");
            let old = self.ident()?;
            self.expect_word("TO")?;
            let new = self.ident()?;
            return Ok(AlterAction::RenameColumn { old, new });
        }
        let kw = self
            .peek()
            .map(|t| t.kind.text().to_ascii_uppercase())
            .unwrap_or_default();
        Ok(AlterAction::Other(kw))
    }

    /// Column definition inside ALTER: like [`Self::column_def`] but stops at
    /// top-level `,`/`;` (no surrounding parens) and understands
    /// `FIRST`/`AFTER` hints (consumed by the caller's boundary skip).
    fn column_def_in_alter(&mut self) -> PResult<ColumnDef> {
        self.column_def()
    }

    fn alter_add(&mut self) -> PResult<AlterAction> {
        let mut constraint_name: Option<Name> = None;
        if self.eat_word("CONSTRAINT") {
            constraint_name = Some(self.ident()?);
        }
        if self.peek_word("PRIMARY") {
            self.pos += 1;
            self.expect_word("KEY")?;
            self.skip_index_type_hint();
            let cols = self.paren_column_list()?;
            return Ok(AlterAction::AddConstraint(TableConstraint::PrimaryKey(
                cols,
            )));
        }
        if self.peek_word("UNIQUE") {
            self.pos += 1;
            let _ = self.eat_word("KEY") || self.eat_word("INDEX");
            if !self.peek().is_some_and(|t| t.is_symbol("(")) {
                let _ = self.ident();
            }
            let cols = self.paren_column_list()?;
            return Ok(AlterAction::AddConstraint(TableConstraint::Unique(cols)));
        }
        if self.peek_word("FOREIGN") {
            self.pos += 1;
            self.expect_word("KEY")?;
            if !self.peek().is_some_and(|t| t.is_symbol("(")) {
                let _ = self.ident();
            }
            let columns = self.paren_column_list()?;
            let (ref_table, ref_columns) = self.references_clause()?;
            return Ok(AlterAction::AddConstraint(TableConstraint::ForeignKey {
                name: constraint_name,
                columns,
                ref_table,
                ref_columns,
            }));
        }
        if self.peek_word("CHECK") {
            self.pos += 1;
            let expr = self.capture_balanced_parens()?;
            return Ok(AlterAction::AddConstraint(TableConstraint::Check(expr)));
        }
        if self.peek_word("INDEX")
            || self.peek_word("KEY")
            || self.peek_word("FULLTEXT")
            || self.peek_word("SPATIAL")
        {
            return Ok(AlterAction::Other("ADD INDEX".into()));
        }
        let _ = self.eat_word("COLUMN");
        if self.peek_word("IF") && self.peek_word_at(1, "NOT") && self.peek_word_at(2, "EXISTS") {
            self.pos += 3;
        }
        let def = self.column_def_in_alter()?;
        let mut position = None;
        if self.eat_word("FIRST") {
            position = Some(None);
        } else if self.eat_word("AFTER") {
            position = Some(Some(self.ident()?));
        }
        Ok(AlterAction::AddColumn { def, position })
    }

    fn alter_drop(&mut self) -> PResult<AlterAction> {
        if self.peek_word("PRIMARY") {
            self.pos += 1;
            self.expect_word("KEY")?;
            return Ok(AlterAction::DropPrimaryKey);
        }
        if self.eat_word("FOREIGN") {
            self.expect_word("KEY")?;
            let n = self.ident()?;
            return Ok(AlterAction::DropForeignKey(n));
        }
        if self.eat_word("CONSTRAINT") {
            if self.peek_word("IF") && self.peek_word_at(1, "EXISTS") {
                self.pos += 2;
            }
            let n = self.ident()?;
            return Ok(AlterAction::DropConstraint(n));
        }
        if self.eat_word("INDEX") || self.eat_word("KEY") {
            let _ = self.ident();
            return Ok(AlterAction::Other("DROP INDEX".into()));
        }
        let _ = self.eat_word("COLUMN");
        if self.peek_word("IF") && self.peek_word_at(1, "EXISTS") {
            self.pos += 2;
        }
        let n = self.ident()?;
        // CASCADE / RESTRICT swallowed by boundary skip.
        Ok(AlterAction::DropColumn(n))
    }
}

enum TableElement {
    Column(ColumnDef),
    Constraint(TableConstraint),
    Like(Name),
    Ignored,
}

fn is_serial_base(base: &str) -> bool {
    matches!(
        base,
        "serial" | "bigserial" | "smallserial" | "serial4" | "serial8" | "serial2"
    )
}

fn parse_num(text: &str) -> Result<i64, ()> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).map_err(|_| ());
    }
    if let Ok(v) = text.parse::<i64>() {
        return Ok(v);
    }
    text.parse::<f64>().map(|f| f as i64).map_err(|_| ())
}

/// Renders a token back to SQL-ish text (for captured raw expressions).
fn render_token(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Word(w) => w.clone(),
        TokenKind::QuotedIdent(q) => format!("\"{q}\""),
        TokenKind::StringLit(s) => format!("'{}'", s.replace('\'', "''")),
        TokenKind::Number(n) => n.clone(),
        TokenKind::Symbol(s) => s.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(sql: &str) -> Statement {
        let (stmts, _diags) = parse_statements(sql);
        assert_eq!(
            stmts.len(),
            1,
            "expected one statement from {sql:?}: {stmts:?}"
        );
        stmts.into_iter().next().unwrap()
    }

    fn create(sql: &str) -> CreateTable {
        match one(sql) {
            Statement::CreateTable(c) => c,
            other => panic!("expected CREATE TABLE, got {other:?}"),
        }
    }

    #[test]
    fn minimal_create_table() {
        let c = create("CREATE TABLE t (a INT, b TEXT);");
        assert_eq!(c.name, Name::from("t"));
        assert_eq!(c.columns.len(), 2);
        assert_eq!(c.columns[0].data_type, DataType::named("int"));
        assert!(!c.if_not_exists);
    }

    #[test]
    fn if_not_exists_and_schema_qualified_name() {
        let c = create("CREATE TABLE IF NOT EXISTS mydb.users (id INT);");
        assert!(c.if_not_exists);
        assert_eq!(c.name, Name::from("users"));
    }

    #[test]
    fn column_options_full_mysql() {
        let c = create(
            "CREATE TABLE `p` (
                `id` int(11) NOT NULL AUTO_INCREMENT,
                `name` varchar(100) NOT NULL DEFAULT '' COMMENT 'who',
                `bal` decimal(10,2) unsigned DEFAULT 0.00,
                `ts` timestamp NOT NULL DEFAULT CURRENT_TIMESTAMP ON UPDATE CURRENT_TIMESTAMP,
                PRIMARY KEY (`id`),
                UNIQUE KEY uq_name (`name`),
                KEY idx_bal (`bal`)
            ) ENGINE=InnoDB AUTO_INCREMENT=17 DEFAULT CHARSET=utf8;",
        );
        assert_eq!(c.columns.len(), 4);
        let id = &c.columns[0];
        assert!(id.not_null && id.auto_increment);
        assert_eq!(id.data_type, DataType::with_params("int", vec![11]));
        let name = &c.columns[1];
        assert_eq!(name.default.as_deref(), Some("''"));
        let bal = &c.columns[2];
        assert_eq!(
            bal.data_type,
            DataType::with_params("decimal", vec![10, 2]).with_modifier("unsigned")
        );
        // PK + UNIQUE captured; plain KEY ignored.
        assert_eq!(c.constraints.len(), 2);
        assert_eq!(
            c.constraints[0],
            TableConstraint::PrimaryKey(vec![Name::from("id")])
        );
    }

    #[test]
    fn postgres_flavour() {
        let c = create(
            r#"CREATE TABLE accounts (
                id BIGSERIAL PRIMARY KEY,
                email character varying(255) NOT NULL UNIQUE,
                created timestamp with time zone DEFAULT now(),
                meta jsonb,
                tags text[]
            );"#,
        );
        let id = &c.columns[0];
        assert_eq!(id.data_type, DataType::named("bigint"));
        assert!(id.auto_increment && id.not_null && id.primary_key);
        assert_eq!(
            c.columns[1].data_type,
            DataType::with_params("varchar", vec![255])
        );
        assert_eq!(c.columns[2].data_type, DataType::named("timestamptz"));
        assert_eq!(c.columns[2].default.as_deref(), Some("now ()"));
        assert_eq!(
            c.columns[4].data_type,
            DataType::named("text").with_modifier("array")
        );
    }

    #[test]
    fn foreign_keys_inline_and_table_level() {
        let c = create(
            "CREATE TABLE orders (
                id INT PRIMARY KEY,
                cust_id INT REFERENCES customers(id) ON DELETE CASCADE,
                item_id INT,
                CONSTRAINT fk_item FOREIGN KEY (item_id) REFERENCES items (id) ON UPDATE SET NULL
            );",
        );
        assert_eq!(
            c.columns[1].references,
            Some((Name::from("customers"), vec![Name::from("id")]))
        );
        match &c.constraints[0] {
            TableConstraint::ForeignKey {
                name,
                columns,
                ref_table,
                ref_columns,
            } => {
                assert_eq!(name.as_ref().unwrap(), &Name::from("fk_item"));
                assert_eq!(columns, &vec![Name::from("item_id")]);
                assert_eq!(ref_table, &Name::from("items"));
                assert_eq!(ref_columns, &vec![Name::from("id")]);
            }
            other => panic!("expected FK, got {other:?}"),
        }
    }

    #[test]
    fn enum_type_values_become_modifier() {
        let c = create("CREATE TABLE t (status ENUM('on','off') NOT NULL);");
        let dt = &c.columns[0].data_type;
        assert_eq!(dt.base(), "enum");
        assert_eq!(dt.modifiers(), ["values:on|off"]);
    }

    #[test]
    fn check_constraints_captured_raw() {
        let c = create("CREATE TABLE t (x INT, CHECK (x > 0 AND x < 10));");
        assert_eq!(
            c.constraints[0],
            TableConstraint::Check("x > 0 AND x < 10".into())
        );
    }

    #[test]
    fn drop_table_multi_and_if_exists() {
        match one("DROP TABLE IF EXISTS a, b CASCADE;") {
            Statement::DropTable { names, if_exists } => {
                assert!(if_exists);
                assert_eq!(names, vec![Name::from("a"), Name::from("b")]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alter_table_add_drop_modify() {
        match one("ALTER TABLE t ADD COLUMN c1 INT NOT NULL DEFAULT 0 AFTER a,
             DROP COLUMN old_col,
             MODIFY COLUMN c2 BIGINT,
             ADD CONSTRAINT fk FOREIGN KEY (c1) REFERENCES p (id);")
        {
            Statement::AlterTable { name, actions } => {
                assert_eq!(name, Name::from("t"));
                assert_eq!(actions.len(), 4);
                assert!(matches!(
                    &actions[0],
                    AlterAction::AddColumn { def, position: Some(Some(p)) }
                        if def.name == Name::from("c1") && *p == Name::from("a")
                ));
                assert!(
                    matches!(&actions[1], AlterAction::DropColumn(n) if *n == Name::from("old_col"))
                );
                assert!(
                    matches!(&actions[2], AlterAction::ModifyColumn(d) if d.data_type == DataType::named("bigint"))
                );
                assert!(matches!(
                    &actions[3],
                    AlterAction::AddConstraint(TableConstraint::ForeignKey { .. })
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alter_column_postgres_forms() {
        match one("ALTER TABLE t
               ALTER COLUMN a TYPE varchar(50),
               ALTER COLUMN b SET DEFAULT 5,
               ALTER COLUMN c DROP NOT NULL,
               RENAME COLUMN d TO e;")
        {
            Statement::AlterTable { actions, .. } => {
                assert!(
                    matches!(&actions[0], AlterAction::AlterColumnType { data_type, .. }
                    if *data_type == DataType::with_params("varchar", vec![50]))
                );
                assert!(
                    matches!(&actions[1], AlterAction::AlterColumnDefault { default: Some(d), .. } if d == "5")
                );
                assert!(matches!(
                    &actions[2],
                    AlterAction::AlterColumnNull {
                        not_null: false,
                        ..
                    }
                ));
                assert!(matches!(&actions[3], AlterAction::RenameColumn { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mysql_change_column() {
        match one("ALTER TABLE t CHANGE old_name new_name VARCHAR(40) NOT NULL;") {
            Statement::AlterTable { actions, .. } => match &actions[0] {
                AlterAction::ChangeColumn { old, def } => {
                    assert_eq!(*old, Name::from("old_name"));
                    assert_eq!(def.name, Name::from("new_name"));
                    assert!(def.not_null);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rename_table_statement() {
        match one("RENAME TABLE a TO b, c TO d;") {
            Statement::RenameTable { renames } => {
                assert_eq!(renames.len(), 2);
                assert_eq!(renames[0], (Name::from("a"), Name::from("b")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_view_captures_definition() {
        match one("CREATE OR REPLACE VIEW v AS SELECT a, b FROM t WHERE a > 0;") {
            Statement::CreateView {
                name,
                or_replace,
                definition,
            } => {
                assert_eq!(name, Name::from("v"));
                assert!(or_replace);
                assert!(definition.contains("SELECT a , b FROM t"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn noise_statements_are_skipped_not_errors() {
        let (stmts, diags) = parse_statements(
            "SET NAMES utf8;
             INSERT INTO t VALUES (1, 'a'), (2, 'b');
             CREATE INDEX idx ON t (a);
             CREATE TABLE real_one (x INT);",
        );
        assert_eq!(stmts.len(), 4);
        assert!(matches!(&stmts[3], Statement::CreateTable(_)));
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| !d.is_error()));
    }

    #[test]
    fn recovery_after_broken_statement() {
        let (stmts, diags) = parse_statements(
            "CREATE TABLE broken (a INT,,);
             CREATE TABLE ok (b INT);",
        );
        // The broken one may parse partially or error; the good one must land.
        assert!(stmts
            .iter()
            .any(|s| matches!(s, Statement::CreateTable(c) if c.name == Name::from("ok"))));
        let _ = diags;
    }

    #[test]
    fn garbage_does_not_panic_or_loop() {
        // The point is termination without panic; diagnostics are expected.
        let (_s, d) = parse_statements(");;;(((''\"\" CREATE ALTER DROP 42 -- x");
        assert!(!d.is_empty());
    }

    #[test]
    fn composite_primary_key_with_lengths_and_order() {
        let c = create("CREATE TABLE t (a VARCHAR(10), b INT, PRIMARY KEY (a(5) DESC, b ASC));");
        assert_eq!(
            c.constraints[0],
            TableConstraint::PrimaryKey(vec![Name::from("a"), Name::from("b")])
        );
    }

    #[test]
    fn default_with_cast_suffix() {
        let c = create("CREATE TABLE t (s varchar(10) DEFAULT 'x'::character varying);");
        assert_eq!(
            c.columns[0].default.as_deref(),
            Some("'x' ::character varying")
        );
    }

    #[test]
    fn temporary_tables_are_skipped() {
        let (stmts, _d) = parse_statements("CREATE TEMPORARY TABLE tt (x INT);");
        assert!(matches!(&stmts[0], Statement::Other { .. }));
    }

    #[test]
    fn negative_default() {
        let c = create("CREATE TABLE t (x INT DEFAULT -1);");
        assert_eq!(c.columns[0].default.as_deref(), Some("- 1"));
    }

    #[test]
    fn sqlite_autoincrement() {
        let c = create("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT);");
        assert!(c.columns[0].auto_increment);
        assert!(c.columns[0].primary_key);
    }
}
