//! Performance benchmarks for the measurement pipeline itself:
//! DDL parsing throughput, schema diffing, heartbeat construction, metric
//! extraction and corpus-scale classification.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_corpus::Corpus;
use schemachron_ddl::parse_schema;
use schemachron_history::{Date, ProjectHistoryBuilder};
use schemachron_model::diff;

/// Builds a realistic multi-table dump of `n` tables.
fn synthetic_dump(n: usize) -> String {
    let mut sql = String::new();
    for i in 0..n {
        sql.push_str(&format!(
            "CREATE TABLE `table_{i}` (\n\
             id INT NOT NULL AUTO_INCREMENT,\n\
             name VARCHAR(255) NOT NULL DEFAULT '',\n\
             amount DECIMAL(10,2) unsigned DEFAULT 0.00,\n\
             created TIMESTAMP NOT NULL DEFAULT CURRENT_TIMESTAMP,\n\
             owner_id INT REFERENCES table_0 (id),\n\
             notes TEXT,\n\
             PRIMARY KEY (id),\n\
             UNIQUE KEY uq_{i} (name),\n\
             KEY idx_{i} (owner_id)\n\
             ) ENGINE=InnoDB DEFAULT CHARSET=utf8;\n\
             INSERT INTO table_{i} VALUES (1, 'x', 0, NOW(), NULL, NULL);\n"
        ));
    }
    sql
}

fn bench_ddl_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("ddl_parse");
    for &n in &[10usize, 100] {
        let sql = synthetic_dump(n);
        g.throughput(Throughput::Bytes(sql.len() as u64));
        g.bench_function(format!("dump_{n}_tables"), |b| {
            b.iter(|| parse_schema(std::hint::black_box(&sql)))
        });
    }
    g.finish();
}

fn bench_schema_diff(c: &mut Criterion) {
    let (old, _) = parse_schema(&synthetic_dump(100));
    let mut sql = synthetic_dump(100);
    sql.push_str("ALTER TABLE table_3 ADD COLUMN extra INT;\nDROP TABLE table_7;\n");
    let (new, _) = {
        let mut b = schemachron_ddl::SchemaBuilder::new();
        b.apply_script(&sql);
        b.finish()
    };
    c.bench_function("schema_diff/100_tables", |b| {
        b.iter(|| diff(std::hint::black_box(&old), std::hint::black_box(&new)))
    });
}

fn bench_heartbeat_build(c: &mut Criterion) {
    // A 60-month migration history with monthly schema and source commits.
    let scripts: Vec<(Date, String)> = (0..60u32)
        .map(|m| {
            let d = Date::new(2015 + (m / 12) as i32, (m % 12 + 1) as u8, 5);
            let sql = if m == 0 {
                synthetic_dump(10)
            } else {
                format!("ALTER TABLE table_1 ADD COLUMN col_{m} INT;")
            };
            (d, sql)
        })
        .collect();
    c.bench_function("heartbeat_build/60_months", |b| {
        b.iter_batched(
            || scripts.clone(),
            |scripts| {
                let mut pb = ProjectHistoryBuilder::new("bench");
                for (d, sql) in scripts {
                    pb.migration(d, sql);
                    pb.source_commit(d, 100.0);
                }
                pb.build()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_metrics_and_classify(c: &mut Criterion) {
    let corpus = Corpus::generate(42);
    c.bench_function("metrics/per_project", |b| {
        b.iter(|| {
            corpus
                .projects()
                .iter()
                .filter_map(|p| TimeMetrics::from_project(std::hint::black_box(&p.history)))
                .count()
        })
    });
    let metrics: Vec<TimeMetrics> = corpus
        .projects()
        .iter()
        .map(|p| p.metrics.clone())
        .collect();
    c.bench_function("classify/151_projects", |b| {
        b.iter(|| {
            metrics
                .iter()
                .map(|m| schemachron_core::classify(&Labels::from_metrics(m)))
                .filter(Option::is_some)
                .count()
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("generate_corpus_151", |b| b.iter(|| Corpus::generate(42)));
    g.bench_function("generate_corpus_500_scaled", |b| {
        b.iter(|| Corpus::generate_scaled(42, 500))
    });
    g.finish();
}

fn bench_parallel_generate(c: &mut Criterion) {
    // Exercise the worker pool even on a single-core host. The jobs × size
    // throughput grid (and the `BENCH_pipeline.json` it writes) lives in
    // the `par_bench` binary, which also records the host's detected cores
    // and the effective worker count per point.
    let jobs = schemachron_corpus::effective_jobs().max(2);

    let mut g = c.benchmark_group("parallel_generate");
    g.sample_size(10);
    g.throughput(Throughput::Elements(151));
    g.bench_function("serial_151", |b| {
        b.iter(|| Corpus::generate_jobs(std::hint::black_box(42), 1))
    });
    g.bench_function(format!("parallel_151_j{jobs}"), |b| {
        b.iter(|| Corpus::generate_jobs(std::hint::black_box(42), jobs))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ddl_parse,
    bench_schema_diff,
    bench_heartbeat_build,
    bench_metrics_and_classify,
    bench_end_to_end,
    bench_parallel_generate
);
criterion_main!(benches);
