//! The checkpointed as-of index: O(log n) lookup of any month's schema.
//!
//! # Layout and cost model
//!
//! The index stores the project's version transitions as appliable
//! [`VersionDelta`]s plus **snapshot checkpoints** of the full schema at
//! months `birth, birth + K, birth + 2K, …` (K configurable, default
//! [`DEFAULT_K_MONTHS`]). A lookup for month `m` binary-searches the
//! checkpoint list for the greatest checkpoint month `c ≤ m` — O(log n) —
//! and replays the deltas in `(c, m]`. Because the next checkpoint sits at
//! `c + K`, the replay window spans at most `K − 1` months of deltas; K
//! therefore dials memory (checkpoint count) against lookup latency (replay
//! length), with `K = usize::MAX` degenerating to a single birth checkpoint
//! and full replay.
//!
//! Answers are shared, not copied: every month between two consecutive
//! versions has the *same* schema, so lookups return [`Arc<Schema>`] and the
//! index memoizes each materialized replay state (keyed by how many deltas
//! are folded in — at most one entry per version). A warm lookup is a
//! binary search plus an `Arc` clone; the `K − 1`-month replay is paid only
//! the first time a state is materialized.

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use schemachron_history::{MonthId, ProjectHistory};
use schemachron_model::{diff, Schema, SchemaDiff};

use crate::delta::VersionDelta;

/// Default checkpoint spacing in months: one snapshot per year of history.
pub const DEFAULT_K_MONTHS: usize = 12;

/// One snapshot checkpoint: the full schema as of `month`.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The month this snapshot is valid for (inclusive).
    pub month: MonthId,
    /// Number of leading deltas folded into `schema` — replay for a query
    /// month `m ≥ month` resumes at this delta index.
    pub deltas_applied: usize,
    /// The full schema as of `month`, shared with every lookup that lands
    /// exactly on this replay state.
    pub schema: Arc<Schema>,
}

/// A queryable temporal index over one project's schema history.
#[derive(Debug)]
pub struct AsOfIndex {
    project: String,
    k_months: usize,
    start: MonthId,
    months: usize,
    deltas: Vec<VersionDelta>,
    checkpoints: Vec<Checkpoint>,
    /// Materialized replay states keyed by how many leading deltas they fold
    /// in (a month's schema is fully determined by that count). At most one
    /// entry per version plus the pre-birth empty state, so the memo is
    /// bounded by the delta list — not by lifespan length or query volume.
    memo: RwLock<HashMap<usize, Arc<Schema>>>,
}

impl AsOfIndex {
    /// Builds the index from a project history with checkpoints every
    /// `k_months` (clamped to at least 1). Returns `None` when the history
    /// retains no schema versions to index.
    pub fn build(history: &ProjectHistory, k_months: usize) -> Option<AsOfIndex> {
        let schema_history = history.schema_history()?;
        let versions = schema_history.versions();
        if versions.is_empty() {
            return None;
        }
        let k_months = k_months.max(1);

        let mut deltas = Vec::with_capacity(versions.len());
        let mut prev = Schema::default();
        for version in versions {
            deltas.push(VersionDelta::between(&prev, version));
            prev.clone_from(&version.schema);
        }

        // Checkpoints at birth, birth+K, …, capped at the last delta month
        // (later checkpoints would duplicate the final schema for free
        // replays anyway). `checked_add` guards K = usize::MAX.
        let birth = deltas[0].month;
        let last = deltas[deltas.len() - 1].month;
        let step = i32::try_from(k_months).unwrap_or(i32::MAX);
        let mut checkpoints = Vec::new();
        let mut schema = Schema::default();
        let mut applied = 0;
        let mut at = birth;
        loop {
            while applied < deltas.len() && deltas[applied].month <= at {
                deltas[applied].apply(&mut schema);
                applied += 1;
            }
            checkpoints.push(Checkpoint {
                month: at,
                deltas_applied: applied,
                schema: Arc::new(schema.clone()),
            });
            match at.0.checked_add(step) {
                Some(next) if next <= last.0 => at = MonthId(next),
                _ => break,
            }
        }

        Some(AsOfIndex {
            project: history.name().to_owned(),
            k_months,
            start: history.start(),
            months: history.month_count(),
            deltas,
            checkpoints,
            memo: RwLock::new(HashMap::new()),
        })
    }

    /// The indexed project's name.
    pub fn project(&self) -> &str {
        &self.project
    }

    /// The checkpoint spacing the index was built with.
    pub fn k_months(&self) -> usize {
        self.k_months
    }

    /// First month of the project's observed lifespan (the PUP start).
    pub fn start(&self) -> MonthId {
        self.start
    }

    /// Number of months in the observed lifespan.
    pub fn months(&self) -> usize {
        self.months
    }

    /// Last month of the observed lifespan (inclusive).
    pub fn last_month(&self) -> MonthId {
        self.start.plus(self.months.saturating_sub(1) as i32)
    }

    /// Whether `m` falls inside the observed lifespan.
    pub fn in_lifespan(&self, m: MonthId) -> bool {
        m >= self.start && m <= self.last_month()
    }

    /// Number of stored snapshot checkpoints.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Number of stored version deltas.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// The full logical schema as of month `m`: the state after every
    /// version committed in or before `m`. Returns `None` outside the
    /// observed lifespan; months inside the lifespan but before the first
    /// schema version yield the empty schema.
    ///
    /// Cost: one binary search plus an `Arc` clone once the queried replay
    /// state has been materialized (by a checkpoint or an earlier lookup);
    /// first contact with a state replays at most `K − 1` months of deltas
    /// from the nearest checkpoint at or before `m`.
    pub fn schema_as_of(&self, m: MonthId) -> Option<Arc<Schema>> {
        if !self.in_lifespan(m) {
            return None;
        }
        // The schema at m is fully determined by how many deltas precede it.
        let upto = self.deltas.partition_point(|d| d.month <= m);
        {
            let memo = self.memo.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(hit) = memo.get(&upto) {
                return Some(Arc::clone(hit));
            }
        }
        let at = self.checkpoints.partition_point(|cp| cp.month <= m);
        let shared = match at.checked_sub(1) {
            // Inside the lifespan but before the first version: no schema yet.
            None => Arc::new(Schema::default()),
            Some(i) if self.checkpoints[i].deltas_applied == upto => {
                // Checkpoint-aligned state: share the snapshot itself.
                Arc::clone(&self.checkpoints[i].schema)
            }
            Some(i) => {
                let mut schema = (*self.checkpoints[i].schema).clone();
                for delta in &self.deltas[self.checkpoints[i].deltas_applied..upto] {
                    delta.apply(&mut schema);
                }
                Arc::new(schema)
            }
        };
        self.memo
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(upto)
            .or_insert_with(|| Arc::clone(&shared));
        Some(shared)
    }

    /// Naive baseline: the schema as of `m` by replaying **every** delta
    /// from birth, ignoring checkpoints. Same result as
    /// [`AsOfIndex::schema_as_of`] by construction; exists as the
    /// property-test oracle and the cold side of `asof_bench`.
    pub fn schema_by_full_replay(&self, m: MonthId) -> Option<Schema> {
        if !self.in_lifespan(m) {
            return None;
        }
        let mut schema = Schema::default();
        for delta in &self.deltas {
            if delta.month > m {
                break;
            }
            delta.apply(&mut schema);
        }
        Some(schema)
    }

    /// The point-in-time diff between the schemas as of two months (in
    /// `schemachron-model`'s diff taxonomy). `None` when either month is
    /// outside the lifespan.
    pub fn diff_between(&self, from: MonthId, to: MonthId) -> Option<SchemaDiff> {
        let old = self.schema_as_of(from)?;
        let new = self.schema_as_of(to)?;
        Some(diff(&old, &new))
    }

    /// The stored version deltas, chronological — the raw material for
    /// provenance queries.
    pub(crate) fn deltas(&self) -> &[VersionDelta] {
        &self.deltas
    }

    /// The final schema (the last version's state).
    pub(crate) fn final_schema(&self) -> Schema {
        // The last checkpoint has every delta up to its month applied;
        // replay whatever tail remains.
        let Some(last) = self.checkpoints.last() else {
            return Schema::default();
        };
        let mut schema = (*last.schema).clone();
        for delta in &self.deltas[last.deltas_applied..] {
            delta.apply(&mut schema);
        }
        schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::{Date, ProjectHistoryBuilder};

    fn history() -> ProjectHistory {
        let mut b = ProjectHistoryBuilder::new("demo");
        b.snapshot(Date::new(2020, 1, 10), "CREATE TABLE t (a INT);");
        b.snapshot(Date::new(2020, 4, 2), "CREATE TABLE t (a INT, b INT);");
        b.snapshot(
            Date::new(2021, 2, 20),
            "CREATE TABLE t (a INT, b INT); CREATE TABLE u (x INT);",
        );
        b.source_commit(Date::new(2019, 11, 5), 10.0);
        b.source_commit(Date::new(2021, 6, 5), 10.0);
        b.build()
    }

    #[test]
    fn checkpoints_every_k_months_from_birth() {
        let h = history();
        let idx = AsOfIndex::build(&h, 12).unwrap();
        // Birth 2020-01, last version 2021-02 → checkpoints at 2020-01 and
        // 2021-01.
        assert_eq!(idx.checkpoint_count(), 2);
        let one = AsOfIndex::build(&h, usize::MAX).unwrap();
        assert_eq!(one.checkpoint_count(), 1, "K=MAX keeps only the birth snapshot");
    }

    #[test]
    fn as_of_reports_the_state_after_each_version() {
        let h = history();
        let idx = AsOfIndex::build(&h, 12).unwrap();
        // PUP starts at the earliest source commit, before any version.
        assert_eq!(idx.start(), MonthId::from_ym(2019, 11));
        let empty = idx.schema_as_of(MonthId::from_ym(2019, 12)).unwrap();
        assert!(empty.is_empty(), "lifespan months before birth are empty");
        let v1 = idx.schema_as_of(MonthId::from_ym(2020, 2)).unwrap();
        assert_eq!(v1.table_count(), 1);
        assert_eq!(v1.attribute_count(), 1);
        let last = idx.schema_as_of(idx.last_month()).unwrap();
        assert_eq!(last.table_count(), 2);
        // Outside the lifespan on both sides: no answer.
        assert!(idx.schema_as_of(MonthId::from_ym(2019, 10)).is_none());
        assert!(idx.schema_as_of(MonthId::from_ym(2021, 7)).is_none());
    }

    #[test]
    fn checkpoint_lookup_equals_full_replay_for_every_month() {
        let h = history();
        for k in [1usize, 3, 12, usize::MAX] {
            let idx = AsOfIndex::build(&h, k).unwrap();
            let mut m = idx.start();
            while m <= idx.last_month() {
                assert_eq!(
                    idx.schema_as_of(m).as_deref(),
                    idx.schema_by_full_replay(m).as_ref(),
                    "K={k} month {m}"
                );
                m = m.plus(1);
            }
        }
    }

    #[test]
    fn repeated_lookups_share_one_materialized_schema() {
        let h = history();
        let idx = AsOfIndex::build(&h, 12).unwrap();
        let a = idx.schema_as_of(MonthId::from_ym(2020, 6)).unwrap();
        let b = idx.schema_as_of(MonthId::from_ym(2020, 6)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "warm lookups are Arc clones, not replays");
        // Months between the same two versions resolve to the same state.
        let c = idx.schema_as_of(MonthId::from_ym(2020, 9)).unwrap();
        assert!(Arc::ptr_eq(&a, &c), "same replay state, same allocation");
    }

    #[test]
    fn diff_between_months_uses_the_model_taxonomy() {
        let h = history();
        let idx = AsOfIndex::build(&h, 12).unwrap();
        let d = idx
            .diff_between(MonthId::from_ym(2020, 2), MonthId::from_ym(2021, 3))
            .unwrap();
        assert_eq!(d.tables_added.len(), 1, "u appeared");
        assert_eq!(d.attribute_change_count(), 2, "b injected, x born");
        // Reverse direction inverts the story.
        let rev = idx
            .diff_between(MonthId::from_ym(2021, 3), MonthId::from_ym(2020, 2))
            .unwrap();
        assert_eq!(rev.tables_dropped.len(), 1);
    }

    #[test]
    fn no_schema_history_means_no_index() {
        let mut b = ProjectHistoryBuilder::new("src-only");
        b.source_commit(Date::new(2020, 1, 1), 5.0);
        assert!(AsOfIndex::build(&b.build(), 12).is_none());
    }
}
