//! The §3.3 quantization of time-related metrics into ordinal labels.
//!
//! The label limits are exactly those of Table 1 of the paper. Extreme
//! values carry their own semantics: `0` means "at the originating version
//! V⁰ₚ" (or "no time at all"), `1` means "the full project life" (or "the
//! entire activity").

use serde::{Deserialize, Serialize};

use crate::metrics::TimeMetrics;

/// Volume of schema activity at birth, as % of total change.
/// Limits: Low ≤ 0.25 < Fair ≤ 0.75 < High < 1 = Full.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BirthVolumeClass {
    /// ≤ 25% of total activity at birth.
    Low,
    /// (25%, 75%].
    Fair,
    /// (75%, 100%).
    High,
    /// Exactly 100% — all change happened at birth.
    Full,
}

impl BirthVolumeClass {
    /// Quantizes a `[0, 1]` fraction.
    pub fn of(v: f64) -> Self {
        if v >= 1.0 {
            BirthVolumeClass::Full
        } else if v > 0.75 {
            BirthVolumeClass::High
        } else if v > 0.25 {
            BirthVolumeClass::Fair
        } else {
            BirthVolumeClass::Low
        }
    }

    /// All values in ordinal order.
    pub const ALL: [BirthVolumeClass; 4] = [
        BirthVolumeClass::Low,
        BirthVolumeClass::Fair,
        BirthVolumeClass::High,
        BirthVolumeClass::Full,
    ];

    /// Ordinal code (0-based).
    pub fn ordinal(self) -> u8 {
        self as u8
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            BirthVolumeClass::Low => "low",
            BirthVolumeClass::Fair => "fair",
            BirthVolumeClass::High => "high",
            BirthVolumeClass::Full => "full",
        }
    }
}

/// A time point as % of the PUP. Limits: V⁰ = 0 < Early ≤ 0.25 <
/// Middle ≤ 0.75 < Late.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimepointClass {
    /// Exactly at the originating version (month 0).
    V0,
    /// (0%, 25%] of the PUP.
    Early,
    /// (25%, 75%].
    Middle,
    /// > 75%.
    Late,
}

impl TimepointClass {
    /// Quantizes a `[0, 1]` time fraction.
    pub fn of(t: f64) -> Self {
        if t <= 0.0 {
            TimepointClass::V0
        } else if t <= 0.25 {
            TimepointClass::Early
        } else if t <= 0.75 {
            TimepointClass::Middle
        } else {
            TimepointClass::Late
        }
    }

    /// All values in ordinal order.
    pub const ALL: [TimepointClass; 4] = [
        TimepointClass::V0,
        TimepointClass::Early,
        TimepointClass::Middle,
        TimepointClass::Late,
    ];

    /// Ordinal code (0-based).
    pub fn ordinal(self) -> u8 {
        self as u8
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            TimepointClass::V0 => "V0",
            TimepointClass::Early => "early",
            TimepointClass::Middle => "middle",
            TimepointClass::Late => "late",
        }
    }
}

/// The birth→top-band interval as % of PUP. Limits: Zero = 0 < Soon ≤ 0.1 <
/// Fair ≤ 0.35 < Long ≤ 0.75 < VeryLong.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IntervalClass {
    /// Exactly zero time.
    Zero,
    /// (0%, 10%].
    Soon,
    /// (10%, 35%].
    Fair,
    /// (35%, 75%].
    Long,
    /// > 75%.
    VeryLong,
}

impl IntervalClass {
    /// Quantizes a `[0, 1]` interval fraction.
    pub fn of(t: f64) -> Self {
        if t <= 0.0 {
            IntervalClass::Zero
        } else if t <= 0.10 {
            IntervalClass::Soon
        } else if t <= 0.35 {
            IntervalClass::Fair
        } else if t <= 0.75 {
            IntervalClass::Long
        } else {
            IntervalClass::VeryLong
        }
    }

    /// All values in ordinal order.
    pub const ALL: [IntervalClass; 5] = [
        IntervalClass::Zero,
        IntervalClass::Soon,
        IntervalClass::Fair,
        IntervalClass::Long,
        IntervalClass::VeryLong,
    ];

    /// Ordinal code (0-based).
    pub fn ordinal(self) -> u8 {
        self as u8
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            IntervalClass::Zero => "zero",
            IntervalClass::Soon => "soon",
            IntervalClass::Fair => "fair",
            IntervalClass::Long => "long",
            IntervalClass::VeryLong => "vlong",
        }
    }
}

/// The top-band→end interval (the inactivity *tail*) as % of PUP.
/// Limits: Soon ≤ 0.25 < Fair ≤ 0.75 < Long < 1 = Full.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TailClass {
    /// ≤ 25% — the project reached the top band late.
    Soon,
    /// (25%, 75%].
    Fair,
    /// (75%, 100%).
    Long,
    /// Exactly the full PUP — top band at V⁰.
    Full,
}

impl TailClass {
    /// Quantizes a `[0, 1]` tail fraction.
    pub fn of(t: f64) -> Self {
        if t >= 1.0 {
            TailClass::Full
        } else if t > 0.75 {
            TailClass::Long
        } else if t > 0.25 {
            TailClass::Fair
        } else {
            TailClass::Soon
        }
    }

    /// All values in ordinal order.
    pub const ALL: [TailClass; 4] = [
        TailClass::Soon,
        TailClass::Fair,
        TailClass::Long,
        TailClass::Full,
    ];

    /// Ordinal code (0-based).
    pub fn ordinal(self) -> u8 {
        self as u8
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            TailClass::Soon => "soon",
            TailClass::Fair => "fair",
            TailClass::Long => "long",
            TailClass::Full => "full",
        }
    }
}

/// Active growth months as % of the growth period.
/// Limits: Zero = 0 < Few ≤ 0.2 < Fair ≤ 0.75 < High.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActiveGrowthClass {
    /// No active months in the proper growth interval.
    Zero,
    /// (0%, 20%] of the growth period.
    Few,
    /// (20%, 75%].
    Fair,
    /// > 75%.
    High,
}

impl ActiveGrowthClass {
    /// Quantizes a `[0, 1]` fraction.
    pub fn of(v: f64) -> Self {
        if v <= 0.0 {
            ActiveGrowthClass::Zero
        } else if v <= 0.2 {
            ActiveGrowthClass::Few
        } else if v <= 0.75 {
            ActiveGrowthClass::Fair
        } else {
            ActiveGrowthClass::High
        }
    }

    /// All values in ordinal order.
    pub const ALL: [ActiveGrowthClass; 4] = [
        ActiveGrowthClass::Zero,
        ActiveGrowthClass::Few,
        ActiveGrowthClass::Fair,
        ActiveGrowthClass::High,
    ];

    /// Ordinal code (0-based).
    pub fn ordinal(self) -> u8 {
        self as u8
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            ActiveGrowthClass::Zero => "zero",
            ActiveGrowthClass::Few => "few",
            ActiveGrowthClass::Fair => "fair",
            ActiveGrowthClass::High => "high",
        }
    }
}

/// Active growth months as % of the PUP.
/// Limits: Zero = 0 < Fair ≤ 0.08 < High ≤ 0.5 < Ultra.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActivePupClass {
    /// No active growth months.
    Zero,
    /// (0%, 8%] of the PUP.
    Fair,
    /// (8%, 50%].
    High,
    /// > 50% (empty in the paper's corpus).
    Ultra,
}

impl ActivePupClass {
    /// Quantizes a `[0, 1]` fraction.
    pub fn of(v: f64) -> Self {
        if v <= 0.0 {
            ActivePupClass::Zero
        } else if v <= 0.08 {
            ActivePupClass::Fair
        } else if v <= 0.5 {
            ActivePupClass::High
        } else {
            ActivePupClass::Ultra
        }
    }

    /// All values in ordinal order.
    pub const ALL: [ActivePupClass; 4] = [
        ActivePupClass::Zero,
        ActivePupClass::Fair,
        ActivePupClass::High,
        ActivePupClass::Ultra,
    ];

    /// Ordinal code (0-based).
    pub fn ordinal(self) -> u8 {
        self as u8
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            ActivePupClass::Zero => "zero",
            ActivePupClass::Fair => "fair",
            ActivePupClass::High => "high",
            ActivePupClass::Ultra => "ultra",
        }
    }
}

/// The complete quantized profile of a project — the feature space of the
/// pattern definitions (§4), Figure 4, Figure 6 and the Figure 5 tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Labels {
    /// Volume of activity at birth, % of total change.
    pub birth_volume: BirthVolumeClass,
    /// Time point of schema birth, % of PUP.
    pub birth_point: TimepointClass,
    /// Time point of top-band attainment, % of PUP.
    pub topband_point: TimepointClass,
    /// Interval birth → top-band, % of PUP.
    pub interval_birth_to_top: IntervalClass,
    /// Interval top-band → end (the tail), % of PUP.
    pub interval_top_to_end: TailClass,
    /// Active growth months, % of growth period.
    pub active_growth: ActiveGrowthClass,
    /// Active growth months, % of PUP.
    pub active_pup: ActivePupClass,
    /// Raw count of active growth months.
    pub active_growth_months: usize,
    /// Whether the birth→top transition is a single vault (< 10% PUP).
    pub has_single_vault: bool,
}

impl Labels {
    /// Quantizes a project's [`TimeMetrics`].
    pub fn from_metrics(m: &TimeMetrics) -> Labels {
        Labels {
            birth_volume: BirthVolumeClass::of(m.birth_volume_pct_total),
            birth_point: TimepointClass::of(m.birth_pct_pup),
            topband_point: TimepointClass::of(m.topband_pct_pup),
            interval_birth_to_top: IntervalClass::of(m.interval_birth_to_top_pct),
            interval_top_to_end: TailClass::of(m.interval_top_to_end_pct),
            active_growth: ActiveGrowthClass::of(m.active_pct_growth),
            active_pup: ActivePupClass::of(m.active_pct_pup),
            active_growth_months: m.active_growth_months,
            has_single_vault: m.has_single_vault,
        }
    }

    /// The active-growth-months bucket used by the pattern definitions:
    /// `0` → 0, `1..=3` → 1, `>3` → 2.
    pub fn agm_bucket(&self) -> u8 {
        match self.active_growth_months {
            0 => 0,
            1..=3 => 1,
            _ => 2,
        }
    }
}

/// Names of the feature columns produced by [`tree_features`] (Fig. 5).
pub const FEATURE_NAMES: [&str; 7] = [
    "BirthVolume",
    "BirthPoint",
    "TopBandPoint",
    "IntervalBirthToTop",
    "IntervalTopToEnd",
    "ActivePctGrowth",
    "AgmBucket",
];

/// Per-feature level names, aligned with [`FEATURE_NAMES`].
pub fn feature_value_names() -> Vec<Vec<&'static str>> {
    vec![
        BirthVolumeClass::ALL.iter().map(|c| c.label()).collect(),
        TimepointClass::ALL.iter().map(|c| c.label()).collect(),
        TimepointClass::ALL.iter().map(|c| c.label()).collect(),
        IntervalClass::ALL.iter().map(|c| c.label()).collect(),
        TailClass::ALL.iter().map(|c| c.label()).collect(),
        ActiveGrowthClass::ALL.iter().map(|c| c.label()).collect(),
        vec!["0", "1-3", ">3"],
    ]
}

/// Encodes the quantized profile as an ordinal feature vector for the
/// decision-tree classifier of Fig. 5.
pub fn tree_features(l: &Labels) -> Vec<u8> {
    vec![
        l.birth_volume.ordinal(),
        l.birth_point.ordinal(),
        l.topband_point.ordinal(),
        l.interval_birth_to_top.ordinal(),
        l.interval_top_to_end.ordinal(),
        l.active_growth.ordinal(),
        l.agm_bucket(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birth_volume_limits_match_table1() {
        assert_eq!(BirthVolumeClass::of(0.0), BirthVolumeClass::Low);
        assert_eq!(BirthVolumeClass::of(0.25), BirthVolumeClass::Low);
        assert_eq!(BirthVolumeClass::of(0.2500001), BirthVolumeClass::Fair);
        assert_eq!(BirthVolumeClass::of(0.75), BirthVolumeClass::Fair);
        assert_eq!(BirthVolumeClass::of(0.76), BirthVolumeClass::High);
        assert_eq!(BirthVolumeClass::of(0.9999), BirthVolumeClass::High);
        assert_eq!(BirthVolumeClass::of(1.0), BirthVolumeClass::Full);
    }

    #[test]
    fn timepoint_limits_match_table1() {
        assert_eq!(TimepointClass::of(0.0), TimepointClass::V0);
        assert_eq!(TimepointClass::of(0.001), TimepointClass::Early);
        assert_eq!(TimepointClass::of(0.25), TimepointClass::Early);
        assert_eq!(TimepointClass::of(0.26), TimepointClass::Middle);
        assert_eq!(TimepointClass::of(0.75), TimepointClass::Middle);
        assert_eq!(TimepointClass::of(0.751), TimepointClass::Late);
        assert_eq!(TimepointClass::of(1.0), TimepointClass::Late);
    }

    #[test]
    fn interval_limits_match_table1() {
        assert_eq!(IntervalClass::of(0.0), IntervalClass::Zero);
        assert_eq!(IntervalClass::of(0.1), IntervalClass::Soon);
        assert_eq!(IntervalClass::of(0.11), IntervalClass::Fair);
        assert_eq!(IntervalClass::of(0.35), IntervalClass::Fair);
        assert_eq!(IntervalClass::of(0.36), IntervalClass::Long);
        assert_eq!(IntervalClass::of(0.75), IntervalClass::Long);
        assert_eq!(IntervalClass::of(0.76), IntervalClass::VeryLong);
    }

    #[test]
    fn tail_limits() {
        assert_eq!(TailClass::of(0.0), TailClass::Soon);
        assert_eq!(TailClass::of(0.25), TailClass::Soon);
        assert_eq!(TailClass::of(0.5), TailClass::Fair);
        assert_eq!(TailClass::of(0.76), TailClass::Long);
        assert_eq!(TailClass::of(1.0), TailClass::Full);
    }

    #[test]
    fn active_growth_limits() {
        assert_eq!(ActiveGrowthClass::of(0.0), ActiveGrowthClass::Zero);
        assert_eq!(ActiveGrowthClass::of(0.2), ActiveGrowthClass::Few);
        assert_eq!(ActiveGrowthClass::of(0.21), ActiveGrowthClass::Fair);
        assert_eq!(ActiveGrowthClass::of(0.76), ActiveGrowthClass::High);
    }

    #[test]
    fn active_pup_limits() {
        assert_eq!(ActivePupClass::of(0.0), ActivePupClass::Zero);
        assert_eq!(ActivePupClass::of(0.08), ActivePupClass::Fair);
        assert_eq!(ActivePupClass::of(0.09), ActivePupClass::High);
        assert_eq!(ActivePupClass::of(0.51), ActivePupClass::Ultra);
    }

    #[test]
    fn agm_bucket_edges() {
        let mut l = sample_labels();
        l.active_growth_months = 0;
        assert_eq!(l.agm_bucket(), 0);
        l.active_growth_months = 3;
        assert_eq!(l.agm_bucket(), 1);
        l.active_growth_months = 4;
        assert_eq!(l.agm_bucket(), 2);
    }

    #[test]
    fn tree_features_shape_matches_names() {
        let f = tree_features(&sample_labels());
        assert_eq!(f.len(), FEATURE_NAMES.len());
        assert_eq!(feature_value_names().len(), FEATURE_NAMES.len());
    }

    #[test]
    fn ordinals_are_positional() {
        for (i, c) in TimepointClass::ALL.iter().enumerate() {
            assert_eq!(c.ordinal() as usize, i);
        }
        for (i, c) in IntervalClass::ALL.iter().enumerate() {
            assert_eq!(c.ordinal() as usize, i);
        }
    }

    fn sample_labels() -> Labels {
        Labels {
            birth_volume: BirthVolumeClass::High,
            birth_point: TimepointClass::V0,
            topband_point: TimepointClass::V0,
            interval_birth_to_top: IntervalClass::Zero,
            interval_top_to_end: TailClass::Full,
            active_growth: ActiveGrowthClass::Zero,
            active_pup: ActivePupClass::Zero,
            active_growth_months: 0,
            has_single_vault: true,
        }
    }
}
