//! Regenerates Table 2 (exceptions and overlaps).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::table2(&ctx);
    emit(
        "exp_table2",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
