//! Ablations beyond the paper: how sensitive is the pattern taxonomy to the
//! study's fixed conventions?
//!
//! The paper fixes three knobs by convention: the **top band** at 90% of
//! total activity, the **vault** threshold at 10% of the PUP, and the
//! **month** as the time granule. These experiments sweep each knob and
//! measure how the strict-classification populations move — small movement
//! means the taxonomy reflects the data, not the knob settings.

use serde::Serialize;

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_core::{classify, Pattern};
use schemachron_history::ProjectHistory;

use crate::context::ExpContext;
use crate::report::{cell, text_table};

/// One sweep point: the knob value and the resulting strict-classification
/// census (plus how many projects no definition covers).
#[derive(Clone, Debug, Serialize)]
pub struct SweepPoint {
    /// The knob value (threshold fraction, or months-per-bucket).
    pub value: f64,
    /// Projects strictly classified per pattern, [`Pattern::ALL`] order.
    pub populations: [usize; 8],
    /// Projects outside every definition at this knob setting.
    pub unclassified: usize,
    /// Projects whose strict classification differs from the baseline
    /// (top band 90%, vault 10%, month granule).
    pub moved: usize,
}

/// The ablation results.
#[derive(Clone, Debug, Serialize)]
pub struct Ablation {
    /// Top-band threshold sweep (vault fixed at 10%).
    pub topband_sweep: Vec<SweepPoint>,
    /// Vault-threshold sweep: `(threshold, projects with a single vault)`.
    pub vault_sweep: Vec<(f64, usize)>,
    /// Time-granule sweep (months per bucket: 1 = the paper's granule).
    pub granule_sweep: Vec<SweepPoint>,
}

/// Runs all three ablation sweeps.
pub fn ablation(ctx: &ExpContext) -> Ablation {
    let projects = ctx.corpus.projects();
    let baseline: Vec<Option<Pattern>> = projects.iter().map(|p| classify(&p.labels)).collect();

    let census = |classified: &[Option<Pattern>]| -> ([usize; 8], usize, usize) {
        let mut pop = [0usize; 8];
        let mut un = 0;
        let mut moved = 0;
        for (c, b) in classified.iter().zip(&baseline) {
            match c {
                Some(p) => pop[p.ordinal()] += 1,
                None => un += 1,
            }
            if c != b {
                moved += 1;
            }
        }
        (pop, un, moved)
    };

    // ---- top-band sweep --------------------------------------------------
    let topband_sweep = [0.80, 0.85, 0.90, 0.95]
        .into_iter()
        .map(|tb| {
            let classified: Vec<Option<Pattern>> = projects
                .iter()
                .map(|p| {
                    TimeMetrics::from_project_with(&p.history, tb, 0.10)
                        .map(|m| Labels::from_metrics(&m))
                        .and_then(|l| classify(&l))
                })
                .collect();
            let (populations, unclassified, moved) = census(&classified);
            SweepPoint {
                value: tb,
                populations,
                unclassified,
                moved,
            }
        })
        .collect();

    // ---- vault sweep -----------------------------------------------------
    let vault_sweep = [0.05, 0.075, 0.10, 0.15, 0.20]
        .into_iter()
        .map(|vt| {
            let vaulted = projects
                .iter()
                .filter(|p| {
                    TimeMetrics::from_project_with(&p.history, 0.9, vt)
                        .is_some_and(|m| m.has_single_vault)
                })
                .count();
            (vt, vaulted)
        })
        .collect();

    // ---- granule sweep ----------------------------------------------------
    let granule_sweep = [1usize, 2, 3]
        .into_iter()
        .map(|g| {
            let classified: Vec<Option<Pattern>> = projects
                .iter()
                .map(|p| {
                    let coarse = regroup(&p.history, g);
                    TimeMetrics::from_project(&coarse)
                        .map(|m| Labels::from_metrics(&m))
                        .and_then(|l| classify(&l))
                })
                .collect();
            let (populations, unclassified, moved) = census(&classified);
            SweepPoint {
                value: g as f64,
                populations,
                unclassified,
                moved,
            }
        })
        .collect();

    Ablation {
        topband_sweep,
        vault_sweep,
        granule_sweep,
    }
}

/// Re-aggregates a project's heartbeats into buckets of `granule` months.
fn regroup(p: &ProjectHistory, granule: usize) -> ProjectHistory {
    if granule <= 1 {
        return p.clone();
    }
    let group =
        |values: &[f64]| -> Vec<f64> { values.chunks(granule).map(|c| c.iter().sum()).collect() };
    ProjectHistory::from_heartbeats(
        p.name(),
        p.start(),
        group(p.schema_heartbeat().values()),
        group(p.source_heartbeat().values()),
        p.kind_totals(),
    )
}

impl Ablation {
    /// Renders all three sweeps.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Ablations — sensitivity of the taxonomy to the study's conventions\n");

        let sweep_table = |title: &str, points: &[SweepPoint], fmt: &dyn Fn(f64) -> String| {
            let mut header = vec![cell(title)];
            header.extend(Pattern::ALL.iter().map(|p| cell(p.name())));
            header.push(cell("none"));
            header.push(cell("moved"));
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|pt| {
                    let mut v = vec![fmt(pt.value)];
                    v.extend(pt.populations.iter().map(cell));
                    v.push(cell(pt.unclassified));
                    v.push(cell(pt.moved));
                    v
                })
                .collect();
            text_table(&header, &rows)
        };

        out.push_str("\nTop-band threshold sweep (paper: 90%):\n");
        out.push_str(&sweep_table("top band", &self.topband_sweep, &|v| {
            format!("{:.0}%", v * 100.0)
        }));

        out.push_str("\nVault threshold sweep (paper: 10% → 88 vaulted projects):\n");
        let header = vec![cell("vault <"), cell("projects with a single vault")];
        let rows: Vec<Vec<String>> = self
            .vault_sweep
            .iter()
            .map(|(v, n)| vec![format!("{:.1}%", v * 100.0), cell(n)])
            .collect();
        out.push_str(&text_table(&header, &rows));

        out.push_str("\nTime-granule sweep (paper: 1 month per bucket):\n");
        out.push_str(&sweep_table("months/bucket", &self.granule_sweep, &|v| {
            format!("{v:.0}")
        }));
        out
    }
}
