//! Plain-text table formatting shared by the experiment renderers.

/// Formats rows as a fixed-width text table. `header` supplies the column
/// titles; column widths adapt to content. Columns beyond the first are
/// right-aligned (they are almost always numbers).
pub fn text_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("  {cell:>w$}"));
            }
        }
        line.trim_end().to_owned()
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Convenience: turns anything displayable into a cell.
pub fn cell(v: impl ToString) -> String {
    v.to_string()
}

/// Formats a probability as a percentage with no decimals (Fig. 7 style).
pub fn pct(p: f64) -> String {
    format!("{:.0}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = text_table(
            &[cell("name"), cell("n")],
            &[vec![cell("alpha"), cell(3)], vec![cell("b"), cell(12345)]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.753), "75%");
        assert_eq!(pct(0.0), "0%");
    }
}
