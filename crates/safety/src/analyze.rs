//! The whole-history analyzer: abstract interpretation over every version
//! transition of a project, producing one classified, span-attributed,
//! replay-verified record per `DiffOp`.

use schemachron_dialect::{diff_ops, DiffOp};
use schemachron_history::{Date, IngestMode, SchemaHistory};
use schemachron_model::Schema;

use crate::classify::{classify_op, Safety};
use crate::invert::{apply_op, check_round_trip, inverse_op};
use crate::lineage::{column_lineage, LineageSummary};
use crate::locate::ScriptIndex;

/// One classified op of a version transition.
#[derive(Clone, Debug)]
pub struct OpSafety {
    /// The op's deterministic descriptor (`DiffOp::describe`).
    pub op: String,
    /// Its lattice value.
    pub safety: Safety,
    /// Why it landed there.
    pub reason: String,
    /// 1-based source line in the transition's script, when the op has a
    /// syntactic anchor there.
    pub line: Option<u32>,
    /// Descriptors of the synthesized inverse batch; `None` for `Lossy`.
    pub inverse: Option<Vec<String>>,
    /// Whether the inverse was machine-checked by replay (apply op, apply
    /// inverse, compare normalized fingerprints). Always `false` when no
    /// inverse exists.
    pub inverted: bool,
}

/// All classified ops of one version transition.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Version index (0 = the birth version, diffed from the empty schema).
    pub version: usize,
    /// The script materialized for this commit, `NNNN_YYYY-MM-DD.sql` —
    /// the same names the lint flow pass anchors its spans on.
    pub script: String,
    /// The commit date, rendered `YYYY-MM-DD`.
    pub date: String,
    /// The transition's ops in plan order.
    pub ops: Vec<OpSafety>,
}

/// The full safety analysis of one project history.
#[derive(Clone, Debug)]
pub struct SafetyAnalysis {
    /// Project name.
    pub project: String,
    /// Number of schema versions analyzed.
    pub versions: usize,
    /// One entry per version, in chronological order.
    pub transitions: Vec<Transition>,
    /// Column-lineage aggregate.
    pub lineage: LineageSummary,
}

impl SafetyAnalysis {
    /// Total classified ops.
    pub fn total_ops(&self) -> usize {
        self.transitions.iter().map(|t| t.ops.len()).sum()
    }

    /// `[lossless, recoverable, lossy]` counts.
    pub fn counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for t in &self.transitions {
            for op in &t.ops {
                counts[op.safety as usize] += 1;
            }
        }
        counts
    }

    /// The lattice join over the whole history.
    pub fn worst(&self) -> Safety {
        self.transitions
            .iter()
            .flat_map(|t| t.ops.iter().map(|o| o.safety))
            .fold(Safety::Lossless, Safety::join)
    }

    /// Share of ops that are `Lossy` (0 when the history has no ops).
    pub fn exposure(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let rate = self.counts()[2] as f64 / total as f64;
        rate
    }

    /// The first `Lossy` op, if any — the span `--deny-lossy` reports.
    pub fn first_lossy(&self) -> Option<(&Transition, &OpSafety)> {
        self.transitions.iter().find_map(|t| {
            t.ops
                .iter()
                .find(|o| o.safety == Safety::Lossy)
                .map(|o| (t, o))
        })
    }
}

/// Analyzes a project from its dated DDL commits — the exact inputs the
/// ingestion pipeline materializes, so the analysis is a pure function of
/// the same content the history stage key fingerprints.
pub fn analyze(project: &str, commits: &[(Date, String)]) -> SafetyAnalysis {
    let mut sorted = commits.to_vec();
    sorted.sort_by_key(|(d, _)| *d);
    let history = SchemaHistory::from_entries(IngestMode::Migration, sorted.clone());
    let scripts: Vec<(String, String)> = sorted
        .iter()
        .enumerate()
        .map(|(i, (date, sql))| (format!("{:04}_{date}.sql", i + 1), sql.clone()))
        .collect();
    analyze_versions(project, &history, Some(&scripts))
}

/// Analyzes an already-built schema history. Without the script texts the
/// transitions carry synthetic `vNNNN` anchors and no line spans.
pub fn analyze_history(project: &str, history: &SchemaHistory) -> SafetyAnalysis {
    analyze_versions(project, history, None)
}

fn analyze_versions(
    project: &str,
    history: &SchemaHistory,
    scripts: Option<&[(String, String)]>,
) -> SafetyAnalysis {
    let mut transitions = Vec::with_capacity(history.versions().len());
    let empty = Schema::default();
    let mut prev: &Schema = &empty;
    for (version, v) in history.versions().iter().enumerate() {
        let ops = diff_ops(prev, &v.schema);
        let script_pair = scripts.and_then(|s| s.get(version));
        let script = script_pair.map_or_else(
            || format!("v{:04}", version + 1),
            |(name, _)| name.clone(),
        );
        let index = script_pair.map(|(_, sql)| ScriptIndex::new(sql));
        transitions.push(classify_transition(
            version,
            script,
            v.date.to_string(),
            prev,
            &ops,
            index.as_ref(),
        ));
        prev = &v.schema;
    }
    let (_, lineage) = column_lineage(history);
    SafetyAnalysis {
        project: project.to_owned(),
        versions: history.versions().len(),
        transitions,
        lineage,
    }
}

fn classify_transition(
    version: usize,
    script: String,
    date: String,
    before: &Schema,
    ops: &[DiffOp],
    index: Option<&ScriptIndex>,
) -> Transition {
    let mut state = before.clone();
    let mut classified = Vec::with_capacity(ops.len());
    for op in ops {
        let c = classify_op(op, &state, ops);
        let inverse = inverse_op(op, &state, ops)
            .map(|batch| batch.iter().map(DiffOp::describe).collect::<Vec<String>>());
        let inverted = check_round_trip(&state, op, ops).unwrap_or(false);
        classified.push(OpSafety {
            op: op.describe(),
            safety: c.safety,
            reason: c.reason,
            line: index.and_then(|i| i.line_of(op)),
            inverse,
            inverted,
        });
        apply_op(&mut state, op);
    }
    Transition {
        version,
        script,
        date,
        ops: classified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commits(scripts: &[&str]) -> Vec<(Date, String)> {
        scripts
            .iter()
            .enumerate()
            .map(|(i, sql)| {
                #[allow(clippy::cast_possible_truncation)]
                let day = (i + 1) as u8;
                (Date::new(2021, 3, day), (*sql).to_owned())
            })
            .collect()
    }

    #[test]
    fn every_op_is_classified_and_non_lossy_ops_verify() {
        let a = analyze(
            "demo",
            &commits(&[
                "CREATE TABLE users (id INT NOT NULL, name VARCHAR(64));",
                "ALTER TABLE users ADD COLUMN email VARCHAR(255);\n\
                 ALTER TABLE users MODIFY COLUMN name VARCHAR(128);",
                "ALTER TABLE users MODIFY COLUMN name VARCHAR(32);\n\
                 ALTER TABLE users DROP COLUMN email;",
            ]),
        );
        assert_eq!(a.versions, 3);
        assert!(a.total_ops() >= 5, "{a:?}");
        let [lossless, recoverable, lossy] = a.counts();
        assert_eq!(lossless + recoverable + lossy, a.total_ops());
        assert!(lossy >= 1, "the email drop is lossy");
        assert!(recoverable >= 1, "the varchar narrowing is recoverable");
        for t in &a.transitions {
            for op in &t.ops {
                match op.safety {
                    Safety::Lossy => assert!(op.inverse.is_none(), "{}", op.op),
                    _ => {
                        assert!(op.inverse.is_some(), "{}", op.op);
                        assert!(op.inverted, "inverse of {} must replay", op.op);
                    }
                }
            }
        }
        assert_eq!(a.worst(), Safety::Lossy);
        let (t, op) = a.first_lossy().expect("a lossy op exists");
        assert_eq!(t.script, "0003_2021-03-03.sql");
        assert_eq!(op.op, "drop_column users.email");
        assert_eq!(op.line, Some(2));
    }

    #[test]
    fn commits_are_analyzed_in_date_order() {
        let mut c = commits(&[
            "CREATE TABLE t (a INT);",
            "ALTER TABLE t ADD COLUMN b INT;",
        ]);
        c.reverse();
        let a = analyze("demo", &c);
        assert_eq!(a.transitions[0].script, "0001_2021-03-01.sql");
        assert_eq!(a.transitions[0].ops[0].op, "create_table t");
    }

    #[test]
    fn analyze_history_carries_synthetic_anchors() {
        let history = SchemaHistory::from_entries(
            IngestMode::Migration,
            commits(&["CREATE TABLE t (a INT);"]),
        );
        let a = analyze_history("demo", &history);
        assert_eq!(a.transitions[0].script, "v0001");
        assert_eq!(a.transitions[0].ops[0].line, None);
    }
}
