//! Runs the schema/source co-evolution analysis (beyond the paper).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::co_evolution_exp(&ctx);
    emit(
        "exp_coevolution",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
