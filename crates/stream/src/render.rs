//! Shared JSON/SSE renderers for append acknowledgements and feed batches,
//! used verbatim by both the CLI (`schemachron append`) and the HTTP
//! layer (`POST /project/{id}/commit`, `GET /changes`) — the CLI-vs-serve
//! byte-identity discipline every other surface in this workspace follows.

use serde_json::{json, Value};

use crate::feed::{ChangeEvent, FeedBatch};
use crate::store::Append;

/// The acknowledgement body for one append outcome.
pub fn ack_json(project: &str, outcome: &Append) -> Value {
    match outcome {
        Append::Appended {
            seq,
            cursor,
            before,
            after,
        } => json!({
            "project": (project),
            "seq": (*seq),
            "status": "appended",
            "cursor": (*cursor),
            "pattern": (after.as_str()),
            "transition": {
                "before": (before.as_deref()),
                "after": (after.as_str()),
            },
        }),
        Append::Duplicate { seq, last_seq } => json!({
            "project": (project),
            "seq": (*seq),
            "status": "duplicate",
            "last_seq": (*last_seq),
        }),
    }
}

/// One feed event as JSON.
pub fn event_json(event: &ChangeEvent) -> Value {
    json!({
        "cursor": (event.cursor),
        "project": (event.project.as_str()),
        "seq": (event.seq),
        "date": (event.date.as_str()),
        "transition": {
            "before": (event.before.as_deref()),
            "after": (event.after.as_str()),
        },
    })
}

/// A `GET /changes` long-poll batch as JSON.
pub fn changes_json(since: u64, batch: &FeedBatch) -> Value {
    json!({
        "since": (since),
        "next_cursor": (batch.next_cursor),
        "lagged": (batch.lagged),
        "events": (batch.events.iter().map(event_json).collect::<Vec<Value>>()),
    })
}

/// A feed batch framed as Server-Sent Events: one `transition` event per
/// entry (`id:` carries the cursor for `Last-Event-ID` resume), plus a
/// leading `lagged` marker event when the subscriber fell out of the
/// retention window.
pub fn sse_frames(batch: &FeedBatch) -> String {
    let mut out = String::new();
    if batch.lagged {
        out.push_str("event: lagged\ndata: {\"lagged\": true}\n\n");
    }
    for event in &batch.events {
        let data = serde_json::to_string(&event_json(event)).unwrap_or_else(|_| "{}".to_owned());
        out.push_str(&format!(
            "id: {}\nevent: transition\ndata: {data}\n\n",
            event.cursor
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> FeedBatch {
        FeedBatch {
            events: vec![ChangeEvent {
                cursor: 7,
                project: "p".to_owned(),
                seq: 3,
                date: "2020-01-10".to_owned(),
                before: Some("frozen".to_owned()),
                after: "~frozen".to_owned(),
            }],
            lagged: true,
            next_cursor: 7,
        }
    }

    #[test]
    fn ack_shapes_cover_both_outcomes() {
        let appended = ack_json(
            "p",
            &Append::Appended {
                seq: 1,
                cursor: 4,
                before: None,
                after: "frozen".to_owned(),
            },
        );
        assert_eq!(appended.get("status").and_then(Value::as_str), Some("appended"));
        assert_eq!(appended.get("cursor").and_then(Value::as_u64), Some(4));
        let dup = ack_json("p", &Append::Duplicate { seq: 1, last_seq: 3 });
        assert_eq!(dup.get("status").and_then(Value::as_str), Some("duplicate"));
        assert_eq!(dup.get("last_seq").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn sse_frames_carry_ids_and_lag_markers() {
        let text = sse_frames(&batch());
        assert!(text.starts_with("event: lagged\n"), "{text}");
        assert!(text.contains("id: 7\nevent: transition\ndata: "), "{text}");
        assert!(text.ends_with("\n\n"), "{text}");
    }
}
