//! The per-project write-ahead commit log.
//!
//! One project's WAL is a directory of append-only **segment files**
//! (`000001.wal`, `000002.wal`, …). Each segment opens with a header line
//! naming the chain state it continues from, then carries records framed as
//!
//! ```text
//! rec v1 seq=<n> cur=<c> date=<YYYY-MM-DD> len=<bytes> prev=<crc16x> crc=<crc16x>
//! <payload bytes>
//! ```
//!
//! The `crc` is a chained FNV-1a over `(prev, seq, cur, date, payload)`, so
//! every record commits to the entire history before it — a WAL's final
//! `crc` is a content hash of the whole commit chain. Appends write the
//! record, then fsync, then acknowledge; a crash between any two steps
//! leaves at worst a **torn tail**, which replay truncates back to the last
//! acknowledged record. Mid-segment corruption (a bad chain in anything but
//! the final record of the final segment) is never silently dropped: it
//! surfaces as [`WalError::Corrupt`].
//!
//! Segment rotation follows the corpus store's atomic-write discipline:
//! the fresh segment is staged as a hidden `.tmp` file, fsynced, and
//! renamed into place before any record lands in it.
//!
//! Fault injection: [`append`](Wal::append) rolls `stream::wal_append`
//! (I/O error or a genuine torn half-record on disk) before writing and
//! `stream::wal_fsync` before the durability barrier, keyed by
//! `project:seq` so chaos drills inject the same faults at any `--jobs`.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use schemachron_fault as fault;
use schemachron_hash::{fnv1a, FNV_OFFSET};

/// First line of every segment file.
pub const SEGMENT_HEADER_PREFIX: &str = "# schemachron wal segment v1";

/// Records per segment before rotation starts a new file.
pub const SEGMENT_RECORDS: usize = 64;

/// The chain seed: the `prev` checksum of the very first record.
pub const CHAIN_SEED: u64 = FNV_OFFSET;

/// One durable commit record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Client sequence number, contiguous from 1.
    pub seq: u64,
    /// The change-feed cursor assigned to this commit.
    pub cursor: u64,
    /// Commit date (`YYYY-MM-DD`).
    pub date: String,
    /// The DDL payload.
    pub payload: String,
}

/// A WAL failure: plain I/O, or a corrupt chain that must not be ignored.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O error (including injected ones).
    Io(std::io::Error),
    /// The on-disk chain is inconsistent in a non-recoverable position.
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::Corrupt(d) => write!(f, "wal corrupt: {d}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The chained record checksum: FNV-1a over the previous checksum, the
/// sequence number, the feed cursor, the date and the payload bytes.
/// Restated independently by the lint `H007` auditor.
pub fn record_crc(prev: u64, seq: u64, cursor: u64, date: &str, payload: &[u8]) -> u64 {
    let h = fnv1a(FNV_OFFSET, &prev.to_le_bytes());
    let h = fnv1a(h, &seq.to_le_bytes());
    let h = fnv1a(h, &cursor.to_le_bytes());
    let h = fnv1a(h, date.as_bytes());
    fnv1a(h, payload)
}

/// Encodes one record (header line + payload + newline).
fn encode_record(rec: &WalRecord, prev: u64) -> Vec<u8> {
    let crc = record_crc(prev, rec.seq, rec.cursor, &rec.date, rec.payload.as_bytes());
    let mut out = format!(
        "rec v1 seq={} cur={} date={} len={} prev={prev:016x} crc={crc:016x}\n",
        rec.seq,
        rec.cursor,
        rec.date,
        rec.payload.len(),
    )
    .into_bytes();
    out.extend_from_slice(rec.payload.as_bytes());
    out.push(b'\n');
    out
}

fn segment_name(index: u64) -> String {
    format!("{index:06}.wal")
}

fn segment_header(base_seq: u64, base_crc: u64) -> String {
    format!("{SEGMENT_HEADER_PREFIX} base_seq={base_seq} base_crc={base_crc:016x}\n")
}

/// Parses `key=value` out of a header fragment.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=').or(None))
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

fn field_hex(line: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(field(line, key)?, 16).ok()
}

/// Outcome of decoding one record at an offset.
enum Decoded {
    /// A valid record and the offset just past it.
    Record(WalRecord, u64, usize),
    /// Incomplete framing: the bytes stop mid-record, exactly what a
    /// crashed half-write leaves. Recoverable by truncation at the tail.
    Torn(String),
    /// Complete framing but a failing checksum, and the offset just past
    /// the framed record. Recoverable only when nothing follows it (an
    /// unsynced tail); with valid records after, it is corruption.
    TornChecksum(String, usize),
    /// Never recoverable: a complete, checksum-valid record that violates
    /// chain semantics, or framing bytes no writer ever produces.
    Bad(String),
}

/// Decodes the record starting at `at`, chained from `prev`, expecting
/// `seq == last_seq + 1` and `cursor > last_cursor`.
fn decode_record(bytes: &[u8], at: usize, prev: u64, last_seq: u64, last_cursor: u64) -> Decoded {
    let rest = &bytes[at..];
    let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
        return Decoded::Torn("record header has no newline".to_owned());
    };
    let Ok(header) = std::str::from_utf8(&rest[..nl]) else {
        return Decoded::Torn("record header is not UTF-8".to_owned());
    };
    if !header.starts_with("rec v1 ") {
        return Decoded::Torn(format!("unrecognized record header `{header}`"));
    }
    let (Some(seq), Some(cursor), Some(date), Some(len), Some(prev_f), Some(crc)) = (
        field_u64(header, "seq"),
        field_u64(header, "cur"),
        field(header, "date"),
        field_u64(header, "len"),
        field_hex(header, "prev"),
        field_hex(header, "crc"),
    ) else {
        return Decoded::Torn(format!("record header is missing fields: `{header}`"));
    };
    let body_start = nl + 1;
    let body_end = body_start + len as usize;
    if rest.len() < body_end + 1 {
        return Decoded::Torn(format!("record seq={seq} payload is truncated"));
    }
    if rest[body_end] != b'\n' {
        return Decoded::Bad(format!("record seq={seq} payload is not newline-terminated"));
    }
    let body = &rest[body_start..body_end];
    if prev_f != prev || crc != record_crc(prev, seq, cursor, date, body) {
        return Decoded::TornChecksum(
            format!("record seq={seq} fails its chained checksum"),
            at + body_end + 1,
        );
    }
    let Ok(payload) = std::str::from_utf8(body) else {
        return Decoded::Bad(format!("record seq={seq} payload is not UTF-8"));
    };
    // Chain semantics: a checksum-valid record with a regressing sequence
    // or cursor was written by broken logic, not torn by a crash.
    if seq != last_seq + 1 {
        return Decoded::Bad(format!(
            "record seq={seq} breaks the sequence chain (expected {})",
            last_seq + 1
        ));
    }
    if cursor <= last_cursor {
        return Decoded::Bad(format!(
            "record seq={seq} cursor {cursor} does not advance past {last_cursor}"
        ));
    }
    Decoded::Record(
        WalRecord {
            seq,
            cursor,
            date: date.to_owned(),
            payload: payload.to_owned(),
        },
        crc,
        at + body_end + 1,
    )
}

/// One project's write-ahead log handle.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    project: String,
    /// Replayed + appended records, oldest first.
    records: Vec<WalRecord>,
    /// Index of the segment currently appended to.
    segment: u64,
    /// Records already in the current segment.
    segment_records: usize,
    /// Byte length of the current segment up to the last valid record.
    valid_len: u64,
    /// Chain checksum of the last record ([`CHAIN_SEED`] when empty).
    chain_crc: u64,
    /// Last appended sequence number (0 when empty).
    last_seq: u64,
    /// Last assigned feed cursor (0 when empty).
    last_cursor: u64,
}

impl Wal {
    /// Opens (or creates) the WAL in `dir`, replaying every segment.
    ///
    /// A torn tail — an incomplete or checksum-failing suffix of the final
    /// segment — is truncated off the file; corruption anywhere else is a
    /// [`WalError::Corrupt`].
    ///
    /// # Errors
    /// I/O failures and non-recoverable chain corruption.
    pub fn open(dir: &Path, project: &str) -> Result<Wal, WalError> {
        fs::create_dir_all(dir)?;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path
                .file_name()
                .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
            if let Some(idx) = name
                .strip_suffix(".wal")
                .and_then(|stem| stem.parse::<u64>().ok())
            {
                segments.push((idx, path));
            }
        }
        segments.sort();

        let mut wal = Wal {
            dir: dir.to_owned(),
            project: project.to_owned(),
            records: Vec::new(),
            segment: 0,
            segment_records: 0,
            valid_len: 0,
            chain_crc: CHAIN_SEED,
            last_seq: 0,
            last_cursor: 0,
        };
        if segments.is_empty() {
            wal.segment = 1;
            wal.write_fresh_segment()?;
            return Ok(wal);
        }
        let last_index = segments.len() - 1;
        for (i, (idx, path)) in segments.iter().enumerate() {
            wal.replay_segment(*idx, path, i == last_index)?;
        }
        Ok(wal)
    }

    /// Replays one segment. `is_last` enables torn-tail truncation.
    fn replay_segment(&mut self, idx: u64, path: &Path, is_last: bool) -> Result<(), WalError> {
        let bytes = fs::read(path)?;
        let name = segment_name(idx);
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .map(|nl| nl + 1)
            .ok_or_else(|| WalError::Corrupt(format!("{name}: segment header has no newline")))?;
        let header = std::str::from_utf8(&bytes[..header_end - 1])
            .map_err(|_| WalError::Corrupt(format!("{name}: segment header is not UTF-8")))?;
        if !header.starts_with(SEGMENT_HEADER_PREFIX) {
            return Err(WalError::Corrupt(format!(
                "{name}: unrecognized segment header `{header}`"
            )));
        }
        let base_seq = field_u64(header, "base_seq")
            .ok_or_else(|| WalError::Corrupt(format!("{name}: header is missing base_seq")))?;
        let base_crc = field_hex(header, "base_crc")
            .ok_or_else(|| WalError::Corrupt(format!("{name}: header is missing base_crc")))?;
        if base_seq != self.last_seq || base_crc != self.chain_crc {
            return Err(WalError::Corrupt(format!(
                "{name}: header continues from seq {base_seq} crc {base_crc:016x}, \
                 but the chain is at seq {} crc {:016x}",
                self.last_seq, self.chain_crc
            )));
        }

        let mut at = header_end;
        let mut segment_records = 0usize;
        while at < bytes.len() {
            match decode_record(&bytes, at, self.chain_crc, self.last_seq, self.last_cursor) {
                Decoded::Record(rec, crc, next) => {
                    self.last_seq = rec.seq;
                    self.last_cursor = rec.cursor;
                    self.chain_crc = crc;
                    self.records.push(rec);
                    segment_records += 1;
                    at = next;
                }
                Decoded::Torn(detail) => {
                    if !is_last {
                        return Err(WalError::Corrupt(format!(
                            "{name}: {detail} (mid-log, not a recoverable tail)"
                        )));
                    }
                    // Torn tail: truncate the file back to the last valid
                    // record and carry on from there. `at` stays at the
                    // truncation offset so valid_len below matches the file.
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(at as u64)?;
                    file.sync_all()?;
                    break;
                }
                Decoded::TornChecksum(detail, end) => {
                    // A framed record with a failing checksum is only an
                    // unsynced tail when nothing follows it; a valid-looking
                    // remainder means the chain was damaged mid-log.
                    if !is_last || end < bytes.len() {
                        return Err(WalError::Corrupt(format!(
                            "{name}: {detail} (mid-log, not a recoverable tail)"
                        )));
                    }
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(at as u64)?;
                    file.sync_all()?;
                    break;
                }
                Decoded::Bad(detail) => {
                    return Err(WalError::Corrupt(format!("{name}: {detail}")));
                }
            }
        }
        self.segment = idx;
        self.segment_records = segment_records;
        // `at` is the offset just past the last valid record: bytes.len()
        // after a clean replay, the truncation point after a torn tail.
        self.valid_len = at as u64;
        Ok(())
    }

    /// Stages + renames a fresh, empty segment for the current chain state.
    fn write_fresh_segment(&mut self) -> Result<(), std::io::Error> {
        let name = segment_name(self.segment);
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let header = segment_header(self.last_seq, self.chain_crc);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(header.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(&name))?;
        // Durability of the rename itself: fsync the directory, best-effort
        // on platforms where directories cannot be opened.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.segment_records = 0;
        self.valid_len = header.len() as u64;
        Ok(())
    }

    fn current_segment_path(&self) -> PathBuf {
        self.dir.join(segment_name(self.segment))
    }

    /// Appends one record durably: write, fsync, then acknowledge by
    /// returning. The caller supplies the next sequence number and the
    /// feed cursor this commit will be announced under.
    ///
    /// On *any* error the in-memory state is unchanged and the file is
    /// rolled back to the last acknowledged record before the next append
    /// — so a failed attempt (injected or real) is always safely retryable
    /// with the same `seq`.
    ///
    /// # Errors
    /// I/O failures, including injected `stream::wal_append` /
    /// `stream::wal_fsync` faults.
    pub fn append(&mut self, rec: WalRecord) -> Result<(), WalError> {
        if self.segment_records >= SEGMENT_RECORDS {
            self.segment += 1;
            self.write_fresh_segment()?;
        }
        let path = self.current_segment_path();
        let encoded = encode_record(&rec, self.chain_crc);
        let fault_key = format!("{}:{}", self.project, rec.seq);

        let mut file = OpenOptions::new().append(true).open(&path)?;
        // A previous failed attempt may have left a torn tail; truncation
        // before the write keeps the on-disk chain equal to the in-memory
        // one at every acknowledged point.
        file.set_len(self.valid_len)?;
        match fault::roll(
            fault::site::STREAM_WAL_APPEND,
            &fault_key,
            &[fault::FaultKind::IoError, fault::FaultKind::PartialWrite],
        ) {
            Some(fault::FaultKind::PartialWrite) => {
                // A genuine torn tail on disk: half the record, no fsync.
                file.write_all(&encoded[..encoded.len() / 2])?;
                return Err(WalError::Io(fault::injected_io_error(
                    fault::site::STREAM_WAL_APPEND,
                    &fault_key,
                )));
            }
            Some(_) => {
                return Err(WalError::Io(fault::injected_io_error(
                    fault::site::STREAM_WAL_APPEND,
                    &fault_key,
                )));
            }
            None => {}
        }
        file.write_all(&encoded)?;
        if fault::roll(
            fault::site::STREAM_WAL_FSYNC,
            &fault_key,
            &[fault::FaultKind::IoError],
        )
        .is_some()
        {
            // The record is in the page cache but not durable: un-append it
            // so the ack boundary and the chain stay aligned.
            file.set_len(self.valid_len)?;
            return Err(WalError::Io(fault::injected_io_error(
                fault::site::STREAM_WAL_FSYNC,
                &fault_key,
            )));
        }
        file.sync_all()?;

        self.chain_crc = record_crc(
            self.chain_crc,
            rec.seq,
            rec.cursor,
            &rec.date,
            rec.payload.as_bytes(),
        );
        self.valid_len += encoded.len() as u64;
        self.segment_records += 1;
        self.last_seq = rec.seq;
        self.last_cursor = rec.cursor;
        self.records.push(rec);
        Ok(())
    }

    /// All replayed + appended records, oldest first.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Last acknowledged sequence number (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Last assigned feed cursor (0 when empty).
    pub fn last_cursor(&self) -> u64 {
        self.last_cursor
    }

    /// The chained checksum of the full commit history — a content hash of
    /// every record in order ([`CHAIN_SEED`] when empty).
    pub fn chain_crc(&self) -> u64 {
        self.chain_crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("schemachron-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn rec(seq: u64, cursor: u64, sql: &str) -> WalRecord {
        WalRecord {
            seq,
            cursor,
            date: "2020-01-10".to_owned(),
            payload: sql.to_owned(),
        }
    }

    #[test]
    fn append_replay_round_trips() {
        let _shared = crate::testlock::shared();
        let dir = tmp("roundtrip");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        wal.append(rec(2, 2, "ALTER TABLE t ADD COLUMN b INT;")).unwrap();
        let crc = wal.chain_crc();
        drop(wal);
        let replayed = Wal::open(&dir, "p").unwrap();
        assert_eq!(replayed.records().len(), 2);
        assert_eq!(replayed.last_seq(), 2);
        assert_eq!(replayed.last_cursor(), 2);
        assert_eq!(replayed.chain_crc(), crc);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_replay() {
        let _shared = crate::testlock::shared();
        let dir = tmp("torn");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        let crc = wal.chain_crc();
        drop(wal);
        // Simulate a crash mid-append: half a record at the tail.
        let seg = dir.join(segment_name(1));
        let torn = encode_record(&rec(2, 2, "DROP TABLE t;"), crc);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&torn[..torn.len() / 2]).unwrap();
        drop(f);
        let mut replayed = Wal::open(&dir, "p").unwrap();
        assert_eq!(replayed.records().len(), 1, "tail must be dropped");
        assert_eq!(replayed.chain_crc(), crc);
        // And the truncated log accepts the retried append cleanly.
        replayed.append(rec(2, 2, "DROP TABLE t;")).unwrap();
        assert_eq!(replayed.last_seq(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_torn_tail_recovery_survives_reopen() {
        let _shared = crate::testlock::shared();
        let dir = tmp("torn-reopen");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        let crc = wal.chain_crc();
        drop(wal);
        // A crash mid-append leaves half a record at the tail.
        let seg = dir.join(segment_name(1));
        let torn = encode_record(&rec(2, 2, "DROP TABLE t;"), crc);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&torn[..torn.len() / 2]).unwrap();
        drop(f);
        // Recovery truncates, the retry is acked — and the acked record
        // must survive a second replay (valid_len must be the truncated
        // length, or the retry lands after a NUL gap and is dropped here).
        let mut recovered = Wal::open(&dir, "p").unwrap();
        recovered.append(rec(2, 2, "DROP TABLE t;")).unwrap();
        let crc2 = recovered.chain_crc();
        drop(recovered);
        let replayed = Wal::open(&dir, "p").unwrap();
        assert_eq!(replayed.records().len(), 2, "acked retry must survive reopen");
        assert_eq!(replayed.last_seq(), 2);
        assert_eq!(replayed.chain_crc(), crc2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let _shared = crate::testlock::shared();
        let dir = tmp("midlog");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        wal.append(rec(2, 2, "ALTER TABLE t ADD COLUMN b INT;")).unwrap();
        drop(wal);
        // Flip a payload byte of the FIRST record: the chain breaks in a
        // non-tail position, so replay must refuse, not truncate.
        let seg = dir.join(segment_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        let pos = bytes
            .windows(6)
            .position(|w| w == b"CREATE")
            .expect("first payload present");
        bytes[pos] = b'X';
        fs::write(&seg, &bytes).unwrap();
        match Wal::open(&dir, "p") {
            Err(WalError::Corrupt(detail)) => {
                assert!(detail.contains("not a recoverable tail"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_replay_across_files() {
        let _shared = crate::testlock::shared();
        let dir = tmp("rotate");
        let mut wal = Wal::open(&dir, "p").unwrap();
        let n = SEGMENT_RECORDS as u64 + 5;
        for seq in 1..=n {
            wal.append(rec(seq, seq, "ALTER TABLE t ADD COLUMN c INT;")).unwrap();
        }
        let crc = wal.chain_crc();
        drop(wal);
        assert!(dir.join(segment_name(2)).is_file(), "rotation must have happened");
        let replayed = Wal::open(&dir, "p").unwrap();
        assert_eq!(replayed.records().len() as u64, n);
        assert_eq!(replayed.chain_crc(), crc);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_faults_leave_the_log_retryable() {
        let _faults = crate::testlock::exclusive();
        let dir = tmp("faults");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        schemachron_fault::install(
            schemachron_fault::FaultPlan::new(3, 1.0)
                .with_sites([fault::site::STREAM_WAL_APPEND.to_owned()]),
        );
        let denied = wal.append(rec(2, 2, "DROP TABLE t;"));
        assert!(denied.is_err(), "rate 1.0 must inject");
        assert_eq!(wal.last_seq(), 1, "failed append must not advance");
        schemachron_fault::clear();
        // The same seq retries cleanly over whatever the fault left behind.
        wal.append(rec(2, 2, "DROP TABLE t;")).unwrap();
        let crc = wal.chain_crc();
        drop(wal);
        let replayed = Wal::open(&dir, "p").unwrap();
        assert_eq!(replayed.chain_crc(), crc);
        assert_eq!(replayed.records().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
