//! Strict recursive-descent JSON parser.

use super::{Error, Map, Number, Value};

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require a paired \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let second = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err(self.err("unpaired surrogate"));
                        } else {
                            first
                        };
                        match char::from_u32(cp) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes are
                    // valid — re-decode the full character from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one `0`, or a nonzero digit followed by more digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number: missing fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number: missing exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ascii");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::from(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.err("number out of range"))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.err("non-finite number"))
    }
}

/// Byte width of a UTF-8 character given its first byte.
fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::super::Value;
    use super::parse;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041""#).unwrap().as_str(),
            Some("a\n\t\"\\A")
        );
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn parses_composites() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": false}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].as_object().unwrap().get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "  ", "[1,]", "{,}", "1 2", "{\"a\":}", "{\"a\"1}", "01",
            "1.", "1e", "+1", "nul", "\"abc", "\"\\x\"", "[1", "{\"a\":1",
            "tru e", "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
    }
}
