//! Work scheduling for corpus ingestion.
//!
//! Every corpus project is ingested independently — the materializer seeds
//! its PRNG per project name (`seed ^ name_hash(name)`), so no project's
//! output depends on any other's. That makes ingestion embarrassingly
//! parallel, and this module provides the fan-out: [`par_map`] distributes
//! items over scoped worker threads via a chunked work-claiming index (one
//! shared atomic cursor; each worker claims [`CLAIM_CHUNK`] indices per
//! bump), then reassembles results **in input order**, so parallel and
//! serial runs produce identical corpora.
//!
//! Workers are **panic-isolated**: each item runs under `catch_unwind`, so
//! one poisoned item can never abort the whole build or take its worker's
//! remaining items down with it. A panicking item becomes a typed
//! [`WorkerFailure`]; injected-transient faults (see `schemachron-fault`)
//! are retried up to [`MAX_ATTEMPTS`] times with a small capped backoff.
//! [`par_map_isolated`] surfaces the per-item outcome; [`par_map`] keeps
//! the infallible signature and panics with the aggregated failures only
//! after every other item has finished.
//!
//! The worker count is resolved by [`effective_jobs`]:
//!
//! 1. a process-wide override installed with [`set_jobs`] (the CLI's
//!    `--jobs` flag),
//! 2. else the `SCHEMACHRON_JOBS` environment variable,
//! 3. else [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use schemachron_fault as fault;

/// Process-wide jobs override; `0` means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide worker-count override (`None` clears it),
/// taking precedence over `SCHEMACHRON_JOBS` and auto-detection.
pub fn set_jobs(jobs: Option<NonZeroUsize>) {
    JOBS_OVERRIDE.store(jobs.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The worker count corpus generation will use: the [`set_jobs`] override,
/// else `SCHEMACHRON_JOBS`, else available parallelism (min 1).
pub fn effective_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("SCHEMACHRON_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Minimum number of items each worker must have to justify spawning
/// threads at all. Below `jobs * MIN_ITEMS_PER_WORKER` items, thread
/// spawn/teardown and slot locking outweigh the per-item pipeline work
/// (`BENCH_pipeline.json` recorded a 0.84× "speedup" for the 151-project
/// corpus on two workers) and [`par_map`] runs serially instead. Output is
/// identical on either side of the threshold — only the schedule changes.
pub const MIN_ITEMS_PER_WORKER: usize = 128;

/// Bound on per-item attempts when an injected-transient fault panics the
/// worker closure: the first try plus two retries. Genuine (non-injected)
/// panics are never retried — a deterministic bug would fail identically
/// every time.
pub const MAX_ATTEMPTS: u32 = 3;

/// Base backoff between retries of one item; doubles per retry, capped at
/// [`RETRY_BACKOFF_CAP`]. Kept tiny: transient faults in this workspace
/// clear on re-roll, the backoff only yields the scheduler.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);
/// Upper bound on the per-retry backoff.
const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(8);

/// How many indices a worker claims from the shared cursor per bump.
/// Batch claiming amortizes the cursor's cache-line ping-pong over 8 items
/// — small items no longer pay one contended atomic (let alone the old
/// per-item mutex) each — while keeping the schedule self-balancing: a
/// worker stuck on an expensive chunk simply claims fewer chunks.
pub const CLAIM_CHUNK: usize = 8;

/// The worker count [`par_map`] will actually use for `len` items and a
/// requested `jobs`: `0..=1` means the map runs inline on the caller's
/// thread (too little work to amortize thread spawns), otherwise the
/// requested count capped by the item count.
pub fn effective_workers(len: usize, jobs: usize) -> usize {
    if jobs <= 1 || len < 2 || len < jobs.min(len) * MIN_ITEMS_PER_WORKER {
        1
    } else {
        jobs.min(len)
    }
}

/// One item that could not be produced: its input-order index, how many
/// attempts it got, and the panic message of the last attempt.
#[derive(Clone, Debug)]
pub struct WorkerFailure {
    /// Index of the failed item in the input vector.
    pub index: usize,
    /// Attempts spent (1 for a non-retryable panic, up to [`MAX_ATTEMPTS`]).
    pub attempts: u32,
    /// The panic message of the final attempt.
    pub message: String,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {} failed after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// The typed aggregation of every failed item of one map, ordered by item
/// index. Surviving items' results are preserved in the [`MapOutcome`] this
/// came from.
#[derive(Clone, Debug, Default)]
pub struct WorkerFailures(pub Vec<WorkerFailure>);

impl std::fmt::Display for WorkerFailures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} worker item(s) failed: ", self.0.len())?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{w}")?;
        }
        Ok(())
    }
}

impl std::error::Error for WorkerFailures {}

/// The per-item outcome of [`par_map_isolated`]: `results[i]` is `Some`
/// exactly when item `i` succeeded, and `failures` lists the rest in index
/// order.
#[derive(Debug)]
pub struct MapOutcome<R> {
    /// One slot per input item, in input order.
    pub results: Vec<Option<R>>,
    /// Every failed item, ordered by index.
    pub failures: Vec<WorkerFailure>,
}

impl<R> MapOutcome<R> {
    /// All results if every item succeeded, else the typed failures.
    ///
    /// # Errors
    /// Returns [`WorkerFailures`] when any item failed.
    pub fn into_result(self) -> Result<Vec<R>, WorkerFailures> {
        if !self.failures.is_empty() {
            return Err(WorkerFailures(self.failures));
        }
        Ok(self
            .results
            .into_iter()
            .map(|slot| {
                let Some(r) = slot else {
                    unreachable!("no failures recorded, so every slot is filled");
                };
                r
            })
            .collect())
    }
}

/// Renders a caught panic payload as a message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one item with panic isolation and bounded retry of injected
/// transient faults. The fault-injection point keys on the item index, and
/// each retry runs under a bumped thread-local attempt so the decision
/// re-rolls deterministically.
fn run_item<T, R, F>(index: usize, item: &T, f: &F) -> Result<R, WorkerFailure>
where
    T: Clone,
    F: Fn(T) -> R,
{
    let mut attempt: u32 = 0;
    loop {
        let tried = fault::with_attempt(attempt, || {
            catch_unwind(AssertUnwindSafe(|| {
                fault::panic_point(fault::site::PAR_MAP_WORKER, &format!("item-{index}"));
                f(item.clone())
            }))
        });
        match tried {
            Ok(r) => return Ok(r),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                attempt += 1;
                if fault::is_injected_payload(&message) && attempt < MAX_ATTEMPTS {
                    let backoff = RETRY_BACKOFF
                        .saturating_mul(1 << (attempt - 1).min(8))
                        .min(RETRY_BACKOFF_CAP);
                    std::thread::sleep(backoff);
                    continue;
                }
                return Err(WorkerFailure {
                    index,
                    attempts: attempt,
                    message,
                });
            }
        }
    }
}

/// [`par_map`] with panic isolation surfaced instead of re-raised: maps `f`
/// over `items` (same scheduling as [`par_map`]) and reports per-item
/// success or typed failure. One poisoned item costs exactly its own slot;
/// every other item's result is preserved.
pub fn par_map_isolated<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> MapOutcome<R>
where
    T: Send + Sync + Clone,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = effective_workers(items.len(), jobs);
    if workers <= 1 {
        let mut results = Vec::with_capacity(items.len());
        let mut failures = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match run_item(i, item, &f) {
                Ok(r) => results.push(Some(r)),
                Err(w) => {
                    failures.push(w);
                    results.push(None);
                }
            }
        }
        return MapOutcome { results, failures };
    }
    // Workers claim *chunks* of indices from one shared cursor and read the
    // items through a shared slice — no per-item lock, no per-item atomic.
    // `run_item` clones the item per attempt anyway, so moving items out of
    // the vector (the old per-item `Mutex<Option<T>>` slots) bought nothing
    // and cost one lock round-trip per element.
    let len = items.len();
    let next = AtomicUsize::new(0);
    let items = &items;

    let (results, mut failures) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, Result<R, WorkerFailure>)> = Vec::new();
                    loop {
                        let start = next.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + CLAIM_CHUNK).min(len);
                        for (i, item) in items[start..end].iter().enumerate() {
                            let i = start + i;
                            out.push((i, run_item(i, item, &f)));
                        }
                    }
                    out
                })
            })
            .collect();

        let mut merged: Vec<Option<R>> = (0..len).map(|_| None).collect();
        let mut failed: Vec<WorkerFailure> = Vec::new();
        for h in handles {
            // Workers cannot panic (every item runs under catch_unwind);
            // re-raise defensively if one somehow does.
            match h.join() {
                Ok(batch) => {
                    for (i, r) in batch {
                        match r {
                            Ok(v) => merged[i] = Some(v),
                            Err(w) => failed.push(w),
                        }
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        (merged, failed)
    });

    failures.sort_by_key(|w| w.index);
    MapOutcome { results, failures }
}

/// Maps `f` over `items` on `jobs` scoped worker threads, preserving input
/// order in the output.
///
/// Workers pull the next unclaimed chunk of [`CLAIM_CHUNK`] indices from a
/// shared atomic cursor (self-balancing: a worker stuck on an expensive
/// project simply claims fewer chunks), so the schedule adapts to uneven
/// item costs without any partitioning heuristics and cheap items don't pay
/// per-item synchronization. With `jobs <= 1`, fewer than two items, or a
/// batch too small to amortize thread spawns (see [`effective_workers`] and
/// [`MIN_ITEMS_PER_WORKER`]) the map runs inline on the caller's thread.
///
/// # Panics
///
/// Panics with the aggregated [`WorkerFailures`] when any item's closure
/// panicked — but only **after every other item has completed**, so one
/// poisoned item no longer skips the rest of the batch. Callers that want
/// the typed path use [`par_map_isolated`].
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send + Sync + Clone,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match par_map_isolated(items, jobs, f).into_result() {
        Ok(v) => v,
        Err(failures) => panic!("par_map: {failures}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Big enough that 8 workers clear the serial-fallback threshold.
    const BIG: usize = MIN_ITEMS_PER_WORKER * 8;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..BIG).collect();
        assert_eq!(effective_workers(BIG, 8), 8, "meant to hit the pool");
        let out = par_map(items, 8, |i| i * 3);
        assert_eq!(out, (0..BIG).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_claim_covers_ragged_tails() {
        // Sizes straddling chunk boundaries: every index claimed exactly
        // once even when the last chunk is partial.
        for n in [BIG - 1, BIG + 1, BIG + CLAIM_CHUNK - 1, BIG + CLAIM_CHUNK] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(items, 8, |i| i + 1);
            assert_eq!(out, (1..=n).collect::<Vec<_>>(), "size {n}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..BIG as u64).collect();
        let serial = par_map(items.clone(), 1, |i| i.wrapping_mul(0x9e37_79b9));
        let parallel = par_map(items, 5, |i| i.wrapping_mul(0x9e37_79b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_map(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7], 4, |x| x + 1), vec![8]);
        assert_eq!(par_map(vec![1, 2], 16, |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn small_batches_fall_back_to_serial() {
        // The 151-card corpus on 2 workers sits below the threshold: the
        // measured parallel run was *slower* than serial there.
        assert_eq!(effective_workers(151, 2), 1);
        assert_eq!(effective_workers(2 * MIN_ITEMS_PER_WORKER - 1, 2), 1);
        // At and above the threshold the requested pool is used.
        assert_eq!(effective_workers(2 * MIN_ITEMS_PER_WORKER, 2), 2);
        assert_eq!(effective_workers(BIG, 8), 8);
        // Degenerate shapes stay inline regardless of size.
        assert_eq!(effective_workers(0, 8), 1);
        assert_eq!(effective_workers(1, 8), 1);
        assert_eq!(effective_workers(BIG, 1), 1);
    }

    #[test]
    fn threshold_crossing_is_invisible_in_output() {
        // Identical input → identical output on either side of the serial
        // fallback, for the exact sizes that straddle it.
        let cut = 2 * MIN_ITEMS_PER_WORKER;
        for n in [cut - 1, cut, cut + 1] {
            let items: Vec<u64> = (0..n as u64).collect();
            let expect: Vec<u64> = items.iter().map(|i| i * 7 + 1).collect();
            assert_eq!(par_map(items, 2, |i| i * 7 + 1), expect, "size {n}");
        }
    }

    #[test]
    fn override_beats_env_and_detection() {
        set_jobs(NonZeroUsize::new(3));
        assert_eq!(effective_jobs(), 3);
        set_jobs(None);
        assert!(effective_jobs() >= 1);
    }

    #[test]
    fn one_poisoned_item_preserves_the_rest() {
        // Satellite regression: 1 poisoned item out of 151 must still yield
        // the other 150 results (serial path — 151 items fall back inline).
        let items: Vec<usize> = (0..151).collect();
        let outcome = par_map_isolated(items, 8, |i| {
            assert!(i != 37, "poisoned item");
            i * 2
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 37);
        assert_eq!(
            outcome.failures[0].attempts, 1,
            "genuine panics are not retried"
        );
        assert!(outcome.failures[0].message.contains("poisoned item"));
        assert_eq!(outcome.results.iter().filter(|r| r.is_some()).count(), 150);
        for (i, slot) in outcome.results.iter().enumerate() {
            if i != 37 {
                assert_eq!(*slot, Some(i * 2), "item {i}");
            }
        }
    }

    #[test]
    fn poisoned_item_in_parallel_pool_preserves_the_rest() {
        // Same isolation through the threaded path.
        let items: Vec<usize> = (0..BIG).collect();
        assert_eq!(effective_workers(BIG, 8), 8);
        let outcome = par_map_isolated(items, 8, |i| {
            assert!(i != 700, "poisoned item");
            i + 1
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 700);
        assert_eq!(
            outcome.results.iter().filter(|r| r.is_some()).count(),
            BIG - 1
        );
    }

    #[test]
    fn par_map_panics_with_aggregated_failures_only_at_the_end() {
        let seen = AtomicUsize::new(0);
        let items: Vec<usize> = (0..200).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            par_map(items, 1, |i| {
                seen.fetch_add(1, Ordering::Relaxed);
                assert!(i != 3 && i != 9, "boom {i}");
                i
            })
        }))
        .expect_err("two poisoned items must fail the infallible map");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("2 worker item(s) failed"), "{msg}");
        assert!(msg.contains("item 3") && msg.contains("item 9"), "{msg}");
        // Every item ran before the aggregate panic was raised.
        assert_eq!(seen.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn into_result_round_trips() {
        let ok = par_map_isolated((0..8u32).collect(), 1, |i| i * i)
            .into_result()
            .expect("no failures");
        assert_eq!(ok, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        let err = par_map_isolated((0..8u32).collect(), 1, |i| {
            assert!(i != 5, "nope");
            i
        })
        .into_result()
        .expect_err("item 5 fails");
        assert_eq!(err.0.len(), 1);
        assert!(err.to_string().contains("item 5"), "{err}");
    }
}
