//! Beyond the paper: table-level rigidity and schema/source co-evolution —
//! the two companion-study threads (refs \[44\]/\[46\]/\[47\] and \[45\]) the
//! paper's related-work section builds its narrative on.

use serde::Serialize;

use schemachron_core::lag::co_evolution;
use schemachron_core::tables::table_census;
use schemachron_core::Pattern;
use schemachron_stats::{mann_whitney_u, median};

use crate::context::ExpContext;
use crate::report::{cell, pct, text_table};

// ------------------------------------------------------------- tables

/// Table-level rigidity census over the whole corpus.
#[derive(Clone, Debug, Serialize)]
pub struct TablesExp {
    /// Tables that ever existed across all 151 histories.
    pub total_tables: usize,
    /// Tables with zero post-birth updates.
    pub rigid_tables: usize,
    /// Tables surviving to their history's end.
    pub surviving_tables: usize,
    /// Per-pattern `(pattern, tables, rigidity rate)` rows.
    pub per_pattern: Vec<(Pattern, usize, f64)>,
    /// Median post-birth updates of FK-involved vs FK-free tables, plus
    /// the Mann–Whitney p-value of the split (ref \[44\]'s question).
    pub fk_split: FkSplit,
}

/// The foreign-key activity split.
#[derive(Clone, Debug, Serialize)]
pub struct FkSplit {
    /// Number of FK-involved tables.
    pub fk_tables: usize,
    /// Number of FK-free tables.
    pub non_fk_tables: usize,
    /// Median updates of FK-involved tables.
    pub fk_median_updates: f64,
    /// Median updates of FK-free tables.
    pub non_fk_median_updates: f64,
    /// Two-sided Mann–Whitney p of the update distributions (`None` when a
    /// side is empty or degenerate).
    pub p_value: Option<f64>,
}

/// Runs the table-level census over the corpus.
pub fn tables_exp(ctx: &ExpContext) -> TablesExp {
    let mut total = 0;
    let mut rigid = 0;
    let mut survivors = 0;
    let mut fk_updates: Vec<f64> = Vec::new();
    let mut non_fk_updates: Vec<f64> = Vec::new();
    let mut per_pattern = Vec::new();

    for pattern in Pattern::ALL {
        let mut p_total = 0;
        let mut p_rigid = 0;
        for project in ctx.corpus.of_pattern(pattern) {
            let history = project
                .history
                .schema_history()
                .expect("corpus projects are DDL-built");
            let census = table_census(history);
            total += census.total;
            rigid += census.rigid;
            survivors += census.survivors;
            p_total += census.total;
            p_rigid += census.rigid;
            fk_updates.extend(census.fk_updates.iter().map(|&u| u as f64));
            non_fk_updates.extend(census.non_fk_updates.iter().map(|&u| u as f64));
        }
        let rate = if p_total == 0 {
            0.0
        } else {
            p_rigid as f64 / p_total as f64
        };
        per_pattern.push((pattern, p_total, rate));
    }

    let p_value = mann_whitney_u(&fk_updates, &non_fk_updates)
        .ok()
        .map(|r| r.p_value);
    TablesExp {
        total_tables: total,
        rigid_tables: rigid,
        surviving_tables: survivors,
        per_pattern,
        fk_split: FkSplit {
            fk_tables: fk_updates.len(),
            non_fk_tables: non_fk_updates.len(),
            fk_median_updates: median(&fk_updates),
            non_fk_median_updates: median(&non_fk_updates),
            p_value,
        },
    }
}

impl TablesExp {
    /// Renders the census.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Tables — rigidity census over the corpus (beyond the paper)\n\n\
             tables that ever existed: {}\n\
             rigid (zero post-birth updates): {} ({:.0}%)\n\
             surviving to history end: {} ({:.0}%)\n\n",
            self.total_tables,
            self.rigid_tables,
            100.0 * self.rigid_tables as f64 / self.total_tables.max(1) as f64,
            self.surviving_tables,
            100.0 * self.surviving_tables as f64 / self.total_tables.max(1) as f64,
        );
        let header = vec![cell("Pattern"), cell("tables"), cell("rigidity rate")];
        let rows: Vec<Vec<String>> = self
            .per_pattern
            .iter()
            .map(|(p, n, r)| vec![cell(p.name()), cell(n), pct(*r)])
            .collect();
        out.push_str(&text_table(&header, &rows));
        let f = &self.fk_split;
        out.push_str(&format!(
            "\nforeign-key split: {} FK-involved tables (median updates {:.1}) vs \
             {} FK-free (median {:.1}), Mann-Whitney p = {}\n",
            f.fk_tables,
            f.fk_median_updates,
            f.non_fk_tables,
            f.non_fk_median_updates,
            f.p_value
                .map_or_else(|| "n/a".to_owned(), |p| format!("{p:.2e}")),
        ));
        out
    }
}

// --------------------------------------------------------- co-evolution

/// Schema/source co-evolution over the corpus.
#[derive(Clone, Debug, Serialize)]
pub struct CoEvolutionExp {
    /// Per-pattern `(pattern, median lead, median line correlation)` rows;
    /// *lead* > 0 means the schema runs ahead of the source code.
    pub per_pattern: Vec<(Pattern, f64, f64)>,
    /// Share of projects whose schema leads the source (lead > 0).
    pub schema_leads_share: f64,
}

/// Runs the co-evolution analysis.
pub fn co_evolution_exp(ctx: &ExpContext) -> CoEvolutionExp {
    let mut per_pattern = Vec::new();
    let mut leads = 0usize;
    let mut measured = 0usize;
    for pattern in Pattern::ALL {
        let mut lead_vals = Vec::new();
        let mut corr_vals = Vec::new();
        for project in ctx.corpus.of_pattern(pattern) {
            if let Some(c) = co_evolution(&project.history) {
                measured += 1;
                if c.lead > 0.0 {
                    leads += 1;
                }
                lead_vals.push(c.lead);
                corr_vals.push(c.line_correlation);
            }
        }
        per_pattern.push((pattern, median(&lead_vals), median(&corr_vals)));
    }
    CoEvolutionExp {
        per_pattern,
        schema_leads_share: leads as f64 / measured.max(1) as f64,
    }
}

impl CoEvolutionExp {
    /// Renders the co-evolution table.
    pub fn render(&self) -> String {
        let header = vec![
            cell("Pattern"),
            cell("median lead (schema vs source)"),
            cell("median line correlation"),
        ];
        let rows: Vec<Vec<String>> = self
            .per_pattern
            .iter()
            .map(|(p, lead, corr)| {
                vec![
                    cell(p.name()),
                    cell(format!("{lead:+.2}")),
                    cell(format!("{corr:.2}")),
                ]
            })
            .collect();
        format!(
            "Co-evolution — does the schema lead the source code? (beyond the paper)\n\n{}\n\
             schema leads the source in {} of projects — the \"freeze the schema\n\
             first; then build the applications on top of it\" practice the paper\n\
             calls majoritarian (its Be Quick or Be Dead family).\n",
            text_table(&header, &rows),
            pct(self.schema_leads_share),
        )
    }
}
